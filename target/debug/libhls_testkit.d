/root/repo/target/debug/libhls_testkit.rlib: /root/repo/crates/testkit/src/lib.rs
