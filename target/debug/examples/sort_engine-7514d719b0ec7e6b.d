/root/repo/target/debug/examples/sort_engine-7514d719b0ec7e6b.d: examples/sort_engine.rs Cargo.toml

/root/repo/target/debug/examples/libsort_engine-7514d719b0ec7e6b.rmeta: examples/sort_engine.rs Cargo.toml

examples/sort_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
