/root/repo/target/debug/examples/wave_filter-e242d9f119959698.d: examples/wave_filter.rs

/root/repo/target/debug/examples/wave_filter-e242d9f119959698: examples/wave_filter.rs

examples/wave_filter.rs:
