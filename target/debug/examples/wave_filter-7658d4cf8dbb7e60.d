/root/repo/target/debug/examples/wave_filter-7658d4cf8dbb7e60.d: examples/wave_filter.rs Cargo.toml

/root/repo/target/debug/examples/libwave_filter-7658d4cf8dbb7e60.rmeta: examples/wave_filter.rs Cargo.toml

examples/wave_filter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
