/root/repo/target/debug/examples/diffeq_explorer-56191f01a4f7e56b.d: examples/diffeq_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libdiffeq_explorer-56191f01a4f7e56b.rmeta: examples/diffeq_explorer.rs Cargo.toml

examples/diffeq_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
