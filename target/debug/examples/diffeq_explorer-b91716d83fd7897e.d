/root/repo/target/debug/examples/diffeq_explorer-b91716d83fd7897e.d: examples/diffeq_explorer.rs

/root/repo/target/debug/examples/diffeq_explorer-b91716d83fd7897e: examples/diffeq_explorer.rs

examples/diffeq_explorer.rs:
