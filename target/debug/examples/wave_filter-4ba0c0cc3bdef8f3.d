/root/repo/target/debug/examples/wave_filter-4ba0c0cc3bdef8f3.d: examples/wave_filter.rs

/root/repo/target/debug/examples/wave_filter-4ba0c0cc3bdef8f3: examples/wave_filter.rs

examples/wave_filter.rs:
