/root/repo/target/debug/examples/serve_roundtrip-84ddb6f4386ae1bb.d: examples/serve_roundtrip.rs

/root/repo/target/debug/examples/serve_roundtrip-84ddb6f4386ae1bb: examples/serve_roundtrip.rs

examples/serve_roundtrip.rs:
