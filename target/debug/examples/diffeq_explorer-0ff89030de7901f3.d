/root/repo/target/debug/examples/diffeq_explorer-0ff89030de7901f3.d: examples/diffeq_explorer.rs

/root/repo/target/debug/examples/diffeq_explorer-0ff89030de7901f3: examples/diffeq_explorer.rs

examples/diffeq_explorer.rs:
