/root/repo/target/debug/examples/sort_engine-21cefaf817f90a39.d: examples/sort_engine.rs Cargo.toml

/root/repo/target/debug/examples/libsort_engine-21cefaf817f90a39.rmeta: examples/sort_engine.rs Cargo.toml

examples/sort_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
