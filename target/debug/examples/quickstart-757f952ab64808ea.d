/root/repo/target/debug/examples/quickstart-757f952ab64808ea.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-757f952ab64808ea: examples/quickstart.rs

examples/quickstart.rs:
