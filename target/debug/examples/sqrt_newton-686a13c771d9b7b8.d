/root/repo/target/debug/examples/sqrt_newton-686a13c771d9b7b8.d: examples/sqrt_newton.rs

/root/repo/target/debug/examples/sqrt_newton-686a13c771d9b7b8: examples/sqrt_newton.rs

examples/sqrt_newton.rs:
