/root/repo/target/debug/examples/sqrt_newton-6f520993511e7d53.d: examples/sqrt_newton.rs

/root/repo/target/debug/examples/sqrt_newton-6f520993511e7d53: examples/sqrt_newton.rs

examples/sqrt_newton.rs:
