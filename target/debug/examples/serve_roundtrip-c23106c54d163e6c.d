/root/repo/target/debug/examples/serve_roundtrip-c23106c54d163e6c.d: examples/serve_roundtrip.rs Cargo.toml

/root/repo/target/debug/examples/libserve_roundtrip-c23106c54d163e6c.rmeta: examples/serve_roundtrip.rs Cargo.toml

examples/serve_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
