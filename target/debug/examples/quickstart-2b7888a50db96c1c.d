/root/repo/target/debug/examples/quickstart-2b7888a50db96c1c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2b7888a50db96c1c: examples/quickstart.rs

examples/quickstart.rs:
