/root/repo/target/debug/examples/diffeq_explorer-737b05ef81a81e1f.d: examples/diffeq_explorer.rs

/root/repo/target/debug/examples/diffeq_explorer-737b05ef81a81e1f: examples/diffeq_explorer.rs

examples/diffeq_explorer.rs:
