/root/repo/target/debug/examples/sqrt_newton-fa27d694282967a6.d: examples/sqrt_newton.rs Cargo.toml

/root/repo/target/debug/examples/libsqrt_newton-fa27d694282967a6.rmeta: examples/sqrt_newton.rs Cargo.toml

examples/sqrt_newton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
