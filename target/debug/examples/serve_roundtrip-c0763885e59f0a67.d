/root/repo/target/debug/examples/serve_roundtrip-c0763885e59f0a67.d: examples/serve_roundtrip.rs Cargo.toml

/root/repo/target/debug/examples/libserve_roundtrip-c0763885e59f0a67.rmeta: examples/serve_roundtrip.rs Cargo.toml

examples/serve_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
