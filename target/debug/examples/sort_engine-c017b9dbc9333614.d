/root/repo/target/debug/examples/sort_engine-c017b9dbc9333614.d: examples/sort_engine.rs

/root/repo/target/debug/examples/sort_engine-c017b9dbc9333614: examples/sort_engine.rs

examples/sort_engine.rs:
