/root/repo/target/debug/examples/wave_filter-b38172b13fe5fe65.d: examples/wave_filter.rs

/root/repo/target/debug/examples/wave_filter-b38172b13fe5fe65: examples/wave_filter.rs

examples/wave_filter.rs:
