/root/repo/target/debug/examples/sort_engine-6b84f3f60c64e62f.d: examples/sort_engine.rs

/root/repo/target/debug/examples/sort_engine-6b84f3f60c64e62f: examples/sort_engine.rs

examples/sort_engine.rs:
