/root/repo/target/debug/examples/sort_engine-96764c68a46506ae.d: examples/sort_engine.rs

/root/repo/target/debug/examples/sort_engine-96764c68a46506ae: examples/sort_engine.rs

examples/sort_engine.rs:
