/root/repo/target/debug/examples/sqrt_newton-616c91696d120cc5.d: examples/sqrt_newton.rs

/root/repo/target/debug/examples/sqrt_newton-616c91696d120cc5: examples/sqrt_newton.rs

examples/sqrt_newton.rs:
