/root/repo/target/debug/examples/sqrt_newton-01d04cdf4badce34.d: examples/sqrt_newton.rs Cargo.toml

/root/repo/target/debug/examples/libsqrt_newton-01d04cdf4badce34.rmeta: examples/sqrt_newton.rs Cargo.toml

examples/sqrt_newton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
