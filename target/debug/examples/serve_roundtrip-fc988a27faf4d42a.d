/root/repo/target/debug/examples/serve_roundtrip-fc988a27faf4d42a.d: examples/serve_roundtrip.rs

/root/repo/target/debug/examples/serve_roundtrip-fc988a27faf4d42a: examples/serve_roundtrip.rs

examples/serve_roundtrip.rs:
