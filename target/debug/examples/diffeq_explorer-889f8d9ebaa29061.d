/root/repo/target/debug/examples/diffeq_explorer-889f8d9ebaa29061.d: examples/diffeq_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libdiffeq_explorer-889f8d9ebaa29061.rmeta: examples/diffeq_explorer.rs Cargo.toml

examples/diffeq_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
