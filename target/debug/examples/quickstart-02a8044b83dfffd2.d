/root/repo/target/debug/examples/quickstart-02a8044b83dfffd2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-02a8044b83dfffd2: examples/quickstart.rs

examples/quickstart.rs:
