/root/repo/target/debug/examples/sqrt_newton-3283953da7b8e52e.d: examples/sqrt_newton.rs Cargo.toml

/root/repo/target/debug/examples/libsqrt_newton-3283953da7b8e52e.rmeta: examples/sqrt_newton.rs Cargo.toml

examples/sqrt_newton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
