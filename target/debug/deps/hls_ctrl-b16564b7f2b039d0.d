/root/repo/target/debug/deps/hls_ctrl-b16564b7f2b039d0.d: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs Cargo.toml

/root/repo/target/debug/deps/libhls_ctrl-b16564b7f2b039d0.rmeta: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs Cargo.toml

crates/ctrl/src/lib.rs:
crates/ctrl/src/encode.rs:
crates/ctrl/src/fsm.rs:
crates/ctrl/src/logic.rs:
crates/ctrl/src/microcode.rs:
crates/ctrl/src/minimize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
