/root/repo/target/debug/deps/properties-775cb2af39b1a989.d: crates/sched/tests/properties.rs

/root/repo/target/debug/deps/properties-775cb2af39b1a989: crates/sched/tests/properties.rs

crates/sched/tests/properties.rs:
