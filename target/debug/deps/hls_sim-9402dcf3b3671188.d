/root/repo/target/debug/deps/hls_sim-9402dcf3b3671188.d: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs Cargo.toml

/root/repo/target/debug/deps/libhls_sim-9402dcf3b3671188.rmeta: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/behav.rs:
crates/sim/src/equiv.rs:
crates/sim/src/rtl.rs:
crates/sim/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
