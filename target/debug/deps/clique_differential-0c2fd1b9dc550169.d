/root/repo/target/debug/deps/clique_differential-0c2fd1b9dc550169.d: crates/alloc/tests/clique_differential.rs

/root/repo/target/debug/deps/clique_differential-0c2fd1b9dc550169: crates/alloc/tests/clique_differential.rs

crates/alloc/tests/clique_differential.rs:
