/root/repo/target/debug/deps/hls_bench-3715bcc74d653f7c.d: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/hls_bench-3715bcc74d653f7c: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/gate.rs:
crates/bench/src/harness.rs:
