/root/repo/target/debug/deps/properties-9c9ec515bb3a1dc0.d: tests/properties.rs

/root/repo/target/debug/deps/properties-9c9ec515bb3a1dc0: tests/properties.rs

tests/properties.rs:
