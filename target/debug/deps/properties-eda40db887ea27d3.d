/root/repo/target/debug/deps/properties-eda40db887ea27d3.d: crates/cdfg/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-eda40db887ea27d3.rmeta: crates/cdfg/tests/properties.rs Cargo.toml

crates/cdfg/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
