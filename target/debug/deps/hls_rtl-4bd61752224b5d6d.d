/root/repo/target/debug/deps/hls_rtl-4bd61752224b5d6d.d: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

/root/repo/target/debug/deps/libhls_rtl-4bd61752224b5d6d.rlib: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

/root/repo/target/debug/deps/libhls_rtl-4bd61752224b5d6d.rmeta: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

crates/rtl/src/lib.rs:
crates/rtl/src/area.rs:
crates/rtl/src/library.rs:
crates/rtl/src/netlist.rs:
crates/rtl/src/verilog.rs:
