/root/repo/target/debug/deps/roundtrip-2f051f8b078c47e6.d: tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-2f051f8b078c47e6: tests/roundtrip.rs

tests/roundtrip.rs:
