/root/repo/target/debug/deps/properties-81c72bb298ff1969.d: tests/properties.rs

/root/repo/target/debug/deps/properties-81c72bb298ff1969: tests/properties.rs

tests/properties.rs:
