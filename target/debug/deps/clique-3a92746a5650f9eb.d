/root/repo/target/debug/deps/clique-3a92746a5650f9eb.d: crates/bench/benches/clique.rs Cargo.toml

/root/repo/target/debug/deps/libclique-3a92746a5650f9eb.rmeta: crates/bench/benches/clique.rs Cargo.toml

crates/bench/benches/clique.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
