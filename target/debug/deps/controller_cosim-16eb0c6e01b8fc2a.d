/root/repo/target/debug/deps/controller_cosim-16eb0c6e01b8fc2a.d: tests/controller_cosim.rs Cargo.toml

/root/repo/target/debug/deps/libcontroller_cosim-16eb0c6e01b8fc2a.rmeta: tests/controller_cosim.rs Cargo.toml

tests/controller_cosim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
