/root/repo/target/debug/deps/hls_opt-f3322a5b989c76fb.d: crates/opt/src/lib.rs crates/opt/src/copyprop.rs crates/opt/src/cse.rs crates/opt/src/dce.rs crates/opt/src/fold.rs crates/opt/src/ifconv.rs crates/opt/src/narrow.rs crates/opt/src/strength.rs crates/opt/src/unroll.rs Cargo.toml

/root/repo/target/debug/deps/libhls_opt-f3322a5b989c76fb.rmeta: crates/opt/src/lib.rs crates/opt/src/copyprop.rs crates/opt/src/cse.rs crates/opt/src/dce.rs crates/opt/src/fold.rs crates/opt/src/ifconv.rs crates/opt/src/narrow.rs crates/opt/src/strength.rs crates/opt/src/unroll.rs Cargo.toml

crates/opt/src/lib.rs:
crates/opt/src/copyprop.rs:
crates/opt/src/cse.rs:
crates/opt/src/dce.rs:
crates/opt/src/fold.rs:
crates/opt/src/ifconv.rs:
crates/opt/src/narrow.rs:
crates/opt/src/strength.rs:
crates/opt/src/unroll.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
