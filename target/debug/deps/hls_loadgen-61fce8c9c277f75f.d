/root/repo/target/debug/deps/hls_loadgen-61fce8c9c277f75f.d: crates/serve/src/bin/loadgen.rs Cargo.toml

/root/repo/target/debug/deps/libhls_loadgen-61fce8c9c277f75f.rmeta: crates/serve/src/bin/loadgen.rs Cargo.toml

crates/serve/src/bin/loadgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
