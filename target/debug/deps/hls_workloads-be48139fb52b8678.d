/root/repo/target/debug/deps/hls_workloads-be48139fb52b8678.d: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs

/root/repo/target/debug/deps/hls_workloads-be48139fb52b8678: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmarks.rs:
crates/workloads/src/figures.rs:
crates/workloads/src/random.rs:
crates/workloads/src/sources.rs:
