/root/repo/target/debug/deps/hls_serve-e35b11196c7f1676.d: crates/serve/src/bin/serve.rs

/root/repo/target/debug/deps/hls_serve-e35b11196c7f1676: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
