/root/repo/target/debug/deps/hls_bench-dd31834c12c7c5b4.d: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libhls_bench-dd31834c12c7c5b4.rmeta: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/gate.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
