/root/repo/target/debug/deps/e2e-1086d77f3312be13.d: crates/bench/benches/e2e.rs Cargo.toml

/root/repo/target/debug/deps/libe2e-1086d77f3312be13.rmeta: crates/bench/benches/e2e.rs Cargo.toml

crates/bench/benches/e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
