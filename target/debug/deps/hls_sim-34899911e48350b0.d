/root/repo/target/debug/deps/hls_sim-34899911e48350b0.d: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/libhls_sim-34899911e48350b0.rlib: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/libhls_sim-34899911e48350b0.rmeta: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/behav.rs:
crates/sim/src/equiv.rs:
crates/sim/src/rtl.rs:
crates/sim/src/vcd.rs:
