/root/repo/target/debug/deps/hls_serve-5d6f8d0a14f38e1e.d: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs Cargo.toml

/root/repo/target/debug/deps/libhls_serve-5d6f8d0a14f38e1e.rmeta: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/api.rs:
crates/serve/src/cache.rs:
crates/serve/src/http.rs:
crates/serve/src/json.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/signal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
