/root/repo/target/debug/deps/hls_bench-a9992518b4c82d25.d: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs crates/bench/src/suite.rs

/root/repo/target/debug/deps/libhls_bench-a9992518b4c82d25.rlib: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs crates/bench/src/suite.rs

/root/repo/target/debug/deps/libhls_bench-a9992518b4c82d25.rmeta: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/gate.rs:
crates/bench/src/harness.rs:
crates/bench/src/suite.rs:
