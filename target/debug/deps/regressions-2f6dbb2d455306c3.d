/root/repo/target/debug/deps/regressions-2f6dbb2d455306c3.d: crates/fuzz/tests/regressions.rs

/root/repo/target/debug/deps/regressions-2f6dbb2d455306c3: crates/fuzz/tests/regressions.rs

crates/fuzz/tests/regressions.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/fuzz
