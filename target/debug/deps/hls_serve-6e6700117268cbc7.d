/root/repo/target/debug/deps/hls_serve-6e6700117268cbc7.d: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs

/root/repo/target/debug/deps/libhls_serve-6e6700117268cbc7.rmeta: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs

crates/serve/src/lib.rs:
crates/serve/src/api.rs:
crates/serve/src/cache.rs:
crates/serve/src/http.rs:
crates/serve/src/json.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/signal.rs:
