/root/repo/target/debug/deps/hls_serve-1c8fef33bc5b0c41.d: crates/serve/src/bin/serve.rs

/root/repo/target/debug/deps/hls_serve-1c8fef33bc5b0c41: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
