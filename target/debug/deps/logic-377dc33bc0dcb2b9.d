/root/repo/target/debug/deps/logic-377dc33bc0dcb2b9.d: crates/bench/benches/logic.rs Cargo.toml

/root/repo/target/debug/deps/liblogic-377dc33bc0dcb2b9.rmeta: crates/bench/benches/logic.rs Cargo.toml

crates/bench/benches/logic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
