/root/repo/target/debug/deps/hls_fuzz-f766a2d8c3b13303.d: crates/fuzz/src/main.rs

/root/repo/target/debug/deps/hls_fuzz-f766a2d8c3b13303: crates/fuzz/src/main.rs

crates/fuzz/src/main.rs:
