/root/repo/target/debug/deps/hls_loadgen-9333e71b705f9a0f.d: crates/serve/src/bin/loadgen.rs

/root/repo/target/debug/deps/hls_loadgen-9333e71b705f9a0f: crates/serve/src/bin/loadgen.rs

crates/serve/src/bin/loadgen.rs:
