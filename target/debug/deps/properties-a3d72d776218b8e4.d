/root/repo/target/debug/deps/properties-a3d72d776218b8e4.d: crates/sched/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a3d72d776218b8e4.rmeta: crates/sched/tests/properties.rs Cargo.toml

crates/sched/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
