/root/repo/target/debug/deps/hls_fuzz-33ad32ac2c4f8632.d: crates/fuzz/src/main.rs

/root/repo/target/debug/deps/hls_fuzz-33ad32ac2c4f8632: crates/fuzz/src/main.rs

crates/fuzz/src/main.rs:
