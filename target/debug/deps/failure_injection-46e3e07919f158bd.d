/root/repo/target/debug/deps/failure_injection-46e3e07919f158bd.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-46e3e07919f158bd: tests/failure_injection.rs

tests/failure_injection.rs:
