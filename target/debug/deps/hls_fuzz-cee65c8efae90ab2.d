/root/repo/target/debug/deps/hls_fuzz-cee65c8efae90ab2.d: crates/fuzz/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libhls_fuzz-cee65c8efae90ab2.rmeta: crates/fuzz/src/main.rs Cargo.toml

crates/fuzz/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
