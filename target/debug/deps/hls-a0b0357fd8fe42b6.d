/root/repo/target/debug/deps/hls-a0b0357fd8fe42b6.d: src/lib.rs

/root/repo/target/debug/deps/hls-a0b0357fd8fe42b6: src/lib.rs

src/lib.rs:
