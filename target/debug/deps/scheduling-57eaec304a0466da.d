/root/repo/target/debug/deps/scheduling-57eaec304a0466da.d: crates/bench/benches/scheduling.rs Cargo.toml

/root/repo/target/debug/deps/libscheduling-57eaec304a0466da.rmeta: crates/bench/benches/scheduling.rs Cargo.toml

crates/bench/benches/scheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
