/root/repo/target/debug/deps/controller_cosim-6b7ea3b6497b5b57.d: tests/controller_cosim.rs

/root/repo/target/debug/deps/controller_cosim-6b7ea3b6497b5b57: tests/controller_cosim.rs

tests/controller_cosim.rs:
