/root/repo/target/debug/deps/hls_serve-247b8f87b4cf7041.d: crates/serve/src/bin/serve.rs

/root/repo/target/debug/deps/hls_serve-247b8f87b4cf7041: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
