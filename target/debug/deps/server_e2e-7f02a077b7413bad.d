/root/repo/target/debug/deps/server_e2e-7f02a077b7413bad.d: crates/serve/tests/server_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libserver_e2e-7f02a077b7413bad.rmeta: crates/serve/tests/server_e2e.rs Cargo.toml

crates/serve/tests/server_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
