/root/repo/target/debug/deps/hls_par-9d61c40290c084f6.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhls_par-9d61c40290c084f6.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
