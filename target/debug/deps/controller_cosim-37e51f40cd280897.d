/root/repo/target/debug/deps/controller_cosim-37e51f40cd280897.d: tests/controller_cosim.rs

/root/repo/target/debug/deps/controller_cosim-37e51f40cd280897: tests/controller_cosim.rs

tests/controller_cosim.rs:
