/root/repo/target/debug/deps/hls_loadgen-6a9be66024857671.d: crates/serve/src/bin/loadgen.rs

/root/repo/target/debug/deps/hls_loadgen-6a9be66024857671: crates/serve/src/bin/loadgen.rs

crates/serve/src/bin/loadgen.rs:
