/root/repo/target/debug/deps/hls_fuzz-be0f7a35c93dc16e.d: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

/root/repo/target/debug/deps/libhls_fuzz-be0f7a35c93dc16e.rlib: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

/root/repo/target/debug/deps/libhls_fuzz-be0f7a35c93dc16e.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/minimize.rs:
