/root/repo/target/debug/deps/experiments-3056378fc2a2489b.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-3056378fc2a2489b: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
