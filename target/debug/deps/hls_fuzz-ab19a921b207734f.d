/root/repo/target/debug/deps/hls_fuzz-ab19a921b207734f.d: crates/fuzz/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libhls_fuzz-ab19a921b207734f.rmeta: crates/fuzz/src/main.rs Cargo.toml

crates/fuzz/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
