/root/repo/target/debug/deps/perf_gate-eac0cd518cd30ab1.d: crates/bench/src/bin/perf_gate.rs

/root/repo/target/debug/deps/perf_gate-eac0cd518cd30ab1: crates/bench/src/bin/perf_gate.rs

crates/bench/src/bin/perf_gate.rs:
