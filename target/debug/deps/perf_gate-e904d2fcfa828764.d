/root/repo/target/debug/deps/perf_gate-e904d2fcfa828764.d: crates/bench/src/bin/perf_gate.rs Cargo.toml

/root/repo/target/debug/deps/libperf_gate-e904d2fcfa828764.rmeta: crates/bench/src/bin/perf_gate.rs Cargo.toml

crates/bench/src/bin/perf_gate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
