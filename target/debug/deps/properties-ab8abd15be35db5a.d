/root/repo/target/debug/deps/properties-ab8abd15be35db5a.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ab8abd15be35db5a.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
