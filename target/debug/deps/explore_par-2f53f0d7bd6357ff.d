/root/repo/target/debug/deps/explore_par-2f53f0d7bd6357ff.d: crates/core/tests/explore_par.rs Cargo.toml

/root/repo/target/debug/deps/libexplore_par-2f53f0d7bd6357ff.rmeta: crates/core/tests/explore_par.rs Cargo.toml

crates/core/tests/explore_par.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
