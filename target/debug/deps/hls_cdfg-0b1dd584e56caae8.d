/root/repo/target/debug/deps/hls_cdfg-0b1dd584e56caae8.d: crates/cdfg/src/lib.rs crates/cdfg/src/analysis.rs crates/cdfg/src/cdfg.rs crates/cdfg/src/dense.rs crates/cdfg/src/dfg.rs crates/cdfg/src/dot.rs crates/cdfg/src/error.rs crates/cdfg/src/fixed.rs crates/cdfg/src/ids.rs crates/cdfg/src/op.rs Cargo.toml

/root/repo/target/debug/deps/libhls_cdfg-0b1dd584e56caae8.rmeta: crates/cdfg/src/lib.rs crates/cdfg/src/analysis.rs crates/cdfg/src/cdfg.rs crates/cdfg/src/dense.rs crates/cdfg/src/dfg.rs crates/cdfg/src/dot.rs crates/cdfg/src/error.rs crates/cdfg/src/fixed.rs crates/cdfg/src/ids.rs crates/cdfg/src/op.rs Cargo.toml

crates/cdfg/src/lib.rs:
crates/cdfg/src/analysis.rs:
crates/cdfg/src/cdfg.rs:
crates/cdfg/src/dense.rs:
crates/cdfg/src/dfg.rs:
crates/cdfg/src/dot.rs:
crates/cdfg/src/error.rs:
crates/cdfg/src/fixed.rs:
crates/cdfg/src/ids.rs:
crates/cdfg/src/op.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
