/root/repo/target/debug/deps/hls_fuzz-a0c28ee9c3213778.d: crates/fuzz/src/main.rs

/root/repo/target/debug/deps/hls_fuzz-a0c28ee9c3213778: crates/fuzz/src/main.rs

crates/fuzz/src/main.rs:
