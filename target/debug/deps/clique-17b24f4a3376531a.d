/root/repo/target/debug/deps/clique-17b24f4a3376531a.d: crates/bench/benches/clique.rs Cargo.toml

/root/repo/target/debug/deps/libclique-17b24f4a3376531a.rmeta: crates/bench/benches/clique.rs Cargo.toml

crates/bench/benches/clique.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
