/root/repo/target/debug/deps/hls_core-54594cb52bdc87fd.d: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/debug/deps/hls_core-54594cb52bdc87fd: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/explore.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
