/root/repo/target/debug/deps/paper_numbers-efe42a72f4f416ba.d: tests/paper_numbers.rs

/root/repo/target/debug/deps/paper_numbers-efe42a72f4f416ba: tests/paper_numbers.rs

tests/paper_numbers.rs:
