/root/repo/target/debug/deps/failure_injection-cd0d665199f45214.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-cd0d665199f45214: tests/failure_injection.rs

tests/failure_injection.rs:
