/root/repo/target/debug/deps/full_flow-cc4a2b94ab25f4d6.d: tests/full_flow.rs

/root/repo/target/debug/deps/full_flow-cc4a2b94ab25f4d6: tests/full_flow.rs

tests/full_flow.rs:
