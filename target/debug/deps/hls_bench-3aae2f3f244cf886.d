/root/repo/target/debug/deps/hls_bench-3aae2f3f244cf886.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/hls_bench-3aae2f3f244cf886: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
