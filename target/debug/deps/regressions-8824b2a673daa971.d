/root/repo/target/debug/deps/regressions-8824b2a673daa971.d: crates/fuzz/tests/regressions.rs

/root/repo/target/debug/deps/regressions-8824b2a673daa971: crates/fuzz/tests/regressions.rs

crates/fuzz/tests/regressions.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/fuzz
