/root/repo/target/debug/deps/hls-787fb4671207b1bb.d: src/lib.rs

/root/repo/target/debug/deps/libhls-787fb4671207b1bb.rlib: src/lib.rs

/root/repo/target/debug/deps/libhls-787fb4671207b1bb.rmeta: src/lib.rs

src/lib.rs:
