/root/repo/target/debug/deps/hls_opt-a74a2f79f2fae656.d: crates/opt/src/lib.rs crates/opt/src/copyprop.rs crates/opt/src/cse.rs crates/opt/src/dce.rs crates/opt/src/fold.rs crates/opt/src/ifconv.rs crates/opt/src/narrow.rs crates/opt/src/strength.rs crates/opt/src/unroll.rs

/root/repo/target/debug/deps/hls_opt-a74a2f79f2fae656: crates/opt/src/lib.rs crates/opt/src/copyprop.rs crates/opt/src/cse.rs crates/opt/src/dce.rs crates/opt/src/fold.rs crates/opt/src/ifconv.rs crates/opt/src/narrow.rs crates/opt/src/strength.rs crates/opt/src/unroll.rs

crates/opt/src/lib.rs:
crates/opt/src/copyprop.rs:
crates/opt/src/cse.rs:
crates/opt/src/dce.rs:
crates/opt/src/fold.rs:
crates/opt/src/ifconv.rs:
crates/opt/src/narrow.rs:
crates/opt/src/strength.rs:
crates/opt/src/unroll.rs:
