/root/repo/target/debug/deps/hls_rtl-07ad4609778890c8.d: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

/root/repo/target/debug/deps/libhls_rtl-07ad4609778890c8.rmeta: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

crates/rtl/src/lib.rs:
crates/rtl/src/area.rs:
crates/rtl/src/library.rs:
crates/rtl/src/netlist.rs:
crates/rtl/src/verilog.rs:
