/root/repo/target/debug/deps/hls_testkit-e6980067dfe77c32.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libhls_testkit-e6980067dfe77c32.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
