/root/repo/target/debug/deps/hls_testkit-a98f85182ca8e7d1.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhls_testkit-a98f85182ca8e7d1.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
