/root/repo/target/debug/deps/hls_ctrl-daaa489aeb06bca6.d: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

/root/repo/target/debug/deps/libhls_ctrl-daaa489aeb06bca6.rmeta: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

crates/ctrl/src/lib.rs:
crates/ctrl/src/encode.rs:
crates/ctrl/src/fsm.rs:
crates/ctrl/src/logic.rs:
crates/ctrl/src/microcode.rs:
crates/ctrl/src/minimize.rs:
