/root/repo/target/debug/deps/hls_workloads-79f13440188e2aa7.d: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs Cargo.toml

/root/repo/target/debug/deps/libhls_workloads-79f13440188e2aa7.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/benchmarks.rs:
crates/workloads/src/figures.rs:
crates/workloads/src/random.rs:
crates/workloads/src/sources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
