/root/repo/target/debug/deps/server_e2e-171189b5a342de3f.d: crates/serve/tests/server_e2e.rs

/root/repo/target/debug/deps/server_e2e-171189b5a342de3f: crates/serve/tests/server_e2e.rs

crates/serve/tests/server_e2e.rs:
