/root/repo/target/debug/deps/clique_differential-7bcb9217442e1eaa.d: crates/alloc/tests/clique_differential.rs Cargo.toml

/root/repo/target/debug/deps/libclique_differential-7bcb9217442e1eaa.rmeta: crates/alloc/tests/clique_differential.rs Cargo.toml

crates/alloc/tests/clique_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
