/root/repo/target/debug/deps/hls_bench-b0cfc7fffcb4e991.d: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs crates/bench/src/suite.rs

/root/repo/target/debug/deps/hls_bench-b0cfc7fffcb4e991: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/gate.rs:
crates/bench/src/harness.rs:
crates/bench/src/suite.rs:
