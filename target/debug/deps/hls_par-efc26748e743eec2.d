/root/repo/target/debug/deps/hls_par-efc26748e743eec2.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/hls_par-efc26748e743eec2: crates/par/src/lib.rs

crates/par/src/lib.rs:
