/root/repo/target/debug/deps/hls-5f949a1f8aee21d3.d: src/lib.rs

/root/repo/target/debug/deps/libhls-5f949a1f8aee21d3.rlib: src/lib.rs

/root/repo/target/debug/deps/libhls-5f949a1f8aee21d3.rmeta: src/lib.rs

src/lib.rs:
