/root/repo/target/debug/deps/properties-16ac40d34e1992ec.d: tests/properties.rs

/root/repo/target/debug/deps/properties-16ac40d34e1992ec: tests/properties.rs

tests/properties.rs:
