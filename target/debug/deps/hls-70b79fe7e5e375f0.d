/root/repo/target/debug/deps/hls-70b79fe7e5e375f0.d: src/lib.rs

/root/repo/target/debug/deps/libhls-70b79fe7e5e375f0.rlib: src/lib.rs

/root/repo/target/debug/deps/libhls-70b79fe7e5e375f0.rmeta: src/lib.rs

src/lib.rs:
