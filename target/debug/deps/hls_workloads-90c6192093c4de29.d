/root/repo/target/debug/deps/hls_workloads-90c6192093c4de29.d: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs

/root/repo/target/debug/deps/libhls_workloads-90c6192093c4de29.rlib: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs

/root/repo/target/debug/deps/libhls_workloads-90c6192093c4de29.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmarks.rs:
crates/workloads/src/figures.rs:
crates/workloads/src/random.rs:
crates/workloads/src/sources.rs:
