/root/repo/target/debug/deps/hls_testkit-dc850a3d8bf30efc.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libhls_testkit-dc850a3d8bf30efc.rlib: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libhls_testkit-dc850a3d8bf30efc.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
