/root/repo/target/debug/deps/experiments-34d87a0789637e22.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-34d87a0789637e22: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
