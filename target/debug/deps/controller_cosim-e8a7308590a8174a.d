/root/repo/target/debug/deps/controller_cosim-e8a7308590a8174a.d: tests/controller_cosim.rs Cargo.toml

/root/repo/target/debug/deps/libcontroller_cosim-e8a7308590a8174a.rmeta: tests/controller_cosim.rs Cargo.toml

tests/controller_cosim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
