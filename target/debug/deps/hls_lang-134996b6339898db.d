/root/repo/target/debug/deps/hls_lang-134996b6339898db.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs

/root/repo/target/debug/deps/libhls_lang-134996b6339898db.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/error.rs:
crates/lang/src/lexer.rs:
crates/lang/src/lower.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
