/root/repo/target/debug/deps/hls_workloads-08c254b71c37a45a.d: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs Cargo.toml

/root/repo/target/debug/deps/libhls_workloads-08c254b71c37a45a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/benchmarks.rs:
crates/workloads/src/figures.rs:
crates/workloads/src/random.rs:
crates/workloads/src/sources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
