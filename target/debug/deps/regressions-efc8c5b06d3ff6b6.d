/root/repo/target/debug/deps/regressions-efc8c5b06d3ff6b6.d: crates/fuzz/tests/regressions.rs Cargo.toml

/root/repo/target/debug/deps/libregressions-efc8c5b06d3ff6b6.rmeta: crates/fuzz/tests/regressions.rs Cargo.toml

crates/fuzz/tests/regressions.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/fuzz
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
