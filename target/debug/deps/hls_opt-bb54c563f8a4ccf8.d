/root/repo/target/debug/deps/hls_opt-bb54c563f8a4ccf8.d: crates/opt/src/lib.rs crates/opt/src/copyprop.rs crates/opt/src/cse.rs crates/opt/src/dce.rs crates/opt/src/fold.rs crates/opt/src/ifconv.rs crates/opt/src/narrow.rs crates/opt/src/strength.rs crates/opt/src/unroll.rs

/root/repo/target/debug/deps/libhls_opt-bb54c563f8a4ccf8.rmeta: crates/opt/src/lib.rs crates/opt/src/copyprop.rs crates/opt/src/cse.rs crates/opt/src/dce.rs crates/opt/src/fold.rs crates/opt/src/ifconv.rs crates/opt/src/narrow.rs crates/opt/src/strength.rs crates/opt/src/unroll.rs

crates/opt/src/lib.rs:
crates/opt/src/copyprop.rs:
crates/opt/src/cse.rs:
crates/opt/src/dce.rs:
crates/opt/src/fold.rs:
crates/opt/src/ifconv.rs:
crates/opt/src/narrow.rs:
crates/opt/src/strength.rs:
crates/opt/src/unroll.rs:
