/root/repo/target/debug/deps/hls_workloads-5d8c86330caf62ae.d: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs

/root/repo/target/debug/deps/libhls_workloads-5d8c86330caf62ae.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmarks.rs:
crates/workloads/src/figures.rs:
crates/workloads/src/random.rs:
crates/workloads/src/sources.rs:
