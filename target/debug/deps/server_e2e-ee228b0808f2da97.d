/root/repo/target/debug/deps/server_e2e-ee228b0808f2da97.d: crates/serve/tests/server_e2e.rs

/root/repo/target/debug/deps/server_e2e-ee228b0808f2da97: crates/serve/tests/server_e2e.rs

crates/serve/tests/server_e2e.rs:
