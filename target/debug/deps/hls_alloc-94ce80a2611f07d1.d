/root/repo/target/debug/deps/hls_alloc-94ce80a2611f07d1.d: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs

/root/repo/target/debug/deps/hls_alloc-94ce80a2611f07d1: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs

crates/alloc/src/lib.rs:
crates/alloc/src/clique.rs:
crates/alloc/src/datapath.rs:
crates/alloc/src/error.rs:
crates/alloc/src/fu.rs:
crates/alloc/src/ilp.rs:
crates/alloc/src/interconnect.rs:
crates/alloc/src/lifetime.rs:
crates/alloc/src/registers.rs:
