/root/repo/target/debug/deps/roundtrip-f2216d2b9883f178.d: tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-f2216d2b9883f178.rmeta: tests/roundtrip.rs Cargo.toml

tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
