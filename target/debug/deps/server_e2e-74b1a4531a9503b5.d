/root/repo/target/debug/deps/server_e2e-74b1a4531a9503b5.d: crates/serve/tests/server_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libserver_e2e-74b1a4531a9503b5.rmeta: crates/serve/tests/server_e2e.rs Cargo.toml

crates/serve/tests/server_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
