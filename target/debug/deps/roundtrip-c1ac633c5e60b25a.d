/root/repo/target/debug/deps/roundtrip-c1ac633c5e60b25a.d: tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-c1ac633c5e60b25a.rmeta: tests/roundtrip.rs Cargo.toml

tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
