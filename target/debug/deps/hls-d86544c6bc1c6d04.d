/root/repo/target/debug/deps/hls-d86544c6bc1c6d04.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhls-d86544c6bc1c6d04.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
