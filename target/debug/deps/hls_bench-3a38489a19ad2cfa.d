/root/repo/target/debug/deps/hls_bench-3a38489a19ad2cfa.d: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libhls_bench-3a38489a19ad2cfa.rlib: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libhls_bench-3a38489a19ad2cfa.rmeta: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/gate.rs:
crates/bench/src/harness.rs:
