/root/repo/target/debug/deps/e2e-c89f50c78922933a.d: crates/bench/benches/e2e.rs Cargo.toml

/root/repo/target/debug/deps/libe2e-c89f50c78922933a.rmeta: crates/bench/benches/e2e.rs Cargo.toml

crates/bench/benches/e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
