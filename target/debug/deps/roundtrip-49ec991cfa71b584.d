/root/repo/target/debug/deps/roundtrip-49ec991cfa71b584.d: tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-49ec991cfa71b584: tests/roundtrip.rs

tests/roundtrip.rs:
