/root/repo/target/debug/deps/hls_ctrl-edd728acbf64bcda.d: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

/root/repo/target/debug/deps/libhls_ctrl-edd728acbf64bcda.rlib: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

/root/repo/target/debug/deps/libhls_ctrl-edd728acbf64bcda.rmeta: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

crates/ctrl/src/lib.rs:
crates/ctrl/src/encode.rs:
crates/ctrl/src/fsm.rs:
crates/ctrl/src/logic.rs:
crates/ctrl/src/microcode.rs:
crates/ctrl/src/minimize.rs:
