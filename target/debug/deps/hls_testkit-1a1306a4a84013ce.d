/root/repo/target/debug/deps/hls_testkit-1a1306a4a84013ce.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhls_testkit-1a1306a4a84013ce.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
