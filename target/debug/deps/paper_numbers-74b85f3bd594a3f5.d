/root/repo/target/debug/deps/paper_numbers-74b85f3bd594a3f5.d: tests/paper_numbers.rs

/root/repo/target/debug/deps/paper_numbers-74b85f3bd594a3f5: tests/paper_numbers.rs

tests/paper_numbers.rs:
