/root/repo/target/debug/deps/hls-a7edd5ece5d83ed5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhls-a7edd5ece5d83ed5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
