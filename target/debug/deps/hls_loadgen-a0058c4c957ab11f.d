/root/repo/target/debug/deps/hls_loadgen-a0058c4c957ab11f.d: crates/serve/src/bin/loadgen.rs Cargo.toml

/root/repo/target/debug/deps/libhls_loadgen-a0058c4c957ab11f.rmeta: crates/serve/src/bin/loadgen.rs Cargo.toml

crates/serve/src/bin/loadgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
