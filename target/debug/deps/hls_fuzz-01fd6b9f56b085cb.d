/root/repo/target/debug/deps/hls_fuzz-01fd6b9f56b085cb.d: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

/root/repo/target/debug/deps/libhls_fuzz-01fd6b9f56b085cb.rlib: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

/root/repo/target/debug/deps/libhls_fuzz-01fd6b9f56b085cb.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/minimize.rs:
