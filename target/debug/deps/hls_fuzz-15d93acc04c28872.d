/root/repo/target/debug/deps/hls_fuzz-15d93acc04c28872.d: crates/fuzz/src/main.rs

/root/repo/target/debug/deps/hls_fuzz-15d93acc04c28872: crates/fuzz/src/main.rs

crates/fuzz/src/main.rs:
