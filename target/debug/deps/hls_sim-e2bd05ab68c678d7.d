/root/repo/target/debug/deps/hls_sim-e2bd05ab68c678d7.d: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/libhls_sim-e2bd05ab68c678d7.rlib: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/libhls_sim-e2bd05ab68c678d7.rmeta: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/behav.rs:
crates/sim/src/equiv.rs:
crates/sim/src/rtl.rs:
crates/sim/src/vcd.rs:
