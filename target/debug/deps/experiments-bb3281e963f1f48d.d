/root/repo/target/debug/deps/experiments-bb3281e963f1f48d.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-bb3281e963f1f48d: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
