/root/repo/target/debug/deps/paper_numbers-8f71b79e5fba0063.d: tests/paper_numbers.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_numbers-8f71b79e5fba0063.rmeta: tests/paper_numbers.rs Cargo.toml

tests/paper_numbers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
