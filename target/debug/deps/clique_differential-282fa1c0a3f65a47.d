/root/repo/target/debug/deps/clique_differential-282fa1c0a3f65a47.d: crates/alloc/tests/clique_differential.rs Cargo.toml

/root/repo/target/debug/deps/libclique_differential-282fa1c0a3f65a47.rmeta: crates/alloc/tests/clique_differential.rs Cargo.toml

crates/alloc/tests/clique_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
