/root/repo/target/debug/deps/hls_fuzz-460d1ce1b703337a.d: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs Cargo.toml

/root/repo/target/debug/deps/libhls_fuzz-460d1ce1b703337a.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs Cargo.toml

crates/fuzz/src/lib.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/minimize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
