/root/repo/target/debug/deps/full_flow-e82c34b792b07e15.d: tests/full_flow.rs

/root/repo/target/debug/deps/full_flow-e82c34b792b07e15: tests/full_flow.rs

tests/full_flow.rs:
