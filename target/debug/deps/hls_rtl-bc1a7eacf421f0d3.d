/root/repo/target/debug/deps/hls_rtl-bc1a7eacf421f0d3.d: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

/root/repo/target/debug/deps/hls_rtl-bc1a7eacf421f0d3: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

crates/rtl/src/lib.rs:
crates/rtl/src/area.rs:
crates/rtl/src/library.rs:
crates/rtl/src/netlist.rs:
crates/rtl/src/verilog.rs:
