/root/repo/target/debug/deps/explore_par-56aeac23b5e1df21.d: crates/core/tests/explore_par.rs

/root/repo/target/debug/deps/explore_par-56aeac23b5e1df21: crates/core/tests/explore_par.rs

crates/core/tests/explore_par.rs:
