/root/repo/target/debug/deps/perf_gate-be3f5ec7fd2af9c8.d: crates/bench/src/bin/perf_gate.rs

/root/repo/target/debug/deps/perf_gate-be3f5ec7fd2af9c8: crates/bench/src/bin/perf_gate.rs

crates/bench/src/bin/perf_gate.rs:
