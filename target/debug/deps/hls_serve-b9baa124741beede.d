/root/repo/target/debug/deps/hls_serve-b9baa124741beede.d: crates/serve/src/bin/serve.rs

/root/repo/target/debug/deps/hls_serve-b9baa124741beede: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
