/root/repo/target/debug/deps/hls_fuzz-724a67712c486024.d: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs Cargo.toml

/root/repo/target/debug/deps/libhls_fuzz-724a67712c486024.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs Cargo.toml

crates/fuzz/src/lib.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/minimize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
