/root/repo/target/debug/deps/perf_gate-24850d159a25b927.d: crates/bench/src/bin/perf_gate.rs

/root/repo/target/debug/deps/perf_gate-24850d159a25b927: crates/bench/src/bin/perf_gate.rs

crates/bench/src/bin/perf_gate.rs:
