/root/repo/target/debug/deps/explore_par-835e5f6034ced142.d: crates/core/tests/explore_par.rs

/root/repo/target/debug/deps/explore_par-835e5f6034ced142: crates/core/tests/explore_par.rs

crates/core/tests/explore_par.rs:
