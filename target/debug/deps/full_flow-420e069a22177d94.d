/root/repo/target/debug/deps/full_flow-420e069a22177d94.d: tests/full_flow.rs Cargo.toml

/root/repo/target/debug/deps/libfull_flow-420e069a22177d94.rmeta: tests/full_flow.rs Cargo.toml

tests/full_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
