/root/repo/target/debug/deps/roundtrip-4c5eef368744ee90.d: tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-4c5eef368744ee90.rmeta: tests/roundtrip.rs Cargo.toml

tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
