/root/repo/target/debug/deps/controller_cosim-7e1bbf04496a0b02.d: tests/controller_cosim.rs

/root/repo/target/debug/deps/controller_cosim-7e1bbf04496a0b02: tests/controller_cosim.rs

tests/controller_cosim.rs:
