/root/repo/target/debug/deps/hls_sched-40cf2809b72a91a9.d: crates/sched/src/lib.rs crates/sched/src/alap.rs crates/sched/src/asap.rs crates/sched/src/bb.rs crates/sched/src/bounds.rs crates/sched/src/cdfg_sched.rs crates/sched/src/chain.rs crates/sched/src/error.rs crates/sched/src/force.rs crates/sched/src/freedom.rs crates/sched/src/hforce.rs crates/sched/src/list.rs crates/sched/src/pipeline.rs crates/sched/src/precedence.rs crates/sched/src/resource.rs crates/sched/src/schedule.rs crates/sched/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libhls_sched-40cf2809b72a91a9.rmeta: crates/sched/src/lib.rs crates/sched/src/alap.rs crates/sched/src/asap.rs crates/sched/src/bb.rs crates/sched/src/bounds.rs crates/sched/src/cdfg_sched.rs crates/sched/src/chain.rs crates/sched/src/error.rs crates/sched/src/force.rs crates/sched/src/freedom.rs crates/sched/src/hforce.rs crates/sched/src/list.rs crates/sched/src/pipeline.rs crates/sched/src/precedence.rs crates/sched/src/resource.rs crates/sched/src/schedule.rs crates/sched/src/transform.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/alap.rs:
crates/sched/src/asap.rs:
crates/sched/src/bb.rs:
crates/sched/src/bounds.rs:
crates/sched/src/cdfg_sched.rs:
crates/sched/src/chain.rs:
crates/sched/src/error.rs:
crates/sched/src/force.rs:
crates/sched/src/freedom.rs:
crates/sched/src/hforce.rs:
crates/sched/src/list.rs:
crates/sched/src/pipeline.rs:
crates/sched/src/precedence.rs:
crates/sched/src/resource.rs:
crates/sched/src/schedule.rs:
crates/sched/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
