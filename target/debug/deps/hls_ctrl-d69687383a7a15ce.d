/root/repo/target/debug/deps/hls_ctrl-d69687383a7a15ce.d: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

/root/repo/target/debug/deps/hls_ctrl-d69687383a7a15ce: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

crates/ctrl/src/lib.rs:
crates/ctrl/src/encode.rs:
crates/ctrl/src/fsm.rs:
crates/ctrl/src/logic.rs:
crates/ctrl/src/microcode.rs:
crates/ctrl/src/minimize.rs:
