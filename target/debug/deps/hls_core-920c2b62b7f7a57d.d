/root/repo/target/debug/deps/hls_core-920c2b62b7f7a57d.d: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libhls_core-920c2b62b7f7a57d.rlib: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libhls_core-920c2b62b7f7a57d.rmeta: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/explore.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
