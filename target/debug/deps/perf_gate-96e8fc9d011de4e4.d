/root/repo/target/debug/deps/perf_gate-96e8fc9d011de4e4.d: crates/bench/src/bin/perf_gate.rs Cargo.toml

/root/repo/target/debug/deps/libperf_gate-96e8fc9d011de4e4.rmeta: crates/bench/src/bin/perf_gate.rs Cargo.toml

crates/bench/src/bin/perf_gate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
