/root/repo/target/debug/deps/hls_fuzz-fed4115bad53e6a9.d: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

/root/repo/target/debug/deps/hls_fuzz-fed4115bad53e6a9: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/minimize.rs:
