/root/repo/target/debug/deps/hls_serve-abc843362ccab320.d: crates/serve/src/bin/serve.rs Cargo.toml

/root/repo/target/debug/deps/libhls_serve-abc843362ccab320.rmeta: crates/serve/src/bin/serve.rs Cargo.toml

crates/serve/src/bin/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
