/root/repo/target/debug/deps/experiments-11694dea864a9138.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-11694dea864a9138: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
