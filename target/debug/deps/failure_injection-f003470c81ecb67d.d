/root/repo/target/debug/deps/failure_injection-f003470c81ecb67d.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-f003470c81ecb67d: tests/failure_injection.rs

tests/failure_injection.rs:
