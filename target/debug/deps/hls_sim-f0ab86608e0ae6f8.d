/root/repo/target/debug/deps/hls_sim-f0ab86608e0ae6f8.d: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/hls_sim-f0ab86608e0ae6f8: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/behav.rs:
crates/sim/src/equiv.rs:
crates/sim/src/rtl.rs:
crates/sim/src/vcd.rs:
