/root/repo/target/debug/deps/hls_bench-37b29471b6ac4af6.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libhls_bench-37b29471b6ac4af6.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
