/root/repo/target/debug/deps/clique_differential-5e92462a4e02de1a.d: crates/alloc/tests/clique_differential.rs

/root/repo/target/debug/deps/clique_differential-5e92462a4e02de1a: crates/alloc/tests/clique_differential.rs

crates/alloc/tests/clique_differential.rs:
