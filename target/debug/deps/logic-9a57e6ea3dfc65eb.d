/root/repo/target/debug/deps/logic-9a57e6ea3dfc65eb.d: crates/bench/benches/logic.rs Cargo.toml

/root/repo/target/debug/deps/liblogic-9a57e6ea3dfc65eb.rmeta: crates/bench/benches/logic.rs Cargo.toml

crates/bench/benches/logic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
