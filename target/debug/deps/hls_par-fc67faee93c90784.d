/root/repo/target/debug/deps/hls_par-fc67faee93c90784.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhls_par-fc67faee93c90784.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
