/root/repo/target/debug/deps/hls_testkit-848a22a8f952e15d.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/hls_testkit-848a22a8f952e15d: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
