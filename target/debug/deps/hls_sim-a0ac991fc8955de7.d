/root/repo/target/debug/deps/hls_sim-a0ac991fc8955de7.d: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/libhls_sim-a0ac991fc8955de7.rmeta: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/behav.rs:
crates/sim/src/equiv.rs:
crates/sim/src/rtl.rs:
crates/sim/src/vcd.rs:
