/root/repo/target/debug/deps/hls_par-b074ac3b1dd8ac38.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/libhls_par-b074ac3b1dd8ac38.rlib: crates/par/src/lib.rs

/root/repo/target/debug/deps/libhls_par-b074ac3b1dd8ac38.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
