/root/repo/target/debug/deps/hls_core-31d04603ff625dea.d: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libhls_core-31d04603ff625dea.rmeta: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/explore.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
