/root/repo/target/debug/deps/hls-0a91dd5f893af777.d: src/lib.rs

/root/repo/target/debug/deps/hls-0a91dd5f893af777: src/lib.rs

src/lib.rs:
