/root/repo/target/debug/deps/hls_bench-5ecb637a2155b6e8.d: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs crates/bench/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libhls_bench-5ecb637a2155b6e8.rmeta: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs crates/bench/src/suite.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/gate.rs:
crates/bench/src/harness.rs:
crates/bench/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
