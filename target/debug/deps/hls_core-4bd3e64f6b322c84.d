/root/repo/target/debug/deps/hls_core-4bd3e64f6b322c84.d: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/debug/deps/hls_core-4bd3e64f6b322c84: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/explore.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
