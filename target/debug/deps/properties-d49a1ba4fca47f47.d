/root/repo/target/debug/deps/properties-d49a1ba4fca47f47.d: crates/sched/tests/properties.rs

/root/repo/target/debug/deps/properties-d49a1ba4fca47f47: crates/sched/tests/properties.rs

crates/sched/tests/properties.rs:
