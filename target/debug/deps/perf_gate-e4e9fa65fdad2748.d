/root/repo/target/debug/deps/perf_gate-e4e9fa65fdad2748.d: crates/bench/src/bin/perf_gate.rs Cargo.toml

/root/repo/target/debug/deps/libperf_gate-e4e9fa65fdad2748.rmeta: crates/bench/src/bin/perf_gate.rs Cargo.toml

crates/bench/src/bin/perf_gate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
