/root/repo/target/debug/deps/paper_numbers-ff93d00042b20a18.d: tests/paper_numbers.rs

/root/repo/target/debug/deps/paper_numbers-ff93d00042b20a18: tests/paper_numbers.rs

tests/paper_numbers.rs:
