/root/repo/target/debug/deps/hls-2e2b35c1b70f96d3.d: src/lib.rs

/root/repo/target/debug/deps/hls-2e2b35c1b70f96d3: src/lib.rs

src/lib.rs:
