/root/repo/target/debug/deps/hls_alloc-85b8ca71c750cb36.d: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs

/root/repo/target/debug/deps/libhls_alloc-85b8ca71c750cb36.rmeta: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs

crates/alloc/src/lib.rs:
crates/alloc/src/clique.rs:
crates/alloc/src/datapath.rs:
crates/alloc/src/error.rs:
crates/alloc/src/fu.rs:
crates/alloc/src/ilp.rs:
crates/alloc/src/interconnect.rs:
crates/alloc/src/lifetime.rs:
crates/alloc/src/registers.rs:
