/root/repo/target/debug/deps/hls_serve-d8fadf95c0d42c2e.d: crates/serve/src/bin/serve.rs Cargo.toml

/root/repo/target/debug/deps/libhls_serve-d8fadf95c0d42c2e.rmeta: crates/serve/src/bin/serve.rs Cargo.toml

crates/serve/src/bin/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
