/root/repo/target/debug/deps/hls_lang-6f172236dda9cfb4.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs Cargo.toml

/root/repo/target/debug/deps/libhls_lang-6f172236dda9cfb4.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs Cargo.toml

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/error.rs:
crates/lang/src/lexer.rs:
crates/lang/src/lower.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
