/root/repo/target/debug/deps/hls_cdfg-0ccc57e60144ce8b.d: crates/cdfg/src/lib.rs crates/cdfg/src/analysis.rs crates/cdfg/src/cdfg.rs crates/cdfg/src/dense.rs crates/cdfg/src/dfg.rs crates/cdfg/src/dot.rs crates/cdfg/src/error.rs crates/cdfg/src/fixed.rs crates/cdfg/src/ids.rs crates/cdfg/src/op.rs

/root/repo/target/debug/deps/libhls_cdfg-0ccc57e60144ce8b.rmeta: crates/cdfg/src/lib.rs crates/cdfg/src/analysis.rs crates/cdfg/src/cdfg.rs crates/cdfg/src/dense.rs crates/cdfg/src/dfg.rs crates/cdfg/src/dot.rs crates/cdfg/src/error.rs crates/cdfg/src/fixed.rs crates/cdfg/src/ids.rs crates/cdfg/src/op.rs

crates/cdfg/src/lib.rs:
crates/cdfg/src/analysis.rs:
crates/cdfg/src/cdfg.rs:
crates/cdfg/src/dense.rs:
crates/cdfg/src/dfg.rs:
crates/cdfg/src/dot.rs:
crates/cdfg/src/error.rs:
crates/cdfg/src/fixed.rs:
crates/cdfg/src/ids.rs:
crates/cdfg/src/op.rs:
