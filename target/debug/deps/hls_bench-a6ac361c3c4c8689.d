/root/repo/target/debug/deps/hls_bench-a6ac361c3c4c8689.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libhls_bench-a6ac361c3c4c8689.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
