/root/repo/target/debug/deps/allocation-51f7f98d4dcb22ce.d: crates/bench/benches/allocation.rs Cargo.toml

/root/repo/target/debug/deps/liballocation-51f7f98d4dcb22ce.rmeta: crates/bench/benches/allocation.rs Cargo.toml

crates/bench/benches/allocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
