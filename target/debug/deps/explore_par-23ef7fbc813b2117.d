/root/repo/target/debug/deps/explore_par-23ef7fbc813b2117.d: crates/core/tests/explore_par.rs Cargo.toml

/root/repo/target/debug/deps/libexplore_par-23ef7fbc813b2117.rmeta: crates/core/tests/explore_par.rs Cargo.toml

crates/core/tests/explore_par.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
