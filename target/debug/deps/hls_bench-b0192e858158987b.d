/root/repo/target/debug/deps/hls_bench-b0192e858158987b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libhls_bench-b0192e858158987b.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libhls_bench-b0192e858158987b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
