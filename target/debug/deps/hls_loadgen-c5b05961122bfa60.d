/root/repo/target/debug/deps/hls_loadgen-c5b05961122bfa60.d: crates/serve/src/bin/loadgen.rs

/root/repo/target/debug/deps/hls_loadgen-c5b05961122bfa60: crates/serve/src/bin/loadgen.rs

crates/serve/src/bin/loadgen.rs:
