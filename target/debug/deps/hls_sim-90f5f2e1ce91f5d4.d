/root/repo/target/debug/deps/hls_sim-90f5f2e1ce91f5d4.d: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs Cargo.toml

/root/repo/target/debug/deps/libhls_sim-90f5f2e1ce91f5d4.rmeta: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/behav.rs:
crates/sim/src/equiv.rs:
crates/sim/src/rtl.rs:
crates/sim/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
