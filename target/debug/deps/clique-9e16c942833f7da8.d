/root/repo/target/debug/deps/clique-9e16c942833f7da8.d: crates/bench/benches/clique.rs Cargo.toml

/root/repo/target/debug/deps/libclique-9e16c942833f7da8.rmeta: crates/bench/benches/clique.rs Cargo.toml

crates/bench/benches/clique.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
