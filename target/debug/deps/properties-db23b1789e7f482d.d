/root/repo/target/debug/deps/properties-db23b1789e7f482d.d: crates/sched/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-db23b1789e7f482d.rmeta: crates/sched/tests/properties.rs Cargo.toml

crates/sched/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
