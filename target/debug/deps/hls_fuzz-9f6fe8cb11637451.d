/root/repo/target/debug/deps/hls_fuzz-9f6fe8cb11637451.d: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

/root/repo/target/debug/deps/hls_fuzz-9f6fe8cb11637451: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/minimize.rs:
