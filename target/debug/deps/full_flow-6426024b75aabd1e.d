/root/repo/target/debug/deps/full_flow-6426024b75aabd1e.d: tests/full_flow.rs

/root/repo/target/debug/deps/full_flow-6426024b75aabd1e: tests/full_flow.rs

tests/full_flow.rs:
