/root/repo/target/debug/deps/properties-ab55b4af378d5aba.d: crates/cdfg/tests/properties.rs

/root/repo/target/debug/deps/properties-ab55b4af378d5aba: crates/cdfg/tests/properties.rs

crates/cdfg/tests/properties.rs:
