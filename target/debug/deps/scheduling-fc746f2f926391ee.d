/root/repo/target/debug/deps/scheduling-fc746f2f926391ee.d: crates/bench/benches/scheduling.rs Cargo.toml

/root/repo/target/debug/deps/libscheduling-fc746f2f926391ee.rmeta: crates/bench/benches/scheduling.rs Cargo.toml

crates/bench/benches/scheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
