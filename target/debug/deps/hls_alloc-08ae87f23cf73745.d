/root/repo/target/debug/deps/hls_alloc-08ae87f23cf73745.d: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs

/root/repo/target/debug/deps/libhls_alloc-08ae87f23cf73745.rlib: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs

/root/repo/target/debug/deps/libhls_alloc-08ae87f23cf73745.rmeta: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs

crates/alloc/src/lib.rs:
crates/alloc/src/clique.rs:
crates/alloc/src/datapath.rs:
crates/alloc/src/error.rs:
crates/alloc/src/fu.rs:
crates/alloc/src/ilp.rs:
crates/alloc/src/interconnect.rs:
crates/alloc/src/lifetime.rs:
crates/alloc/src/registers.rs:
