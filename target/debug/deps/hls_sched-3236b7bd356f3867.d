/root/repo/target/debug/deps/hls_sched-3236b7bd356f3867.d: crates/sched/src/lib.rs crates/sched/src/alap.rs crates/sched/src/asap.rs crates/sched/src/bb.rs crates/sched/src/bounds.rs crates/sched/src/cdfg_sched.rs crates/sched/src/chain.rs crates/sched/src/error.rs crates/sched/src/force.rs crates/sched/src/freedom.rs crates/sched/src/hforce.rs crates/sched/src/list.rs crates/sched/src/pipeline.rs crates/sched/src/precedence.rs crates/sched/src/resource.rs crates/sched/src/schedule.rs crates/sched/src/transform.rs

/root/repo/target/debug/deps/hls_sched-3236b7bd356f3867: crates/sched/src/lib.rs crates/sched/src/alap.rs crates/sched/src/asap.rs crates/sched/src/bb.rs crates/sched/src/bounds.rs crates/sched/src/cdfg_sched.rs crates/sched/src/chain.rs crates/sched/src/error.rs crates/sched/src/force.rs crates/sched/src/freedom.rs crates/sched/src/hforce.rs crates/sched/src/list.rs crates/sched/src/pipeline.rs crates/sched/src/precedence.rs crates/sched/src/resource.rs crates/sched/src/schedule.rs crates/sched/src/transform.rs

crates/sched/src/lib.rs:
crates/sched/src/alap.rs:
crates/sched/src/asap.rs:
crates/sched/src/bb.rs:
crates/sched/src/bounds.rs:
crates/sched/src/cdfg_sched.rs:
crates/sched/src/chain.rs:
crates/sched/src/error.rs:
crates/sched/src/force.rs:
crates/sched/src/freedom.rs:
crates/sched/src/hforce.rs:
crates/sched/src/list.rs:
crates/sched/src/pipeline.rs:
crates/sched/src/precedence.rs:
crates/sched/src/resource.rs:
crates/sched/src/schedule.rs:
crates/sched/src/transform.rs:
