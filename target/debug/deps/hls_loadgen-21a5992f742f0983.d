/root/repo/target/debug/deps/hls_loadgen-21a5992f742f0983.d: crates/serve/src/bin/loadgen.rs

/root/repo/target/debug/deps/hls_loadgen-21a5992f742f0983: crates/serve/src/bin/loadgen.rs

crates/serve/src/bin/loadgen.rs:
