/root/repo/target/debug/deps/hls_sim-00c2024a1362a5c6.d: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/hls_sim-00c2024a1362a5c6: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/behav.rs:
crates/sim/src/equiv.rs:
crates/sim/src/rtl.rs:
crates/sim/src/vcd.rs:
