/root/repo/target/debug/deps/hls_core-30f92442abce2e56.d: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libhls_core-30f92442abce2e56.rmeta: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/explore.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
