/root/repo/target/debug/deps/scheduling-007eeb995cab7a3d.d: crates/bench/benches/scheduling.rs Cargo.toml

/root/repo/target/debug/deps/libscheduling-007eeb995cab7a3d.rmeta: crates/bench/benches/scheduling.rs Cargo.toml

crates/bench/benches/scheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
