/root/repo/target/debug/deps/hls_alloc-235d756f1a97ef6d.d: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs Cargo.toml

/root/repo/target/debug/deps/libhls_alloc-235d756f1a97ef6d.rmeta: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs Cargo.toml

crates/alloc/src/lib.rs:
crates/alloc/src/clique.rs:
crates/alloc/src/datapath.rs:
crates/alloc/src/error.rs:
crates/alloc/src/fu.rs:
crates/alloc/src/ilp.rs:
crates/alloc/src/interconnect.rs:
crates/alloc/src/lifetime.rs:
crates/alloc/src/registers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
