/root/repo/target/debug/deps/hls_rtl-236447f93d50a08a.d: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs Cargo.toml

/root/repo/target/debug/deps/libhls_rtl-236447f93d50a08a.rmeta: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs Cargo.toml

crates/rtl/src/lib.rs:
crates/rtl/src/area.rs:
crates/rtl/src/library.rs:
crates/rtl/src/netlist.rs:
crates/rtl/src/verilog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
