/root/repo/target/debug/deps/hls-4b53f5ce8eee7011.d: src/lib.rs

/root/repo/target/debug/deps/libhls-4b53f5ce8eee7011.rmeta: src/lib.rs

src/lib.rs:
