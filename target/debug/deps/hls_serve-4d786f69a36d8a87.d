/root/repo/target/debug/deps/hls_serve-4d786f69a36d8a87.d: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs Cargo.toml

/root/repo/target/debug/deps/libhls_serve-4d786f69a36d8a87.rmeta: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/api.rs:
crates/serve/src/cache.rs:
crates/serve/src/http.rs:
crates/serve/src/json.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/signal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
