/root/repo/target/debug/deps/hls_par-3bd24e7a45e37f41.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/libhls_par-3bd24e7a45e37f41.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
