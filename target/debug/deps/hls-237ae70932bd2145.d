/root/repo/target/debug/deps/hls-237ae70932bd2145.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhls-237ae70932bd2145.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
