/root/repo/target/debug/deps/regressions-16c5aed54596395f.d: crates/fuzz/tests/regressions.rs Cargo.toml

/root/repo/target/debug/deps/libregressions-16c5aed54596395f.rmeta: crates/fuzz/tests/regressions.rs Cargo.toml

crates/fuzz/tests/regressions.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/fuzz
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
