/root/repo/target/debug/deps/allocation-c203fec1c95f7939.d: crates/bench/benches/allocation.rs Cargo.toml

/root/repo/target/debug/deps/liballocation-c203fec1c95f7939.rmeta: crates/bench/benches/allocation.rs Cargo.toml

crates/bench/benches/allocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
