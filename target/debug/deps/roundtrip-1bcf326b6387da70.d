/root/repo/target/debug/deps/roundtrip-1bcf326b6387da70.d: tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-1bcf326b6387da70: tests/roundtrip.rs

tests/roundtrip.rs:
