/root/repo/target/debug/deps/hls_ctrl-a0ceee8e49f5e040.d: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

/root/repo/target/debug/deps/hls_ctrl-a0ceee8e49f5e040: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

crates/ctrl/src/lib.rs:
crates/ctrl/src/encode.rs:
crates/ctrl/src/fsm.rs:
crates/ctrl/src/logic.rs:
crates/ctrl/src/microcode.rs:
crates/ctrl/src/minimize.rs:
