/root/repo/target/debug/deps/hls_serve-4ee524d4091ed387.d: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs

/root/repo/target/debug/deps/libhls_serve-4ee524d4091ed387.rlib: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs

/root/repo/target/debug/deps/libhls_serve-4ee524d4091ed387.rmeta: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs

crates/serve/src/lib.rs:
crates/serve/src/api.rs:
crates/serve/src/cache.rs:
crates/serve/src/http.rs:
crates/serve/src/json.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/signal.rs:
