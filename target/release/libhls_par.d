/root/repo/target/release/libhls_par.rlib: /root/repo/crates/par/src/lib.rs
