/root/repo/target/release/libhls_testkit.rlib: /root/repo/crates/testkit/src/lib.rs
