/root/repo/target/release/examples/serve_roundtrip-2864ad75f61be6bd.d: examples/serve_roundtrip.rs

/root/repo/target/release/examples/serve_roundtrip-2864ad75f61be6bd: examples/serve_roundtrip.rs

examples/serve_roundtrip.rs:
