/root/repo/target/release/examples/serve_roundtrip-c291d0f6f480b100.d: examples/serve_roundtrip.rs

/root/repo/target/release/examples/serve_roundtrip-c291d0f6f480b100: examples/serve_roundtrip.rs

examples/serve_roundtrip.rs:
