/root/repo/target/release/examples/sqrt_newton-27c87ffb56a3b003.d: examples/sqrt_newton.rs

/root/repo/target/release/examples/sqrt_newton-27c87ffb56a3b003: examples/sqrt_newton.rs

examples/sqrt_newton.rs:
