/root/repo/target/release/examples/sort_engine-601487373506c1ff.d: examples/sort_engine.rs

/root/repo/target/release/examples/sort_engine-601487373506c1ff: examples/sort_engine.rs

examples/sort_engine.rs:
