/root/repo/target/release/examples/sort_engine-dd54e39a9bda71b7.d: examples/sort_engine.rs

/root/repo/target/release/examples/sort_engine-dd54e39a9bda71b7: examples/sort_engine.rs

examples/sort_engine.rs:
