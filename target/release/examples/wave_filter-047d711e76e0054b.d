/root/repo/target/release/examples/wave_filter-047d711e76e0054b.d: examples/wave_filter.rs

/root/repo/target/release/examples/wave_filter-047d711e76e0054b: examples/wave_filter.rs

examples/wave_filter.rs:
