/root/repo/target/release/examples/quickstart-7da4be8c9bbe8d80.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7da4be8c9bbe8d80: examples/quickstart.rs

examples/quickstart.rs:
