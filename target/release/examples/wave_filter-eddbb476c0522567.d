/root/repo/target/release/examples/wave_filter-eddbb476c0522567.d: examples/wave_filter.rs

/root/repo/target/release/examples/wave_filter-eddbb476c0522567: examples/wave_filter.rs

examples/wave_filter.rs:
