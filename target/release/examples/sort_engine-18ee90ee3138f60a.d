/root/repo/target/release/examples/sort_engine-18ee90ee3138f60a.d: examples/sort_engine.rs

/root/repo/target/release/examples/sort_engine-18ee90ee3138f60a: examples/sort_engine.rs

examples/sort_engine.rs:
