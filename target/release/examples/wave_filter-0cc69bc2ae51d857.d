/root/repo/target/release/examples/wave_filter-0cc69bc2ae51d857.d: examples/wave_filter.rs

/root/repo/target/release/examples/wave_filter-0cc69bc2ae51d857: examples/wave_filter.rs

examples/wave_filter.rs:
