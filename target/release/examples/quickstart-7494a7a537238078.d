/root/repo/target/release/examples/quickstart-7494a7a537238078.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7494a7a537238078: examples/quickstart.rs

examples/quickstart.rs:
