/root/repo/target/release/examples/quickstart-fd145e8156ed8e12.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-fd145e8156ed8e12: examples/quickstart.rs

examples/quickstart.rs:
