/root/repo/target/release/examples/diffeq_explorer-247e38711a6b94f7.d: examples/diffeq_explorer.rs

/root/repo/target/release/examples/diffeq_explorer-247e38711a6b94f7: examples/diffeq_explorer.rs

examples/diffeq_explorer.rs:
