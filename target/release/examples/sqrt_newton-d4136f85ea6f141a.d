/root/repo/target/release/examples/sqrt_newton-d4136f85ea6f141a.d: examples/sqrt_newton.rs

/root/repo/target/release/examples/sqrt_newton-d4136f85ea6f141a: examples/sqrt_newton.rs

examples/sqrt_newton.rs:
