/root/repo/target/release/examples/sqrt_newton-d5afe110a7777142.d: examples/sqrt_newton.rs

/root/repo/target/release/examples/sqrt_newton-d5afe110a7777142: examples/sqrt_newton.rs

examples/sqrt_newton.rs:
