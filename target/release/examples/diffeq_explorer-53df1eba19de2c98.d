/root/repo/target/release/examples/diffeq_explorer-53df1eba19de2c98.d: examples/diffeq_explorer.rs

/root/repo/target/release/examples/diffeq_explorer-53df1eba19de2c98: examples/diffeq_explorer.rs

examples/diffeq_explorer.rs:
