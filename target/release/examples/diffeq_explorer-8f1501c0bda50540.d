/root/repo/target/release/examples/diffeq_explorer-8f1501c0bda50540.d: examples/diffeq_explorer.rs

/root/repo/target/release/examples/diffeq_explorer-8f1501c0bda50540: examples/diffeq_explorer.rs

examples/diffeq_explorer.rs:
