/root/repo/target/release/deps/logic-bf9ab4a501682710.d: crates/bench/benches/logic.rs

/root/repo/target/release/deps/logic-bf9ab4a501682710: crates/bench/benches/logic.rs

crates/bench/benches/logic.rs:
