/root/repo/target/release/deps/hls_fuzz-c03bb200c2a50776.d: crates/fuzz/src/main.rs

/root/repo/target/release/deps/hls_fuzz-c03bb200c2a50776: crates/fuzz/src/main.rs

crates/fuzz/src/main.rs:
