/root/repo/target/release/deps/hls_core-d34bc1a2db74a7b5.d: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/libhls_core-d34bc1a2db74a7b5.rlib: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/libhls_core-d34bc1a2db74a7b5.rmeta: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/explore.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
