/root/repo/target/release/deps/hls_serve-166586b7ae121525.d: crates/serve/src/bin/serve.rs

/root/repo/target/release/deps/hls_serve-166586b7ae121525: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
