/root/repo/target/release/deps/hls_serve-cd73984f45921c68.d: crates/serve/src/bin/serve.rs

/root/repo/target/release/deps/hls_serve-cd73984f45921c68: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
