/root/repo/target/release/deps/full_flow-b21bee936c59997c.d: tests/full_flow.rs

/root/repo/target/release/deps/full_flow-b21bee936c59997c: tests/full_flow.rs

tests/full_flow.rs:
