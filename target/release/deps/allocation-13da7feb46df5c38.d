/root/repo/target/release/deps/allocation-13da7feb46df5c38.d: crates/bench/benches/allocation.rs

/root/repo/target/release/deps/allocation-13da7feb46df5c38: crates/bench/benches/allocation.rs

crates/bench/benches/allocation.rs:
