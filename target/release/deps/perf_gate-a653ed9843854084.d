/root/repo/target/release/deps/perf_gate-a653ed9843854084.d: crates/bench/src/bin/perf_gate.rs

/root/repo/target/release/deps/perf_gate-a653ed9843854084: crates/bench/src/bin/perf_gate.rs

crates/bench/src/bin/perf_gate.rs:
