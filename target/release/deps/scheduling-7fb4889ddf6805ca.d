/root/repo/target/release/deps/scheduling-7fb4889ddf6805ca.d: crates/bench/benches/scheduling.rs

/root/repo/target/release/deps/scheduling-7fb4889ddf6805ca: crates/bench/benches/scheduling.rs

crates/bench/benches/scheduling.rs:
