/root/repo/target/release/deps/allocation-7a9a56801cc3a64a.d: crates/bench/benches/allocation.rs

/root/repo/target/release/deps/allocation-7a9a56801cc3a64a: crates/bench/benches/allocation.rs

crates/bench/benches/allocation.rs:
