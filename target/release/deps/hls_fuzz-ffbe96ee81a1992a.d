/root/repo/target/release/deps/hls_fuzz-ffbe96ee81a1992a.d: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

/root/repo/target/release/deps/libhls_fuzz-ffbe96ee81a1992a.rlib: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

/root/repo/target/release/deps/libhls_fuzz-ffbe96ee81a1992a.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/minimize.rs:
