/root/repo/target/release/deps/server_e2e-a351dcd346a93899.d: crates/serve/tests/server_e2e.rs

/root/repo/target/release/deps/server_e2e-a351dcd346a93899: crates/serve/tests/server_e2e.rs

crates/serve/tests/server_e2e.rs:
