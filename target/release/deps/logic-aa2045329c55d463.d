/root/repo/target/release/deps/logic-aa2045329c55d463.d: crates/bench/benches/logic.rs

/root/repo/target/release/deps/logic-aa2045329c55d463: crates/bench/benches/logic.rs

crates/bench/benches/logic.rs:
