/root/repo/target/release/deps/hls_workloads-28e9a69b35a33d74.d: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs

/root/repo/target/release/deps/hls_workloads-28e9a69b35a33d74: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmarks.rs:
crates/workloads/src/figures.rs:
crates/workloads/src/random.rs:
crates/workloads/src/sources.rs:
