/root/repo/target/release/deps/e2e-fae7e295ff7d67b4.d: crates/bench/benches/e2e.rs

/root/repo/target/release/deps/e2e-fae7e295ff7d67b4: crates/bench/benches/e2e.rs

crates/bench/benches/e2e.rs:
