/root/repo/target/release/deps/perf_gate-148a8bd559333eff.d: crates/bench/src/bin/perf_gate.rs

/root/repo/target/release/deps/perf_gate-148a8bd559333eff: crates/bench/src/bin/perf_gate.rs

crates/bench/src/bin/perf_gate.rs:
