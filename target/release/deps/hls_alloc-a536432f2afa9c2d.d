/root/repo/target/release/deps/hls_alloc-a536432f2afa9c2d.d: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs

/root/repo/target/release/deps/hls_alloc-a536432f2afa9c2d: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs

crates/alloc/src/lib.rs:
crates/alloc/src/clique.rs:
crates/alloc/src/datapath.rs:
crates/alloc/src/error.rs:
crates/alloc/src/fu.rs:
crates/alloc/src/ilp.rs:
crates/alloc/src/interconnect.rs:
crates/alloc/src/lifetime.rs:
crates/alloc/src/registers.rs:
