/root/repo/target/release/deps/roundtrip-43be26d0cdd0dc53.d: tests/roundtrip.rs

/root/repo/target/release/deps/roundtrip-43be26d0cdd0dc53: tests/roundtrip.rs

tests/roundtrip.rs:
