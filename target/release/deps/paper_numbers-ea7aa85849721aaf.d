/root/repo/target/release/deps/paper_numbers-ea7aa85849721aaf.d: tests/paper_numbers.rs

/root/repo/target/release/deps/paper_numbers-ea7aa85849721aaf: tests/paper_numbers.rs

tests/paper_numbers.rs:
