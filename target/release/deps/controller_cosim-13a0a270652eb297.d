/root/repo/target/release/deps/controller_cosim-13a0a270652eb297.d: tests/controller_cosim.rs

/root/repo/target/release/deps/controller_cosim-13a0a270652eb297: tests/controller_cosim.rs

tests/controller_cosim.rs:
