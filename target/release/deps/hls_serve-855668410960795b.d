/root/repo/target/release/deps/hls_serve-855668410960795b.d: crates/serve/src/bin/serve.rs

/root/repo/target/release/deps/hls_serve-855668410960795b: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
