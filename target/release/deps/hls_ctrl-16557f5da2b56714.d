/root/repo/target/release/deps/hls_ctrl-16557f5da2b56714.d: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

/root/repo/target/release/deps/hls_ctrl-16557f5da2b56714: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

crates/ctrl/src/lib.rs:
crates/ctrl/src/encode.rs:
crates/ctrl/src/fsm.rs:
crates/ctrl/src/logic.rs:
crates/ctrl/src/microcode.rs:
crates/ctrl/src/minimize.rs:
