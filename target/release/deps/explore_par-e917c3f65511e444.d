/root/repo/target/release/deps/explore_par-e917c3f65511e444.d: crates/core/tests/explore_par.rs

/root/repo/target/release/deps/explore_par-e917c3f65511e444: crates/core/tests/explore_par.rs

crates/core/tests/explore_par.rs:
