/root/repo/target/release/deps/e2e-cc8cbd34ba1eeef9.d: crates/bench/benches/e2e.rs

/root/repo/target/release/deps/e2e-cc8cbd34ba1eeef9: crates/bench/benches/e2e.rs

crates/bench/benches/e2e.rs:
