/root/repo/target/release/deps/controller_cosim-fc32c216317a6f8b.d: tests/controller_cosim.rs

/root/repo/target/release/deps/controller_cosim-fc32c216317a6f8b: tests/controller_cosim.rs

tests/controller_cosim.rs:
