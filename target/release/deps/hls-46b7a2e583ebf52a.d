/root/repo/target/release/deps/hls-46b7a2e583ebf52a.d: src/lib.rs

/root/repo/target/release/deps/libhls-46b7a2e583ebf52a.rlib: src/lib.rs

/root/repo/target/release/deps/libhls-46b7a2e583ebf52a.rmeta: src/lib.rs

src/lib.rs:
