/root/repo/target/release/deps/experiments-66375d35f07bd965.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-66375d35f07bd965: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
