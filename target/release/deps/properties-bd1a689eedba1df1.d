/root/repo/target/release/deps/properties-bd1a689eedba1df1.d: crates/sched/tests/properties.rs

/root/repo/target/release/deps/properties-bd1a689eedba1df1: crates/sched/tests/properties.rs

crates/sched/tests/properties.rs:
