/root/repo/target/release/deps/hls_loadgen-9b2f4df16ca3b42b.d: crates/serve/src/bin/loadgen.rs

/root/repo/target/release/deps/hls_loadgen-9b2f4df16ca3b42b: crates/serve/src/bin/loadgen.rs

crates/serve/src/bin/loadgen.rs:
