/root/repo/target/release/deps/hls_rtl-494e269006246e4a.d: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

/root/repo/target/release/deps/libhls_rtl-494e269006246e4a.rlib: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

/root/repo/target/release/deps/libhls_rtl-494e269006246e4a.rmeta: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

crates/rtl/src/lib.rs:
crates/rtl/src/area.rs:
crates/rtl/src/library.rs:
crates/rtl/src/netlist.rs:
crates/rtl/src/verilog.rs:
