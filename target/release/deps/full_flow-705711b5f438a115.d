/root/repo/target/release/deps/full_flow-705711b5f438a115.d: tests/full_flow.rs

/root/repo/target/release/deps/full_flow-705711b5f438a115: tests/full_flow.rs

tests/full_flow.rs:
