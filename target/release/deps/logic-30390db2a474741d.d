/root/repo/target/release/deps/logic-30390db2a474741d.d: crates/bench/benches/logic.rs

/root/repo/target/release/deps/logic-30390db2a474741d: crates/bench/benches/logic.rs

crates/bench/benches/logic.rs:
