/root/repo/target/release/deps/hls_serve-1b1ef1b8d377d3db.d: crates/serve/src/bin/serve.rs

/root/repo/target/release/deps/hls_serve-1b1ef1b8d377d3db: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
