/root/repo/target/release/deps/hls_loadgen-5358de998a98141d.d: crates/serve/src/bin/loadgen.rs

/root/repo/target/release/deps/hls_loadgen-5358de998a98141d: crates/serve/src/bin/loadgen.rs

crates/serve/src/bin/loadgen.rs:
