/root/repo/target/release/deps/hls_bench-67436ad64556bdac.d: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs crates/bench/src/suite.rs

/root/repo/target/release/deps/hls_bench-67436ad64556bdac: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/gate.rs:
crates/bench/src/harness.rs:
crates/bench/src/suite.rs:
