/root/repo/target/release/deps/hls_workloads-966350e20a037f67.d: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs

/root/repo/target/release/deps/libhls_workloads-966350e20a037f67.rlib: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs

/root/repo/target/release/deps/libhls_workloads-966350e20a037f67.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/figures.rs crates/workloads/src/random.rs crates/workloads/src/sources.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmarks.rs:
crates/workloads/src/figures.rs:
crates/workloads/src/random.rs:
crates/workloads/src/sources.rs:
