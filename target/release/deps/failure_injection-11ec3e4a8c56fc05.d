/root/repo/target/release/deps/failure_injection-11ec3e4a8c56fc05.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-11ec3e4a8c56fc05: tests/failure_injection.rs

tests/failure_injection.rs:
