/root/repo/target/release/deps/hls_sim-182fea959ef2196f.d: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/release/deps/hls_sim-182fea959ef2196f: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/behav.rs:
crates/sim/src/equiv.rs:
crates/sim/src/rtl.rs:
crates/sim/src/vcd.rs:
