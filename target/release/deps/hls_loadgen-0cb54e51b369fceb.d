/root/repo/target/release/deps/hls_loadgen-0cb54e51b369fceb.d: crates/serve/src/bin/loadgen.rs

/root/repo/target/release/deps/hls_loadgen-0cb54e51b369fceb: crates/serve/src/bin/loadgen.rs

crates/serve/src/bin/loadgen.rs:
