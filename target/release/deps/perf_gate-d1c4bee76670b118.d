/root/repo/target/release/deps/perf_gate-d1c4bee76670b118.d: crates/bench/src/bin/perf_gate.rs

/root/repo/target/release/deps/perf_gate-d1c4bee76670b118: crates/bench/src/bin/perf_gate.rs

crates/bench/src/bin/perf_gate.rs:
