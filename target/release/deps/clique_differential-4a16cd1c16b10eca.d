/root/repo/target/release/deps/clique_differential-4a16cd1c16b10eca.d: crates/alloc/tests/clique_differential.rs

/root/repo/target/release/deps/clique_differential-4a16cd1c16b10eca: crates/alloc/tests/clique_differential.rs

crates/alloc/tests/clique_differential.rs:
