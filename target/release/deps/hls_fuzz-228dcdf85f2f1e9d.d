/root/repo/target/release/deps/hls_fuzz-228dcdf85f2f1e9d.d: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

/root/repo/target/release/deps/hls_fuzz-228dcdf85f2f1e9d: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/minimize.rs:
