/root/repo/target/release/deps/hls_serve-e6c692c27a187f77.d: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs

/root/repo/target/release/deps/libhls_serve-e6c692c27a187f77.rlib: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs

/root/repo/target/release/deps/libhls_serve-e6c692c27a187f77.rmeta: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs

crates/serve/src/lib.rs:
crates/serve/src/api.rs:
crates/serve/src/cache.rs:
crates/serve/src/http.rs:
crates/serve/src/json.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/signal.rs:
