/root/repo/target/release/deps/hls_fuzz-b78f1eca85d588fc.d: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

/root/repo/target/release/deps/hls_fuzz-b78f1eca85d588fc: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/minimize.rs:
