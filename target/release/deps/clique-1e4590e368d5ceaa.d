/root/repo/target/release/deps/clique-1e4590e368d5ceaa.d: crates/bench/benches/clique.rs

/root/repo/target/release/deps/clique-1e4590e368d5ceaa: crates/bench/benches/clique.rs

crates/bench/benches/clique.rs:
