/root/repo/target/release/deps/hls_core-886c3f7feb269da3.d: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/hls_core-886c3f7feb269da3: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/explore.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
