/root/repo/target/release/deps/paper_numbers-12af2f26ad0d1963.d: tests/paper_numbers.rs

/root/repo/target/release/deps/paper_numbers-12af2f26ad0d1963: tests/paper_numbers.rs

tests/paper_numbers.rs:
