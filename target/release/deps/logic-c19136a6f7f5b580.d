/root/repo/target/release/deps/logic-c19136a6f7f5b580.d: crates/bench/benches/logic.rs

/root/repo/target/release/deps/logic-c19136a6f7f5b580: crates/bench/benches/logic.rs

crates/bench/benches/logic.rs:
