/root/repo/target/release/deps/hls_rtl-f034f84b6ef1ecc9.d: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

/root/repo/target/release/deps/hls_rtl-f034f84b6ef1ecc9: crates/rtl/src/lib.rs crates/rtl/src/area.rs crates/rtl/src/library.rs crates/rtl/src/netlist.rs crates/rtl/src/verilog.rs

crates/rtl/src/lib.rs:
crates/rtl/src/area.rs:
crates/rtl/src/library.rs:
crates/rtl/src/netlist.rs:
crates/rtl/src/verilog.rs:
