/root/repo/target/release/deps/hls_bench-7d859d4d280bbb21.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libhls_bench-7d859d4d280bbb21.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libhls_bench-7d859d4d280bbb21.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
