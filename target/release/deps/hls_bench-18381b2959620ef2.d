/root/repo/target/release/deps/hls_bench-18381b2959620ef2.d: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs crates/bench/src/suite.rs

/root/repo/target/release/deps/libhls_bench-18381b2959620ef2.rlib: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs crates/bench/src/suite.rs

/root/repo/target/release/deps/libhls_bench-18381b2959620ef2.rmeta: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/gate.rs:
crates/bench/src/harness.rs:
crates/bench/src/suite.rs:
