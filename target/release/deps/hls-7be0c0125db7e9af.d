/root/repo/target/release/deps/hls-7be0c0125db7e9af.d: src/lib.rs

/root/repo/target/release/deps/hls-7be0c0125db7e9af: src/lib.rs

src/lib.rs:
