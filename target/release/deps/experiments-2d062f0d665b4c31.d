/root/repo/target/release/deps/experiments-2d062f0d665b4c31.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-2d062f0d665b4c31: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
