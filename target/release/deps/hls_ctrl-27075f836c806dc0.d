/root/repo/target/release/deps/hls_ctrl-27075f836c806dc0.d: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

/root/repo/target/release/deps/hls_ctrl-27075f836c806dc0: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

crates/ctrl/src/lib.rs:
crates/ctrl/src/encode.rs:
crates/ctrl/src/fsm.rs:
crates/ctrl/src/logic.rs:
crates/ctrl/src/microcode.rs:
crates/ctrl/src/minimize.rs:
