/root/repo/target/release/deps/hls_par-61c6e9b61ef0d176.d: crates/par/src/lib.rs

/root/repo/target/release/deps/hls_par-61c6e9b61ef0d176: crates/par/src/lib.rs

crates/par/src/lib.rs:
