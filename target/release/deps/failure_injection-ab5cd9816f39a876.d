/root/repo/target/release/deps/failure_injection-ab5cd9816f39a876.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-ab5cd9816f39a876: tests/failure_injection.rs

tests/failure_injection.rs:
