/root/repo/target/release/deps/hls_fuzz-9e78c4351f263166.d: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

/root/repo/target/release/deps/libhls_fuzz-9e78c4351f263166.rlib: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

/root/repo/target/release/deps/libhls_fuzz-9e78c4351f263166.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/corpus.rs crates/fuzz/src/gen.rs crates/fuzz/src/minimize.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/minimize.rs:
