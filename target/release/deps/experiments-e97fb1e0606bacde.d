/root/repo/target/release/deps/experiments-e97fb1e0606bacde.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-e97fb1e0606bacde: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
