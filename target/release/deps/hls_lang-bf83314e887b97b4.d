/root/repo/target/release/deps/hls_lang-bf83314e887b97b4.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs

/root/repo/target/release/deps/libhls_lang-bf83314e887b97b4.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs

/root/repo/target/release/deps/libhls_lang-bf83314e887b97b4.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/error.rs:
crates/lang/src/lexer.rs:
crates/lang/src/lower.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
