/root/repo/target/release/deps/hls_sim-2d23c200805fcd69.d: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/release/deps/hls_sim-2d23c200805fcd69: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/behav.rs:
crates/sim/src/equiv.rs:
crates/sim/src/rtl.rs:
crates/sim/src/vcd.rs:
