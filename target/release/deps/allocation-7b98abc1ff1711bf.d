/root/repo/target/release/deps/allocation-7b98abc1ff1711bf.d: crates/bench/benches/allocation.rs

/root/repo/target/release/deps/allocation-7b98abc1ff1711bf: crates/bench/benches/allocation.rs

crates/bench/benches/allocation.rs:
