/root/repo/target/release/deps/perf_gate-e439f88e1fbd36c9.d: crates/bench/src/bin/perf_gate.rs

/root/repo/target/release/deps/perf_gate-e439f88e1fbd36c9: crates/bench/src/bin/perf_gate.rs

crates/bench/src/bin/perf_gate.rs:
