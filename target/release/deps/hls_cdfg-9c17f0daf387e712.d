/root/repo/target/release/deps/hls_cdfg-9c17f0daf387e712.d: crates/cdfg/src/lib.rs crates/cdfg/src/analysis.rs crates/cdfg/src/cdfg.rs crates/cdfg/src/dense.rs crates/cdfg/src/dfg.rs crates/cdfg/src/dot.rs crates/cdfg/src/error.rs crates/cdfg/src/fixed.rs crates/cdfg/src/ids.rs crates/cdfg/src/op.rs

/root/repo/target/release/deps/libhls_cdfg-9c17f0daf387e712.rlib: crates/cdfg/src/lib.rs crates/cdfg/src/analysis.rs crates/cdfg/src/cdfg.rs crates/cdfg/src/dense.rs crates/cdfg/src/dfg.rs crates/cdfg/src/dot.rs crates/cdfg/src/error.rs crates/cdfg/src/fixed.rs crates/cdfg/src/ids.rs crates/cdfg/src/op.rs

/root/repo/target/release/deps/libhls_cdfg-9c17f0daf387e712.rmeta: crates/cdfg/src/lib.rs crates/cdfg/src/analysis.rs crates/cdfg/src/cdfg.rs crates/cdfg/src/dense.rs crates/cdfg/src/dfg.rs crates/cdfg/src/dot.rs crates/cdfg/src/error.rs crates/cdfg/src/fixed.rs crates/cdfg/src/ids.rs crates/cdfg/src/op.rs

crates/cdfg/src/lib.rs:
crates/cdfg/src/analysis.rs:
crates/cdfg/src/cdfg.rs:
crates/cdfg/src/dense.rs:
crates/cdfg/src/dfg.rs:
crates/cdfg/src/dot.rs:
crates/cdfg/src/error.rs:
crates/cdfg/src/fixed.rs:
crates/cdfg/src/ids.rs:
crates/cdfg/src/op.rs:
