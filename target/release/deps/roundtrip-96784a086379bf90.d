/root/repo/target/release/deps/roundtrip-96784a086379bf90.d: tests/roundtrip.rs

/root/repo/target/release/deps/roundtrip-96784a086379bf90: tests/roundtrip.rs

tests/roundtrip.rs:
