/root/repo/target/release/deps/hls_fuzz-d9704debdb7dce05.d: crates/fuzz/src/main.rs

/root/repo/target/release/deps/hls_fuzz-d9704debdb7dce05: crates/fuzz/src/main.rs

crates/fuzz/src/main.rs:
