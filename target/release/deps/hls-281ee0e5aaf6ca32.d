/root/repo/target/release/deps/hls-281ee0e5aaf6ca32.d: src/lib.rs

/root/repo/target/release/deps/hls-281ee0e5aaf6ca32: src/lib.rs

src/lib.rs:
