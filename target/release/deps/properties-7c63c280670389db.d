/root/repo/target/release/deps/properties-7c63c280670389db.d: crates/cdfg/tests/properties.rs

/root/repo/target/release/deps/properties-7c63c280670389db: crates/cdfg/tests/properties.rs

crates/cdfg/tests/properties.rs:
