/root/repo/target/release/deps/experiments-6c69480afdaf4aa7.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-6c69480afdaf4aa7: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
