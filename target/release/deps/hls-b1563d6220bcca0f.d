/root/repo/target/release/deps/hls-b1563d6220bcca0f.d: src/lib.rs

/root/repo/target/release/deps/libhls-b1563d6220bcca0f.rlib: src/lib.rs

/root/repo/target/release/deps/libhls-b1563d6220bcca0f.rmeta: src/lib.rs

src/lib.rs:
