/root/repo/target/release/deps/regressions-70766ae1ca9a8400.d: crates/fuzz/tests/regressions.rs

/root/repo/target/release/deps/regressions-70766ae1ca9a8400: crates/fuzz/tests/regressions.rs

crates/fuzz/tests/regressions.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/fuzz
