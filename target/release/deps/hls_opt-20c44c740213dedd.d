/root/repo/target/release/deps/hls_opt-20c44c740213dedd.d: crates/opt/src/lib.rs crates/opt/src/copyprop.rs crates/opt/src/cse.rs crates/opt/src/dce.rs crates/opt/src/fold.rs crates/opt/src/ifconv.rs crates/opt/src/narrow.rs crates/opt/src/strength.rs crates/opt/src/unroll.rs

/root/repo/target/release/deps/hls_opt-20c44c740213dedd: crates/opt/src/lib.rs crates/opt/src/copyprop.rs crates/opt/src/cse.rs crates/opt/src/dce.rs crates/opt/src/fold.rs crates/opt/src/ifconv.rs crates/opt/src/narrow.rs crates/opt/src/strength.rs crates/opt/src/unroll.rs

crates/opt/src/lib.rs:
crates/opt/src/copyprop.rs:
crates/opt/src/cse.rs:
crates/opt/src/dce.rs:
crates/opt/src/fold.rs:
crates/opt/src/ifconv.rs:
crates/opt/src/narrow.rs:
crates/opt/src/strength.rs:
crates/opt/src/unroll.rs:
