/root/repo/target/release/deps/properties-55079c3c571c5811.d: crates/sched/tests/properties.rs

/root/repo/target/release/deps/properties-55079c3c571c5811: crates/sched/tests/properties.rs

crates/sched/tests/properties.rs:
