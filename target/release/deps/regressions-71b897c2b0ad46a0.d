/root/repo/target/release/deps/regressions-71b897c2b0ad46a0.d: crates/fuzz/tests/regressions.rs

/root/repo/target/release/deps/regressions-71b897c2b0ad46a0: crates/fuzz/tests/regressions.rs

crates/fuzz/tests/regressions.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/fuzz
