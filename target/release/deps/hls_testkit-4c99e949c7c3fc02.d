/root/repo/target/release/deps/hls_testkit-4c99e949c7c3fc02.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libhls_testkit-4c99e949c7c3fc02.rlib: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libhls_testkit-4c99e949c7c3fc02.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
