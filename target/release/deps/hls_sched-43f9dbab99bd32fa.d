/root/repo/target/release/deps/hls_sched-43f9dbab99bd32fa.d: crates/sched/src/lib.rs crates/sched/src/alap.rs crates/sched/src/asap.rs crates/sched/src/bb.rs crates/sched/src/bounds.rs crates/sched/src/cdfg_sched.rs crates/sched/src/chain.rs crates/sched/src/error.rs crates/sched/src/force.rs crates/sched/src/freedom.rs crates/sched/src/hforce.rs crates/sched/src/list.rs crates/sched/src/pipeline.rs crates/sched/src/precedence.rs crates/sched/src/resource.rs crates/sched/src/schedule.rs crates/sched/src/transform.rs

/root/repo/target/release/deps/hls_sched-43f9dbab99bd32fa: crates/sched/src/lib.rs crates/sched/src/alap.rs crates/sched/src/asap.rs crates/sched/src/bb.rs crates/sched/src/bounds.rs crates/sched/src/cdfg_sched.rs crates/sched/src/chain.rs crates/sched/src/error.rs crates/sched/src/force.rs crates/sched/src/freedom.rs crates/sched/src/hforce.rs crates/sched/src/list.rs crates/sched/src/pipeline.rs crates/sched/src/precedence.rs crates/sched/src/resource.rs crates/sched/src/schedule.rs crates/sched/src/transform.rs

crates/sched/src/lib.rs:
crates/sched/src/alap.rs:
crates/sched/src/asap.rs:
crates/sched/src/bb.rs:
crates/sched/src/bounds.rs:
crates/sched/src/cdfg_sched.rs:
crates/sched/src/chain.rs:
crates/sched/src/error.rs:
crates/sched/src/force.rs:
crates/sched/src/freedom.rs:
crates/sched/src/hforce.rs:
crates/sched/src/list.rs:
crates/sched/src/pipeline.rs:
crates/sched/src/precedence.rs:
crates/sched/src/resource.rs:
crates/sched/src/schedule.rs:
crates/sched/src/transform.rs:
