/root/repo/target/release/deps/hls_alloc-0ace80bc099ae28f.d: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs

/root/repo/target/release/deps/libhls_alloc-0ace80bc099ae28f.rlib: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs

/root/repo/target/release/deps/libhls_alloc-0ace80bc099ae28f.rmeta: crates/alloc/src/lib.rs crates/alloc/src/clique.rs crates/alloc/src/datapath.rs crates/alloc/src/error.rs crates/alloc/src/fu.rs crates/alloc/src/ilp.rs crates/alloc/src/interconnect.rs crates/alloc/src/lifetime.rs crates/alloc/src/registers.rs

crates/alloc/src/lib.rs:
crates/alloc/src/clique.rs:
crates/alloc/src/datapath.rs:
crates/alloc/src/error.rs:
crates/alloc/src/fu.rs:
crates/alloc/src/ilp.rs:
crates/alloc/src/interconnect.rs:
crates/alloc/src/lifetime.rs:
crates/alloc/src/registers.rs:
