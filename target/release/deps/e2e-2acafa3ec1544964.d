/root/repo/target/release/deps/e2e-2acafa3ec1544964.d: crates/bench/benches/e2e.rs

/root/repo/target/release/deps/e2e-2acafa3ec1544964: crates/bench/benches/e2e.rs

crates/bench/benches/e2e.rs:
