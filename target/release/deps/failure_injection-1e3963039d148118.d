/root/repo/target/release/deps/failure_injection-1e3963039d148118.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-1e3963039d148118: tests/failure_injection.rs

tests/failure_injection.rs:
