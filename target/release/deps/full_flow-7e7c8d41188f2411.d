/root/repo/target/release/deps/full_flow-7e7c8d41188f2411.d: tests/full_flow.rs

/root/repo/target/release/deps/full_flow-7e7c8d41188f2411: tests/full_flow.rs

tests/full_flow.rs:
