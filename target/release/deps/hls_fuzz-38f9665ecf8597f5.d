/root/repo/target/release/deps/hls_fuzz-38f9665ecf8597f5.d: crates/fuzz/src/main.rs

/root/repo/target/release/deps/hls_fuzz-38f9665ecf8597f5: crates/fuzz/src/main.rs

crates/fuzz/src/main.rs:
