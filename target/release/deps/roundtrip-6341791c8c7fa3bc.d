/root/repo/target/release/deps/roundtrip-6341791c8c7fa3bc.d: tests/roundtrip.rs

/root/repo/target/release/deps/roundtrip-6341791c8c7fa3bc: tests/roundtrip.rs

tests/roundtrip.rs:
