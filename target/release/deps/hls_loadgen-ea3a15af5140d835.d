/root/repo/target/release/deps/hls_loadgen-ea3a15af5140d835.d: crates/serve/src/bin/loadgen.rs

/root/repo/target/release/deps/hls_loadgen-ea3a15af5140d835: crates/serve/src/bin/loadgen.rs

crates/serve/src/bin/loadgen.rs:
