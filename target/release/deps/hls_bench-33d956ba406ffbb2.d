/root/repo/target/release/deps/hls_bench-33d956ba406ffbb2.d: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/hls_bench-33d956ba406ffbb2: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/gate.rs:
crates/bench/src/harness.rs:
