/root/repo/target/release/deps/scheduling-f04fd6a112f8c83b.d: crates/bench/benches/scheduling.rs

/root/repo/target/release/deps/scheduling-f04fd6a112f8c83b: crates/bench/benches/scheduling.rs

crates/bench/benches/scheduling.rs:
