/root/repo/target/release/deps/hls_bench-86180c97791e5ec3.d: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libhls_bench-86180c97791e5ec3.rlib: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libhls_bench-86180c97791e5ec3.rmeta: crates/bench/src/lib.rs crates/bench/src/gate.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/gate.rs:
crates/bench/src/harness.rs:
