/root/repo/target/release/deps/hls-72a9cdb1084f0239.d: src/lib.rs

/root/repo/target/release/deps/hls-72a9cdb1084f0239: src/lib.rs

src/lib.rs:
