/root/repo/target/release/deps/hls_sim-00ab93ac8d9bf5be.d: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/release/deps/libhls_sim-00ab93ac8d9bf5be.rlib: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/release/deps/libhls_sim-00ab93ac8d9bf5be.rmeta: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/behav.rs:
crates/sim/src/equiv.rs:
crates/sim/src/rtl.rs:
crates/sim/src/vcd.rs:
