/root/repo/target/release/deps/hls_lang-aa1490cc6fb03191.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs

/root/repo/target/release/deps/hls_lang-aa1490cc6fb03191: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/error.rs:
crates/lang/src/lexer.rs:
crates/lang/src/lower.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
