/root/repo/target/release/deps/paper_numbers-9389463780b3ae93.d: tests/paper_numbers.rs

/root/repo/target/release/deps/paper_numbers-9389463780b3ae93: tests/paper_numbers.rs

tests/paper_numbers.rs:
