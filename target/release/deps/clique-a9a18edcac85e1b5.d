/root/repo/target/release/deps/clique-a9a18edcac85e1b5.d: crates/bench/benches/clique.rs

/root/repo/target/release/deps/clique-a9a18edcac85e1b5: crates/bench/benches/clique.rs

crates/bench/benches/clique.rs:
