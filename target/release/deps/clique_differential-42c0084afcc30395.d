/root/repo/target/release/deps/clique_differential-42c0084afcc30395.d: crates/alloc/tests/clique_differential.rs

/root/repo/target/release/deps/clique_differential-42c0084afcc30395: crates/alloc/tests/clique_differential.rs

crates/alloc/tests/clique_differential.rs:
