/root/repo/target/release/deps/hls_serve-f2ce7087c3eeee1f.d: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs

/root/repo/target/release/deps/hls_serve-f2ce7087c3eeee1f: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs

crates/serve/src/lib.rs:
crates/serve/src/api.rs:
crates/serve/src/cache.rs:
crates/serve/src/http.rs:
crates/serve/src/json.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/signal.rs:
