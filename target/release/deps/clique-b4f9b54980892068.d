/root/repo/target/release/deps/clique-b4f9b54980892068.d: crates/bench/benches/clique.rs

/root/repo/target/release/deps/clique-b4f9b54980892068: crates/bench/benches/clique.rs

crates/bench/benches/clique.rs:
