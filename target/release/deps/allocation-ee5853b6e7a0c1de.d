/root/repo/target/release/deps/allocation-ee5853b6e7a0c1de.d: crates/bench/benches/allocation.rs

/root/repo/target/release/deps/allocation-ee5853b6e7a0c1de: crates/bench/benches/allocation.rs

crates/bench/benches/allocation.rs:
