/root/repo/target/release/deps/properties-9d1799bbf2b6e475.d: tests/properties.rs

/root/repo/target/release/deps/properties-9d1799bbf2b6e475: tests/properties.rs

tests/properties.rs:
