/root/repo/target/release/deps/scheduling-ef2f8641c5538cac.d: crates/bench/benches/scheduling.rs

/root/repo/target/release/deps/scheduling-ef2f8641c5538cac: crates/bench/benches/scheduling.rs

crates/bench/benches/scheduling.rs:
