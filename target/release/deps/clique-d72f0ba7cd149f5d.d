/root/repo/target/release/deps/clique-d72f0ba7cd149f5d.d: crates/bench/benches/clique.rs

/root/repo/target/release/deps/clique-d72f0ba7cd149f5d: crates/bench/benches/clique.rs

crates/bench/benches/clique.rs:
