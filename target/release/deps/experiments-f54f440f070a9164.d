/root/repo/target/release/deps/experiments-f54f440f070a9164.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-f54f440f070a9164: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
