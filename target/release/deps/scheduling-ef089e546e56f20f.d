/root/repo/target/release/deps/scheduling-ef089e546e56f20f.d: crates/bench/benches/scheduling.rs

/root/repo/target/release/deps/scheduling-ef089e546e56f20f: crates/bench/benches/scheduling.rs

crates/bench/benches/scheduling.rs:
