/root/repo/target/release/deps/e2e-9f4c80f88b59add7.d: crates/bench/benches/e2e.rs

/root/repo/target/release/deps/e2e-9f4c80f88b59add7: crates/bench/benches/e2e.rs

crates/bench/benches/e2e.rs:
