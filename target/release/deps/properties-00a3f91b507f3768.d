/root/repo/target/release/deps/properties-00a3f91b507f3768.d: tests/properties.rs

/root/repo/target/release/deps/properties-00a3f91b507f3768: tests/properties.rs

tests/properties.rs:
