/root/repo/target/release/deps/hls_bench-ada1fc91d59a33b9.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/hls_bench-ada1fc91d59a33b9: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
