/root/repo/target/release/deps/hls_fuzz-922a937c276bca21.d: crates/fuzz/src/main.rs

/root/repo/target/release/deps/hls_fuzz-922a937c276bca21: crates/fuzz/src/main.rs

crates/fuzz/src/main.rs:
