/root/repo/target/release/deps/explore_par-99e5ce3cdd7ebcee.d: crates/core/tests/explore_par.rs

/root/repo/target/release/deps/explore_par-99e5ce3cdd7ebcee: crates/core/tests/explore_par.rs

crates/core/tests/explore_par.rs:
