/root/repo/target/release/deps/experiments-4d92c71f8f446870.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-4d92c71f8f446870: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
