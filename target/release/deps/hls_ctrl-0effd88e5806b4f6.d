/root/repo/target/release/deps/hls_ctrl-0effd88e5806b4f6.d: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

/root/repo/target/release/deps/libhls_ctrl-0effd88e5806b4f6.rlib: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

/root/repo/target/release/deps/libhls_ctrl-0effd88e5806b4f6.rmeta: crates/ctrl/src/lib.rs crates/ctrl/src/encode.rs crates/ctrl/src/fsm.rs crates/ctrl/src/logic.rs crates/ctrl/src/microcode.rs crates/ctrl/src/minimize.rs

crates/ctrl/src/lib.rs:
crates/ctrl/src/encode.rs:
crates/ctrl/src/fsm.rs:
crates/ctrl/src/logic.rs:
crates/ctrl/src/microcode.rs:
crates/ctrl/src/minimize.rs:
