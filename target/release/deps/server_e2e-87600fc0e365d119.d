/root/repo/target/release/deps/server_e2e-87600fc0e365d119.d: crates/serve/tests/server_e2e.rs

/root/repo/target/release/deps/server_e2e-87600fc0e365d119: crates/serve/tests/server_e2e.rs

crates/serve/tests/server_e2e.rs:
