/root/repo/target/release/deps/controller_cosim-1943a258b26658dd.d: tests/controller_cosim.rs

/root/repo/target/release/deps/controller_cosim-1943a258b26658dd: tests/controller_cosim.rs

tests/controller_cosim.rs:
