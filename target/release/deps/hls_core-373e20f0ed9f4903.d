/root/repo/target/release/deps/hls_core-373e20f0ed9f4903.d: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/hls_core-373e20f0ed9f4903: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/explore.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
