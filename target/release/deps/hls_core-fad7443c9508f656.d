/root/repo/target/release/deps/hls_core-fad7443c9508f656.d: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/libhls_core-fad7443c9508f656.rlib: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

/root/repo/target/release/deps/libhls_core-fad7443c9508f656.rmeta: crates/core/src/lib.rs crates/core/src/explore.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/explore.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
