/root/repo/target/release/deps/properties-f7c866bf18e776dc.d: tests/properties.rs

/root/repo/target/release/deps/properties-f7c866bf18e776dc: tests/properties.rs

tests/properties.rs:
