/root/repo/target/release/deps/hls-b7ab49048c199392.d: src/lib.rs

/root/repo/target/release/deps/libhls-b7ab49048c199392.rlib: src/lib.rs

/root/repo/target/release/deps/libhls-b7ab49048c199392.rmeta: src/lib.rs

src/lib.rs:
