/root/repo/target/release/deps/hls_serve-951c63d3e4fd9674.d: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs

/root/repo/target/release/deps/hls_serve-951c63d3e4fd9674: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/json.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/signal.rs

crates/serve/src/lib.rs:
crates/serve/src/api.rs:
crates/serve/src/cache.rs:
crates/serve/src/http.rs:
crates/serve/src/json.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/signal.rs:
