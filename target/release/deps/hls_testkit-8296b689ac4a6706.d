/root/repo/target/release/deps/hls_testkit-8296b689ac4a6706.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/hls_testkit-8296b689ac4a6706: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
