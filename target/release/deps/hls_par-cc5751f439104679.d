/root/repo/target/release/deps/hls_par-cc5751f439104679.d: crates/par/src/lib.rs

/root/repo/target/release/deps/libhls_par-cc5751f439104679.rlib: crates/par/src/lib.rs

/root/repo/target/release/deps/libhls_par-cc5751f439104679.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
