/root/repo/target/release/deps/hls_sim-ae81c5aeb3b0e6b8.d: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/release/deps/libhls_sim-ae81c5aeb3b0e6b8.rlib: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

/root/repo/target/release/deps/libhls_sim-ae81c5aeb3b0e6b8.rmeta: crates/sim/src/lib.rs crates/sim/src/behav.rs crates/sim/src/equiv.rs crates/sim/src/rtl.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/behav.rs:
crates/sim/src/equiv.rs:
crates/sim/src/rtl.rs:
crates/sim/src/vcd.rs:
