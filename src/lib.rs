//! # hls — high-level synthesis in Rust
//!
//! A complete, from-scratch reproduction of the flow described in
//! *"Tutorial on High-Level Synthesis"* (McFarland, Parker, Camposano;
//! 25th Design Automation Conference, 1988): behavioral specification →
//! control/data-flow graph → high-level transformations → scheduling →
//! data-path allocation → controller synthesis → register-transfer-level
//! structure, with behavioral/RTL co-simulation for verification.
//!
//! This umbrella crate re-exports every subsystem:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`cdfg`] | `hls-cdfg` | the internal representation |
//! | [`lang`] | `hls-lang` | the BSL front end |
//! | [`opt`] | `hls-opt` | high-level transformations |
//! | [`sched`] | `hls-sched` | all §3.1 scheduling algorithms |
//! | [`alloc`] | `hls-alloc` | all §3.2 allocation techniques |
//! | [`ctrl`] | `hls-ctrl` | FSM + microcode control synthesis |
//! | [`rtl`] | `hls-rtl` | component library, netlist, Verilog, area |
//! | [`sim`] | `hls-sim` | behavioral + RTL simulation, equivalence |
//! | [`core`] | `hls-core` | the end-to-end [`Synthesizer`] |
//! | [`workloads`] | `hls-workloads` | benchmarks and figure graphs |
//!
//! # Quickstart
//!
//! ```
//! use hls::Synthesizer;
//!
//! // The paper's square-root behavior, synthesized onto two FUs:
//! let design = Synthesizer::new()
//!     .synthesize_source(hls::workloads::sources::SQRT)?;
//! assert_eq!(design.latency, 10); // the paper's "2 + 4·2 = 10" schedule
//! # Ok::<(), hls::SynthesisError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use hls_alloc as alloc;
pub use hls_cdfg as cdfg;
pub use hls_core as core;
pub use hls_ctrl as ctrl;
pub use hls_lang as lang;
pub use hls_opt as opt;
pub use hls_rtl as rtl;
pub use hls_sched as sched;
pub use hls_sim as sim;
pub use hls_workloads as workloads;

pub use hls_cdfg::Fx;
pub use hls_core::{
    pareto_front, sweep_fus, sweep_grid, CacheStats, ControlStyle, DesignPoint, Explorer, GridSpec,
    SynthesisError, SynthesisResult, Synthesizer,
};
