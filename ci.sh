#!/usr/bin/env sh
# Hermetic CI gate: the workspace must build, test, and stay formatted
# with zero network access. Every dependency is an in-repo path crate,
# so `--offline` is expected to just work; if it ever fails, a network
# dependency has crept back in and that is the bug.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
