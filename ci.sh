#!/usr/bin/env sh
# Hermetic CI gate: the workspace must build, test, and stay formatted
# with zero network access. Every dependency is an in-repo path crate,
# so `--offline` is expected to just work; if it ever fails, a network
# dependency has crept back in and that is the bug.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> panic-free library check (crates/sched, crates/alloc)"
# Library code on the synthesis path must report errors, never panic
# (DESIGN.md §6). Strip line comments, keep only the text above any
# #[cfg(test)] marker, and fail on panicking constructs.
panic_check_failed=0
for f in crates/sched/src/*.rs crates/alloc/src/*.rs; do
    hits=$(awk '/#\[cfg\(test\)\]/ { exit } { sub(/\/\/.*/, ""); print }' "$f" \
        | grep -nE 'panic!|\.unwrap\(\)|unreachable!' || true)
    if [ -n "$hits" ]; then
        echo "panic-prone construct in library code: $f"
        echo "$hits"
        panic_check_failed=1
    fi
done
[ "$panic_check_failed" -eq 0 ] || exit 1

echo "==> benchmark regression gate (BENCH_5.json)"
# Short sample count for CI; the gate rescales by the calibration
# workload, so the committed baseline transfers across machines, and an
# absolute noise floor keeps microsecond-scale benchmarks from flaking.
HLS_BENCH_SAMPLES=3 HLS_BENCH_WARMUP=1 \
    cargo run --release --offline -q -p hls-bench --bin perf_gate -- --check BENCH_5.json

echo "==> estimator pruning agreement (E23 smoke)"
# Runs the pruned-vs-exhaustive comparison on diffeq and a 256-op
# synthetic grid; the binary itself asserts the pruned Pareto front is
# byte-identical and that at least 30% of grid points were skipped.
cargo run --release --offline -q -p hls-bench --bin experiments -- table-estimator --smoke

echo "==> fuzz corpus replay"
cargo run --release --offline -q -p hls-fuzz -- --replay tests/corpus

echo "==> fuzz smoke (500 iterations, fixed seed)"
cargo run --release --offline -q -p hls-fuzz -- --iters 500 --seed 0

echo "==> fuzz smoke, multi-process systems (100 iterations, fixed seed)"
cargo run --release --offline -q -p hls-fuzz -- --iters 100 --seed 1 --mode proc

echo "==> fuzz smoke, unrestricted sync patterns + deadlock verdicts (100 iterations)"
cargo run --release --offline -q -p hls-fuzz -- --iters 100 --seed 2 --mode proc-any

echo "==> shard front smoke (2 workers, 8-point batch, byte-stable warm NDJSON)"
# The front reads its workers' drain signal from stdin EOF, so hold its
# stdin open on a FIFO for the duration of the smoke and close it to
# shut the whole tree down gracefully.
front_log=$(mktemp)
front_fifo=$(mktemp -u)
mkfifo "$front_fifo"
target/release/hls-serve --front --workers 2 127.0.0.1:0 \
    <"$front_fifo" 2>"$front_log" &
front_pid=$!
exec 9>"$front_fifo"
front_addr=""
i=0
while [ $i -lt 100 ]; do
    front_addr=$(sed -n 's/.*front listening on \([0-9.:]*\) .*/\1/p' "$front_log")
    [ -n "$front_addr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$front_addr" ]; then
    echo "front never came up:"; cat "$front_log"; exit 1
fi
# batch-smoke: warms the cluster caches, then POSTs the same 8-point
# /v1/batch twice and requires every seq present in order and the two
# warm NDJSON streams byte-identical.
target/release/hls-loadgen "$front_addr" --batch-smoke
# Short mixed legacy/v1 closed loop through the front: byte-identity
# per template plus envelope/Deprecation handling on the live wire.
target/release/hls-loadgen "$front_addr" 64 4 --mix mixed
exec 9>&-   # stdin EOF -> front drains itself and its workers
wait "$front_pid"
rm -f "$front_fifo" "$front_log"

echo "CI OK"
