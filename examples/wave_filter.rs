//! The DSP-domain workload (§3.3 points at CATHEDRAL's signal-processing
//! niche): schedule the classic elliptic-wave-filter graph under typed
//! resources, pipeline a FIR filter, and compare mux- vs bus-based
//! interconnect.
//!
//! Run with `cargo run --example wave_filter`.

use hls::alloc::{
    bus_allocation, connections, greedy_allocation, left_edge, render_gantt, value_intervals,
};
use hls::sched::{
    force_directed_schedule, list_schedule, pipeline_loop, FuClass, OpClassifier, Priority,
    ResourceLimits,
};
use hls_workloads::benchmarks::{ewf, fir16};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cls = OpClassifier::typed();

    // 1. EWF under resource constraints: latency vs (adders, multipliers).
    println!("elliptic wave filter (34 ops: 26 add, 8 mul)");
    println!("  alus  muls  latency");
    let g = ewf();
    for (alus, muls) in [(1, 1), (2, 1), (2, 2), (3, 2), (4, 4)] {
        let limits = ResourceLimits::unlimited()
            .with(FuClass::Alu, alus)
            .with(FuClass::Multiplier, muls);
        let s = list_schedule(&g, &cls, &limits, Priority::PathLength)?;
        println!("  {alus:<5} {muls:<5} {}", s.num_steps());
    }

    // 2. Time-constrained: how many units does force-directed scheduling
    // need as the deadline relaxes?
    println!("\nforce-directed scheduling (time-constrained):");
    println!("  deadline  alus  muls");
    let (_, cp) = hls::sched::precedence::unconstrained_asap(&g, &cls)?;
    for slack in [0, 2, 4, 8] {
        let s = force_directed_schedule(&g, &cls, cp + slack)?;
        let usage = s.fu_usage(&g, &cls);
        println!(
            "  {:<9} {:<5} {}",
            cp + slack,
            usage.get(&FuClass::Alu).unwrap_or(&0),
            usage.get(&FuClass::Multiplier).unwrap_or(&0)
        );
    }

    // 3. Interconnect styles on a 2-adder/2-multiplier EWF datapath.
    let limits = ResourceLimits::unlimited()
        .with(FuClass::Alu, 2)
        .with(FuClass::Multiplier, 2);
    let s = list_schedule(&g, &cls, &limits, Priority::PathLength)?;
    let regs = left_edge(&value_intervals(&g, &s));
    let fus = greedy_allocation(&g, &cls, &s, &regs, true);
    let conn = connections(&g, &cls, &s, &regs, &fus);
    let bus = bus_allocation(&g, &cls, &s, &regs, &fus);
    println!("\ninterconnect (2 ALUs + 2 multipliers):");
    println!("  registers           : {}", regs.count);
    println!(
        "  mux-based           : {} wires, {} mux inputs",
        conn.wire_count(),
        conn.mux_inputs()
    );
    println!(
        "  bus-based           : {} buses, {} drivers, {} taps",
        bus.buses, bus.drivers, bus.taps
    );

    // Value lifetimes (first ten rows of the Gantt chart).
    println!("\nvalue lifetimes (first 10):");
    let ivs = value_intervals(&g, &s);
    for line in render_gantt(&g, &ivs).lines().take(11) {
        println!("  {line}");
    }

    // 4. Pipeline the FIR16 inner loop (Sehwa-style).
    println!("\nFIR16 loop pipelining:");
    println!("  muls  alus  ResMII  RecMII  II  latency  speedup");
    let fir = fir16();
    for m in [2usize, 4, 8] {
        let limits = ResourceLimits::unlimited()
            .with(FuClass::Multiplier, m)
            .with(FuClass::Alu, m);
        let p = pipeline_loop(&fir, &cls, &limits)?;
        println!(
            "  {m:<5} {m:<5} {:<7} {:<7} {:<3} {:<8} {:.2}x",
            p.res_mii, p.rec_mii, p.ii, p.latency, p.speedup
        );
    }
    Ok(())
}
