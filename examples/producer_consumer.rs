//! Producer → consumer: two concurrent processes joined by a rendezvous
//! channel, each synthesized to its own FSMD, then co-simulated in
//! lockstep and elaborated to one top-level module with a handshake
//! interconnect.
//!
//! Run with `cargo run --example producer_consumer`.

use std::collections::BTreeMap;

use hls::{Fx, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two processes: `prod` streams four values of X + i into channel
    // `c`; `cons` blocks on `recv` and accumulates them. `send`/`recv`
    // are blocking — both sides advance on the same cycle (rendezvous).
    let source = "
        system prodcons;
        input X;
        output Y;
        chan c : fix;
        process prod;
        var i : int<4>;
        begin
          i := 0;
          do
            send c, X + i;
            i := i + 1;
          until i > 3;
        end;
        process cons;
        var k : int<4>;
        var v, acc;
        begin
          acc := 0;
          k := 0;
          do
            recv c, v;
            acc := acc + v;
            k := k + 1;
          until k > 3;
          Y := acc;
        end;
        end.
    ";

    // Each process runs the full pipeline (schedule → allocate → FSM);
    // channel ops become two-phase ready/valid handshake states.
    let system = Synthesizer::new().synthesize_system_source(source)?;
    for p in &system.processes {
        println!(
            "process {:6} {:2} states, latency {:2}, area {:.0} GE",
            p.name,
            p.result.fsm.len(),
            p.result.latency,
            p.result.area.total()
        );
    }

    // Lockstep RTL co-simulation: Y = sum of X+0 .. X+3 = 4X + 6.
    let inputs = BTreeMap::from([("X".to_string(), Fx::from_f64(5.0))]);
    let run = system.run(&inputs)?;
    println!(
        "Y = {} after {} cycles, {} rendezvous",
        run.outputs["Y"], run.cycles, run.rendezvous
    );
    assert_eq!(run.outputs["Y"].to_f64(), 26.0);
    assert_eq!(run.rendezvous, 4);

    // Both models must agree on random vectors (deadlocks included).
    let check = system.verify(16, (0.5, 8.0), 0xD5EA_D5EA)?;
    assert!(check.equivalent, "{:?}", check.mismatch);
    println!("equivalent on {} random vectors", check.vectors);

    // One top module: both FSMDs plus the hs_channel rendezvous cell.
    let verilog = system.to_verilog();
    assert!(verilog.contains("module prodcons"));
    assert!(verilog.contains("hs_channel"));
    println!("\n{} lines of structural Verilog", verilog.lines().count());
    Ok(())
}
