//! Quickstart: synthesize a small behavior end to end and inspect every
//! artifact the flow produces.
//!
//! Run with `cargo run --example quickstart`.

use std::collections::BTreeMap;

use hls::{Fx, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny behavior: a second-order polynomial evaluated with Horner's
    // rule, written in BSL (the Pascal-flavoured input language).
    let source = "
        program horner;
        input X, C0, C1, C2;
        output Y;
        begin
          Y := (C2 * X + C1) * X + C0;
        end.
    ";

    // Default flow: optimize, list-schedule onto 2 universal FUs, greedy
    // interconnect-aware binding, hardwired binary-encoded controller.
    let design = Synthesizer::new().synthesize_source(source)?;

    println!("=== design report ===");
    print!("{}", design.report());
    println!("\n=== schedule ===");
    print!("{}", design.schedule_table());

    // Execute the synthesized structure: y = 2x² + 3x + 1 at x = 1.5.
    let inputs = BTreeMap::from([
        ("X".to_string(), Fx::from_f64(1.5)),
        ("C0".to_string(), Fx::from_f64(1.0)),
        ("C1".to_string(), Fx::from_f64(3.0)),
        ("C2".to_string(), Fx::from_f64(2.0)),
    ]);
    let run = design.run(&inputs)?;
    println!("\ny(1.5) = {} in {} cycles", run.outputs["Y"], run.cycles);
    assert_eq!(run.outputs["Y"].to_f64(), 10.0);

    // Verify the structure against the behavioral golden model.
    let check = design.verify(32, (-4.0, 4.0))?;
    println!(
        "verification: {} vectors, equivalent = {}",
        check.vectors, check.equivalent
    );
    assert!(check.equivalent);

    // And the Verilog, if you want to take it further down the flow.
    println!("\n=== verilog (first lines) ===");
    for line in design.to_verilog().lines().take(12) {
        println!("{line}");
    }
    Ok(())
}
