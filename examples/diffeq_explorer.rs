//! Design-space exploration on the HAL differential-equation benchmark:
//! sweep functional-unit counts, compare scheduling algorithms, and print
//! the area–latency Pareto front (§1.2: "the ability to search the design
//! space").
//!
//! Run with `cargo run --example diffeq_explorer`.

use hls::core::{pareto_front, sweep_fus};
use hls::sched::{Algorithm, Priority};
use hls::Synthesizer;
use hls_workloads::sources::DIFFEQ;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("HAL differential-equation solver: y'' + 3xy' + 3y = 0\n");

    // 1. Resource sweep under the default list scheduler.
    println!("FU sweep (list scheduling, path-length priority):");
    println!("  fus  latency  area(GE)  regs  mux-ins");
    let points = sweep_fus(&Synthesizer::new(), DIFFEQ, 6)?;
    for p in &points {
        println!(
            "  {:<4} {:<8} {:<9.0} {:<5} {}",
            p.fus, p.latency, p.area, p.registers, p.mux_inputs
        );
    }

    println!("\nPareto front (area vs latency):");
    for p in pareto_front(&points) {
        println!("  {} FU(s): {} steps, {:.0} GE", p.fus, p.latency, p.area);
    }

    // 2. Scheduling algorithms head to head on 2 FUs.
    println!("\nscheduler comparison (2 universal FUs):");
    println!("  algorithm          latency");
    for (name, alg) in [
        ("asap", Algorithm::Asap),
        ("list/path-length", Algorithm::List(Priority::PathLength)),
        ("list/urgency", Algorithm::List(Priority::Urgency)),
        ("force-directed", Algorithm::ForceDirected { slack: 0 }),
        ("freedom-based", Algorithm::FreedomBased { slack: 0 }),
        ("transformational", Algorithm::Transformational),
        ("branch-and-bound", Algorithm::BranchAndBound { node_budget: 2_000_000 }),
    ] {
        let r = Synthesizer::new()
            .universal_fus(2)
            .algorithm(alg)
            .synthesize_source(DIFFEQ)?;
        println!("  {name:<18} {}", r.latency);
        // Every design stays functionally correct.
        let eq = r.verify(6, (0.1, 0.9))?;
        assert!(eq.equivalent, "{name}: {:?}", eq.mismatch);
    }

    println!("\nall design points verified against the behavioral model");
    Ok(())
}
