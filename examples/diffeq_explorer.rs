//! Design-space exploration on the HAL differential-equation benchmark:
//! fan a multi-dimensional sweep (FU count × scheduler × control style)
//! across a worker pool, then print the area–latency Pareto front
//! (§1.2: "the ability to search the design space").
//!
//! Run with `cargo run --example diffeq_explorer`. Worker count defaults
//! to the machine's core count; override with `HLS_EXPLORE_THREADS`.

use hls::core::{pareto_front, ControlStyle, Explorer, GridSpec};
use hls::ctrl::EncodingStyle;
use hls::sched::{Algorithm, Priority};
use hls::Synthesizer;
use hls_workloads::sources::DIFFEQ;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("HAL differential-equation solver: y'' + 3xy' + 3y = 0\n");
    let base = Synthesizer::new();
    let explorer = Explorer::new();

    // 1. Resource sweep under the default list scheduler, fanned across
    //    the pool.
    println!(
        "FU sweep (list scheduling, path-length priority, {} worker(s)):",
        explorer.threads()
    );
    println!("  fus  latency  area(GE)  regs  mux-ins");
    let points = explorer.sweep_fus(&base, DIFFEQ, 6)?;
    for p in &points {
        println!(
            "  {:<4} {:<8} {:<9.0} {:<5} {}",
            p.fus, p.latency, p.area, p.registers, p.mux_inputs
        );
    }

    // 2. The full grid: FU count × scheduling algorithm × control style.
    //    The memo cache dedups any point the FU sweep above already
    //    synthesized.
    let spec = GridSpec {
        fus: (1..=4).collect(),
        algorithms: vec![
            Algorithm::Asap,
            Algorithm::List(Priority::PathLength),
            Algorithm::List(Priority::Urgency),
            Algorithm::ForceDirected { slack: 0 },
        ],
        controls: vec![
            ControlStyle::Hardwired(EncodingStyle::Binary),
            ControlStyle::Microcode,
        ],
    };
    let grid = explorer.sweep_grid(&base, DIFFEQ, &spec)?;
    println!("\nfull grid: {} design points explored", grid.len());

    println!("\nPareto front (area vs latency) over the full grid:");
    for p in pareto_front(&grid) {
        println!(
            "  {} FU(s), {:<14} {:<10} {} steps, {:.0} GE",
            p.fus,
            p.algorithm.name(),
            format!("{:?}", p.control),
            p.latency,
            p.area
        );
    }

    let stats = explorer.cache_stats();
    println!(
        "\ncache: {} misses, {} hits ({:.0}% hit rate)",
        stats.misses,
        stats.hits,
        stats.hit_rate() * 100.0
    );

    // 3. Every Pareto-optimal design stays functionally correct.
    for p in pareto_front(&grid) {
        let r = base
            .clone()
            .universal_fus(p.fus)
            .algorithm(p.algorithm)
            .control(p.control)
            .synthesize_source(DIFFEQ)?;
        let eq = r.verify(6, (0.1, 0.9))?;
        assert!(eq.equivalent, "{p:?}: {:?}", eq.mismatch);
    }
    println!("all Pareto-optimal designs verified against the behavioral model");
    Ok(())
}
