//! The paper's worked example, end to end: the Newton's-method square
//! root of Fig. 1, through the Fig. 2 transformations, to the 23-step and
//! 10-step schedules — then both designs are executed and verified.
//!
//! Run with `cargo run --example sqrt_newton`.

use std::collections::BTreeMap;

use hls::{Fx, Synthesizer};
use hls_workloads::sources::SQRT;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("The behavioral specification (Fig. 1):\n{SQRT}");

    // The paper's "trivial special case": one universal FU, no high-level
    // transformations → 3 + 4·5 = 23 control steps.
    let serial = Synthesizer::new()
        .without_optimization()
        .universal_fus(1)
        .synthesize_source(SQRT)?;
    println!("serial design: {} steps (paper: 23)", serial.latency);
    assert_eq!(serial.latency, 23);

    // After the Fig. 2 optimizations (×0.5 → free shift, +1 → increment,
    // `I > 3` → 2-bit `I = 0`) on two FUs → 2 + 4·2 = 10 steps.
    let fast = Synthesizer::new()
        .universal_fus(2)
        .synthesize_source(SQRT)?;
    println!("optimized design: {} steps (paper: 10)\n", fast.latency);
    assert_eq!(fast.latency, 10);

    println!("{}", fast.report());
    println!("{}", fast.schedule_table());

    // Both structures compute square roots; the fast one is 2.3x quicker.
    println!("x        sqrt(x)   serial(23c)  optimized(10c)");
    for x in [0.09, 0.25, 0.49, 0.7, 0.99] {
        let inputs = BTreeMap::from([("X".to_string(), Fx::from_f64(x))]);
        let a = serial.run(&inputs)?;
        let b = fast.run(&inputs)?;
        println!(
            "{x:<8} {:<9.4} {:<12.4} {:.4}",
            x.sqrt(),
            a.outputs["Y"].to_f64(),
            b.outputs["Y"].to_f64()
        );
        assert_eq!(a.cycles, 23);
        assert_eq!(b.cycles, 10);
        assert!((b.outputs["Y"].to_f64() - x.sqrt()).abs() < 2e-3);
    }

    // The §4 "design verification" step: RTL vs golden model.
    for (name, design) in [("serial", &serial), ("optimized", &fast)] {
        let eq = design.verify(25, (0.05, 1.0))?;
        println!(
            "{name}: verified on {} random vectors -> {}",
            eq.vectors, eq.equivalent
        );
        assert!(eq.equivalent);
    }

    // Export the control/data-flow graphs as DOT (the Fig. 1 artifacts).
    let cdfg = hls::lang::compile(SQRT)?;
    let entry = cdfg.block_order()[0];
    println!(
        "\nDOT of the entry block's data-flow graph:\n{}",
        hls::cdfg::dot::dfg_to_dot(&cdfg.block(entry).dfg, "sqrt_entry")
    );

    // And the synthesized datapath structure itself.
    println!(
        "DOT of the 2-FU datapath:\n{}",
        fast.datapath
            .to_dot(&fast.cdfg, &fast.schedule, &fast.classifier)
    );
    Ok(())
}
