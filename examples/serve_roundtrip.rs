//! Round trip through the synthesis service, in one process.
//!
//! Starts `hls-serve` on an ephemeral port, submits the paper's DIFFEQ
//! benchmark twice (unoptimized single-ALU, then optimized two-FU), and
//! prints the resulting control-step counts — the same numbers the
//! command-line pipeline produces, now arriving over HTTP.
//!
//! Run with `cargo run --example serve_roundtrip`.

use std::io::{Read, Write};
use std::net::TcpStream;

use hls_serve::{Server, ServerConfig};

/// Fires one POST and returns (status, body).
fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: hls\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("header terminator");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, payload.to_string())
}

/// Pulls `"key":<integer>` out of a flat JSON response body.
fn field_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle).expect("field present") + needle.len();
    body[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("integer field")
}

fn main() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let source = hls_workloads::sources::DIFFEQ;
    let naive = format!(
        r#"{{"source":{source:?},"config":{{"fus":1,"algorithm":"asap","optimize":false}}}}"#
    );
    let tuned = format!(r#"{{"source":{source:?},"config":{{"fus":2,"algorithm":"list/path"}}}}"#);

    let (status, body) = post(addr, "/synthesize", &naive);
    assert_eq!(status, 200, "naive synthesis failed: {body}");
    println!(
        "diffeq, 1 FU, unoptimized: {} control steps",
        field_u64(&body, "latency")
    );

    let (status, body) = post(addr, "/synthesize", &tuned);
    assert_eq!(status, 200, "tuned synthesis failed: {body}");
    println!(
        "diffeq, 2 FUs, optimized:  {} control steps, {} FSM states",
        field_u64(&body, "latency"),
        field_u64(&body, "fsm_states")
    );

    handle.shutdown();
    runner.join().expect("server thread").expect("server run");
    println!("server drained cleanly");
}
