//! A memory-bound behavior: selection-sort over an on-chip RAM.
//!
//! Demonstrates BSL arrays → named memories with a threaded memory-state
//! token, the `MemPort` resource class, and RTL simulation with real
//! loads/stores. Run with `cargo run --example sort_engine`.

use std::collections::BTreeMap;

use hls::sched::{FuClass, ResourceLimits};
use hls::{Fx, Synthesizer};

/// Sorts A[0..4] (loaded from the inputs) with selection sort, then emits
/// the minimum, median, and maximum.
const SORT: &str = "
program sort5;
input V0, V1, V2, V3, V4;
output MIN, MED, MAX;
array A[8];
var I : int<4>;
var J : int<4>;
var BEST, TMP;
begin
  A[0] := V0;  A[1] := V1;  A[2] := V2;  A[3] := V3;  A[4] := V4;
  I := 0;
  while I < 4 do
    BEST := I;
    J := I + 1;
    while J < 5 do
      if A[J] < A[BEST] then
        BEST := J;
      end;
      J := J + 1;
    end;
    TMP := A[I];
    A[I] := A[BEST];
    A[BEST] := TMP;
    I := I + 1;
  end;
  MIN := A[0];
  MED := A[2];
  MAX := A[4];
end.
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Typed resources with a single memory port — the realistic constraint
    // for an on-chip RAM.
    let design = Synthesizer::new()
        .typed_fus(
            ResourceLimits::unlimited()
                .with(FuClass::Alu, 1)
                .with(FuClass::Comparator, 1)
                .with(FuClass::MemPort, 1),
        )
        .synthesize_source(SORT)?;

    println!("{}", design.report());
    println!("memories: {:?}\n", design.datapath.memories);

    let vectors = [
        [5.0, 1.0, 4.0, 2.0, 3.0],
        [9.0, 9.0, 1.0, 3.0, 3.0],
        [-1.0, -5.0, 0.0, 2.5, 2.0],
    ];
    println!("input                          min   med   max   cycles");
    for v in vectors {
        let inputs: BTreeMap<String, Fx> = v
            .iter()
            .enumerate()
            .map(|(i, &x)| (format!("V{i}"), Fx::from_f64(x)))
            .collect();
        let run = design.run(&inputs)?;
        let mut sorted = v;
        sorted.sort_by(f64::total_cmp);
        println!(
            "{:<30} {:<5} {:<5} {:<5} {}",
            format!("{v:?}"),
            run.outputs["MIN"].to_f64(),
            run.outputs["MED"].to_f64(),
            run.outputs["MAX"].to_f64(),
            run.cycles
        );
        assert_eq!(run.outputs["MIN"].to_f64(), sorted[0]);
        assert_eq!(run.outputs["MED"].to_f64(), sorted[2]);
        assert_eq!(run.outputs["MAX"].to_f64(), sorted[4]);
    }

    // And the behavioral/RTL equivalence check, as always.
    let eq = design.verify(12, (-8.0, 8.0))?;
    println!(
        "\nverified on {} random vectors: {}",
        eq.vectors, eq.equivalent
    );
    assert!(eq.equivalent);
    Ok(())
}
