//! Failure injection: corrupt each synthesis artifact and check that the
//! corresponding validator — or, for silent data corruption, the
//! behavioral/RTL equivalence check — catches it. This is what makes the
//! §4 "design verification" instrument trustworthy: it must fail loudly on
//! designs that are actually wrong.

use std::collections::BTreeMap;

use hls::alloc::{left_edge, value_intervals, Interval, RegKind};
use hls::cdfg::{Fx, OpKind};
use hls::sched::{
    asap_schedule, list_schedule, OpClassifier, Priority, ResourceLimits, Schedule, ScheduleError,
};
use hls::Synthesizer;
use hls_workloads::figures::fig3_graph;

/// A schedule with a consumer moved onto its producer's step is rejected.
#[test]
fn corrupted_schedule_precedence_is_caught() {
    let (g, ops) = fig3_graph();
    let cls = OpClassifier::universal();
    let limits = ResourceLimits::universal(2);
    let good = list_schedule(&g, &cls, &limits, Priority::PathLength).unwrap();
    good.validate(&g, &cls, &limits).unwrap();

    let mut bad = Schedule::new();
    for (op, step) in good.iter() {
        bad.assign(op, step);
    }
    // op4 consumes op2's result; force it into op2's step.
    bad.assign(ops[3], good.step(ops[1]).unwrap());
    assert!(matches!(
        bad.validate(&g, &cls, &limits),
        Err(ScheduleError::PrecedenceViolated { .. })
    ));
}

/// A schedule that over-subscribes a functional-unit class is rejected.
#[test]
fn corrupted_schedule_resources_are_caught() {
    let (g, ids) = fig3_graph();
    let cls = OpClassifier::universal();
    let limits = ResourceLimits::universal(2);
    // Keep precedence intact: the four independent adds share step 0
    // (4 > 2 units), the chain continues in steps 1 and 2.
    let mut bad = Schedule::new();
    for op in [ids[0], ids[1], ids[2], ids[4]] {
        bad.assign(op, 0);
    }
    bad.assign(ids[3], 1);
    bad.assign(ids[5], 2);
    assert!(matches!(
        bad.validate(&g, &cls, &limits),
        Err(ScheduleError::ResourceExceeded { .. })
    ));
}

/// An incomplete schedule is rejected.
#[test]
fn missing_op_is_caught() {
    let (g, ops) = fig3_graph();
    let cls = OpClassifier::universal();
    let good = asap_schedule(&g, &cls, &ResourceLimits::unlimited()).unwrap();
    let mut bad = Schedule::new();
    for (op, step) in good.iter() {
        if op != ops[5] {
            bad.assign(op, step);
        }
    }
    bad.set_num_steps(good.num_steps());
    assert!(matches!(
        bad.validate(&g, &cls, &ResourceLimits::unlimited()),
        Err(ScheduleError::Unscheduled { .. })
    ));
}

/// Aliasing two overlapping lifetimes into one register is structurally
/// invalid.
#[test]
fn corrupted_register_sharing_is_caught_structurally() {
    let (g, _) = fig3_graph();
    let cls = OpClassifier::universal();
    let s = list_schedule(
        &g,
        &cls,
        &ResourceLimits::universal(2),
        Priority::PathLength,
    )
    .unwrap();
    let ivs = value_intervals(&g, &s);
    let mut alloc = left_edge(&ivs);
    assert!(alloc.is_valid(&ivs));
    // Find two overlapping intervals and force them into one register.
    let (a, b) = find_overlapping(&ivs).expect("fig3 has concurrent values");
    let shared = alloc.assignment[&a];
    alloc.assignment.insert(b, shared);
    assert!(
        !alloc.is_valid(&ivs),
        "aliased overlapping lifetimes must be invalid"
    );
}

fn find_overlapping(ivs: &[Interval]) -> Option<(hls::cdfg::ValueId, hls::cdfg::ValueId)> {
    for (i, a) in ivs.iter().enumerate() {
        for b in &ivs[i + 1..] {
            if a.overlaps(b) {
                return Some((a.value, b.value));
            }
        }
    }
    None
}

/// Silent register clobbering — the kind a structural check could miss —
/// is caught by RTL-vs-behavioral co-simulation: merging two temp
/// registers of a working sqrt datapath changes its outputs.
#[test]
fn clobbered_datapath_fails_equivalence() {
    let design = Synthesizer::new()
        .synthesize_source(hls_workloads::sources::SQRT)
        .unwrap();
    let eq = design.verify(8, (0.1, 1.0)).unwrap();
    assert!(eq.equivalent, "baseline must verify");

    // Corrupt: redirect every use of the highest temp register to temp 0.
    let mut corrupted = design.datapath.clone();
    let temps: Vec<usize> = corrupted
        .regs
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r.kind, RegKind::Temp(_)))
        .map(|(i, _)| i)
        .collect();
    assert!(temps.len() >= 2, "sqrt uses at least two temps");
    let (lo, hi) = (temps[0], *temps.last().unwrap());
    for binding in corrupted.blocks.values_mut() {
        for reg in binding.value_reg.values_mut() {
            if *reg == hi {
                *reg = lo;
            }
        }
    }
    // The corruption is caught either as an output mismatch or as a
    // runaway loop (if the clobbered value feeds the exit test).
    match hls::sim::check_random_vectors(
        &design.cdfg,
        &design.schedule,
        &corrupted,
        &design.classifier,
        8,
        (0.1, 1.0),
        99,
    ) {
        Ok(eq) => {
            assert!(
                !eq.equivalent,
                "merging live temp registers must corrupt results"
            );
            assert!(eq.mismatch.is_some());
        }
        Err(hls::sim::SimError::Nonterminating) => { /* also caught */ }
        Err(other) => panic!("unexpected error: {other}"),
    }
}

/// A controller with a dangling transition is rejected by FSM validation.
#[test]
fn corrupted_fsm_is_caught() {
    let design = Synthesizer::new()
        .synthesize_source(hls_workloads::sources::SQRT)
        .unwrap();
    let mut fsm = design.fsm.clone();
    fsm.validate().unwrap();
    let n = fsm.states.len();
    fsm.states[0].transitions[0].to = n + 10;
    assert!(fsm.validate().is_err());
    // And a state with no way out (other than done) is also malformed.
    let mut fsm = design.fsm.clone();
    fsm.states[0].transitions.clear();
    assert!(fsm.validate().is_err());
}

/// A netlist with a duplicated instance name is rejected.
#[test]
fn corrupted_netlist_is_caught() {
    use hls::rtl::{Netlist, PortDir};
    let mut n = Netlist::new("bad");
    let a = n.add_port("a", PortDir::In, 8);
    n.add_instance("u0", "reg_dff", 8, vec![("d".into(), a)]);
    n.add_instance("u0", "reg_dff", 8, vec![("d".into(), a)]);
    assert!(n.validate().is_err());
}

/// Behavioral mutation sanity: flipping one operator in the CDFG flips the
/// outputs (the equivalence check is sensitive to single-op changes).
#[test]
fn single_op_mutation_changes_behavior() {
    let design = Synthesizer::new()
        .synthesize_source(hls_workloads::sources::SQRT)
        .unwrap();
    // Mutate the golden model: turn the body's Add into a Sub.
    let mut mutated = design.cdfg.clone();
    let blocks = mutated.block_order();
    let body = blocks[1];
    let add = mutated
        .block(body)
        .dfg
        .op_ids()
        .find(|&i| mutated.block(body).dfg.op(i).kind == OpKind::Add)
        .expect("body has the Y + X/Y add");
    mutated.block_mut(body).dfg.op_mut(add).kind = OpKind::Sub;

    let inputs = BTreeMap::from([("X".to_string(), Fx::from_f64(0.5))]);
    let golden = hls::sim::interpret(&design.cdfg, &inputs).unwrap();
    let broken = hls::sim::interpret(&mutated, &inputs).unwrap();
    assert_ne!(golden.outputs["Y"], broken.outputs["Y"]);
}
