//! Controller co-simulation: replay the synthesized FSM against the
//! flag values recorded by the RTL datapath trace, and check that it
//! walks through exactly one state per datapath cycle and lands in `done`.
//!
//! This closes the §2 loop: the FSM "drives the data paths so as to
//! produce the required behavior" — here we check the drive sequence
//! matches the datapath's actual execution, cycle for cycle.

use std::collections::BTreeMap;

use hls::alloc::Datapath;
use hls::cdfg::Fx;
use hls::ctrl::{Cond, Fsm};
use hls::sim::RtlResult;
use hls::Synthesizer;

/// Replays `fsm` using the per-cycle register snapshots of `run`.
/// Returns the number of non-done states visited before reaching `done`.
fn replay(fsm: &Fsm, datapath: &Datapath, run: &RtlResult) -> Result<u64, String> {
    let flag_of = |name: &str, regs: &[Fx]| -> Result<bool, String> {
        let r = datapath
            .var_reg
            .get(name)
            .ok_or_else(|| format!("flag `{name}` has no register"))?;
        Ok(!regs[*r].is_zero())
    };
    let mut state = fsm.initial;
    let mut visited = 0u64;
    for (cycle, regs) in &run.trace {
        if state == fsm.done {
            return Err(format!("controller finished early at cycle {cycle}"));
        }
        visited += 1;
        // Flags are tested Mealy-style against the values registered at
        // this cycle's edge — exactly the snapshot in the trace.
        let mut next = None;
        for t in &fsm.states[state].transitions {
            let take = match &t.cond {
                Cond::Always => true,
                Cond::IsTrue(v) => flag_of(v, regs)?,
                Cond::IsFalse(v) => !flag_of(v, regs)?,
            };
            if take {
                next = Some(t.to);
                break;
            }
        }
        state = next.ok_or_else(|| {
            format!(
                "state `{}` has no matching transition",
                fsm.states[state].name
            )
        })?;
    }
    if state != fsm.done {
        return Err(format!(
            "controller stopped in `{}` instead of `done`",
            fsm.states[state].name
        ));
    }
    Ok(visited)
}

fn cosim(src: &str, inputs: BTreeMap<String, Fx>) {
    let design = Synthesizer::new().synthesize_source(src).unwrap();
    let run = hls::sim::simulate(
        &design.cdfg,
        &design.schedule,
        &design.datapath,
        &design.classifier,
        &inputs,
        true,
    )
    .unwrap();
    let visited = replay(&design.fsm, &design.datapath, &run)
        .unwrap_or_else(|e| panic!("{}: {e}", design.cdfg.name()));
    assert_eq!(
        visited,
        run.cycles,
        "{}: one FSM state per datapath cycle",
        design.cdfg.name()
    );
}

#[test]
fn sqrt_controller_tracks_datapath() {
    for x in [0.1, 0.42, 0.9] {
        cosim(
            hls_workloads::sources::SQRT,
            BTreeMap::from([("X".to_string(), Fx::from_f64(x))]),
        );
    }
}

#[test]
fn gcd_controller_tracks_datapath_through_branches() {
    for (a, b) in [(12, 18), (35, 14), (9, 9), (1, 64)] {
        cosim(
            hls_workloads::sources::GCD,
            BTreeMap::from([
                ("A".to_string(), Fx::from_i64(a)),
                ("B".to_string(), Fx::from_i64(b)),
            ]),
        );
    }
}

#[test]
fn diffeq_controller_tracks_datapath() {
    cosim(
        hls_workloads::sources::DIFFEQ,
        BTreeMap::from([
            ("X0".to_string(), Fx::from_f64(0.0)),
            ("Y0".to_string(), Fx::from_f64(1.0)),
            ("U0".to_string(), Fx::from_f64(0.0)),
            ("DX".to_string(), Fx::from_f64(0.25)),
            ("A".to_string(), Fx::from_f64(1.0)),
        ]),
    );
}

#[test]
fn sumsq_controller_tracks_datapath_with_memory() {
    for n in [0i64, 3, 9] {
        cosim(
            hls_workloads::sources::SUMSQ,
            BTreeMap::from([("N".to_string(), Fx::from_i64(n))]),
        );
    }
}

#[test]
fn minimized_controller_still_tracks() {
    let design = Synthesizer::new()
        .synthesize_source(hls_workloads::sources::SQRT)
        .unwrap();
    let reduced = hls::ctrl::minimize_states(&design.fsm);
    let run = hls::sim::simulate(
        &design.cdfg,
        &design.schedule,
        &design.datapath,
        &design.classifier,
        &BTreeMap::from([("X".to_string(), Fx::from_f64(0.6))]),
        true,
    )
    .unwrap();
    let visited = replay(&reduced.fsm, &design.datapath, &run).unwrap();
    assert_eq!(visited, run.cycles, "state minimization preserves the walk");
}
