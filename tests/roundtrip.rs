//! Source round-trip: pretty-printing a parsed program and re-synthesizing
//! it yields an identical design — the printer, parser, and lowering agree.

use hls::lang::{parse, pretty};
use hls::Synthesizer;

fn roundtrip_design(src: &str, range: (f64, f64)) {
    let prog = parse(src).unwrap();
    let printed = pretty::to_source(&prog);
    let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
    assert_eq!(prog, reparsed, "AST changed through printing:\n{printed}");

    let a = Synthesizer::new().synthesize_source(src).unwrap();
    let b = Synthesizer::new().synthesize_source(&printed).unwrap();
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.datapath.fu_count(), b.datapath.fu_count());
    assert_eq!(a.datapath.reg_count(), b.datapath.reg_count());
    assert_eq!(a.fsm.len(), b.fsm.len());
    let eq = b.verify(6, range).unwrap();
    assert!(eq.equivalent, "{:?}", eq.mismatch);
}

#[test]
fn sqrt_roundtrips_through_the_printer() {
    roundtrip_design(hls_workloads::sources::SQRT, (0.05, 1.0));
}

#[test]
fn gcd_roundtrips_through_the_printer() {
    roundtrip_design(hls_workloads::sources::GCD, (1.0, 64.0));
}

#[test]
fn diffeq_roundtrips_through_the_printer() {
    roundtrip_design(hls_workloads::sources::DIFFEQ, (0.1, 0.9));
}

#[test]
fn fir4_roundtrips_through_the_printer() {
    roundtrip_design(hls_workloads::sources::FIR4, (-2.0, 2.0));
}

#[test]
fn sumsq_roundtrips_through_the_printer() {
    roundtrip_design(hls_workloads::sources::SUMSQ, (1.0, 15.0));
}
