//! One-stop reproduction of every number and figure the tutorial states —
//! the integration-level counterpart of EXPERIMENTS.md.

use hls::alloc::{
    clique_allocation, greedy_allocation, left_edge, max_clique, partition_max_clique,
    value_intervals, CliqueMethod, CompatGraph,
};
use hls::sched::{
    asap_schedule, distribution_graphs, force_directed_schedule, list_schedule, FuClass,
    OpClassifier, Priority, ResourceLimits,
};
use hls::Synthesizer;
use hls_workloads::figures::{fig3_graph, fig5_graph, fig6_graph};
use hls_workloads::sources::SQRT;

/// §2: "the computation takes 3 + 4·5 = 23 control steps".
#[test]
fn e2_serial_sqrt_takes_23_steps() {
    let design = Synthesizer::new()
        .without_optimization()
        .universal_fus(1)
        .synthesize_source(SQRT)
        .unwrap();
    assert_eq!(design.latency, 23);
}

/// §2/Fig. 2: "with two functional units the operations can now be
/// scheduled in 2 + 4·2 = 10 control steps" (shift free after strength
/// reduction; `I > 3` becomes a 2-bit `I = 0`).
#[test]
fn e2_optimized_sqrt_takes_10_steps() {
    let design = Synthesizer::new()
        .universal_fus(2)
        .synthesize_source(SQRT)
        .unwrap();
    assert_eq!(design.latency, 10);
    // The narrowed counter really is a 2-bit register.
    let i_reg = &design.datapath.regs[design.datapath.var_reg["I"]];
    assert_eq!(i_reg.width, 2);
}

/// Fig. 3: resource-constrained ASAP blocks the critical path.
#[test]
fn e3_asap_pathology() {
    let (g, ops) = fig3_graph();
    let cls = OpClassifier::universal();
    let limits = ResourceLimits::universal(2);
    let s = asap_schedule(&g, &cls, &limits).unwrap();
    assert_eq!(s.step(ops[1]), Some(1), "critical op 2 delayed");
    assert_eq!(s.num_steps(), 4);
}

/// Fig. 4: list scheduling with the path-length priority is optimal on
/// the same graph.
#[test]
fn e4_list_schedule_recovers_optimum() {
    let (g, ops) = fig3_graph();
    let cls = OpClassifier::universal();
    let limits = ResourceLimits::universal(2);
    let s = list_schedule(&g, &cls, &limits, Priority::PathLength).unwrap();
    assert_eq!(s.step(ops[1]), Some(0), "critical op 2 first");
    assert_eq!(s.num_steps(), 3);
}

/// Fig. 5: the distribution graph is [1, 1.5, 0.5] and force-directed
/// scheduling balances a3 into step 3.
#[test]
fn e5_distribution_graph_and_balancing() {
    let (g, (a1, a2, a3, _)) = fig5_graph();
    let cls = OpClassifier::typed();
    let dg = distribution_graphs(&g, &cls, 3).unwrap();
    let adds = &dg[&FuClass::Alu];
    assert!((adds[0] - 1.0).abs() < 1e-9);
    assert!((adds[1] - 1.5).abs() < 1e-9);
    assert!((adds[2] - 0.5).abs() < 1e-9);
    let s = force_directed_schedule(&g, &cls, 3).unwrap();
    assert_eq!(s.step(a1), Some(0));
    assert_eq!(s.step(a2), Some(1));
    assert_eq!(s.step(a3), Some(2));
}

/// Fig. 6: greedy interconnect-aware allocation puts a2 on adder 2 and
/// brings a4 back to adder 1 over an existing register connection.
#[test]
fn e6_greedy_allocation_choices() {
    let (g, (a1, a2, _, a4, _, _)) = fig6_graph();
    let cls = OpClassifier::typed();
    let s = asap_schedule(&g, &cls, &ResourceLimits::unlimited()).unwrap();
    let regs = left_edge(&value_intervals(&g, &s));
    let alloc = greedy_allocation(&g, &cls, &s, &regs, true);
    assert_ne!(alloc.binding[&a1], alloc.binding[&a2]);
    assert_eq!(alloc.binding[&a4], alloc.binding[&a1]);
}

/// Fig. 7: the compatibility-graph clique {a1, a3, a4} shares one adder.
#[test]
fn e7_clique_formulation() {
    // The abstract graph of the figure.
    let mut g = CompatGraph::new(4);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    g.add_edge(2, 3);
    g.add_edge(1, 2);
    g.add_edge(1, 3);
    assert_eq!(max_clique(&g).len(), 3);
    assert_eq!(partition_max_clique(&g).len(), 2);

    // And the same conclusion from the Fig. 6 schedule itself.
    let (dfg, _) = fig6_graph();
    let cls = OpClassifier::typed();
    let s = asap_schedule(&dfg, &cls, &ResourceLimits::unlimited()).unwrap();
    let alloc = clique_allocation(&dfg, &cls, &s, CliqueMethod::ExactMaxClique);
    let adder_sizes: Vec<usize> = alloc
        .fus
        .iter()
        .filter(|f| f.class == FuClass::Alu)
        .map(|f| f.ops.len())
        .collect();
    assert!(adder_sizes.contains(&3), "{adder_sizes:?}");
    assert_eq!(adder_sizes.len(), 2, "two adders, as in the greedy example");
}

/// The two sqrt designs execute correctly on real hardware structure:
/// exactly 23 and 10 cycles, with correct square roots out.
#[test]
fn e14_designs_execute_and_verify() {
    use std::collections::BTreeMap;
    for (fus, optimize, cycles) in [(1usize, false, 23u64), (2, true, 10)] {
        let mut s = Synthesizer::new().universal_fus(fus);
        if !optimize {
            s = s.without_optimization();
        }
        let design = s.synthesize_source(SQRT).unwrap();
        let run = design
            .run(&BTreeMap::from([(
                "X".to_string(),
                hls::Fx::from_f64(0.64),
            )]))
            .unwrap();
        assert_eq!(run.cycles, cycles);
        assert!((run.outputs["Y"].to_f64() - 0.8).abs() < 2e-3);
        let eq = design.verify(16, (0.05, 1.0)).unwrap();
        assert!(eq.equivalent, "{:?}", eq.mismatch);
    }
}

/// E21 (table-fifo): one slot of channel buffering strictly reduces the
/// PIPE3 makespan vs rendezvous, and every variant is statically proven
/// deadlock-free. Locks the EXPERIMENTS.md table (18 → 16 cycles).
#[test]
fn e21_fifo_depth_strictly_reduces_pipe3_makespan() {
    use std::collections::BTreeMap;
    let syn = Synthesizer::new();
    let inputs = BTreeMap::from([("X".to_string(), hls::Fx::from_i64(3))]);
    let run = |depth: u32| {
        let sys = syn
            .synthesize_system_source(&hls_workloads::sources::pipe3_with_depth(depth))
            .unwrap();
        assert!(
            sys.deadlock.is_free(),
            "depth {depth}: expected a free verdict, got {}",
            sys.deadlock
        );
        let r = sys.run(&inputs).unwrap();
        assert_eq!(r.outputs["Y"], hls::Fx::from_i64(24), "depth {depth}");
        r
    };
    let rendezvous = run(0);
    assert_eq!(rendezvous.cycles, 18);
    for depth in [1u32, 2, 4] {
        let buffered = run(depth);
        assert!(
            buffered.cycles < rendezvous.cycles,
            "depth {depth}: {} !< {} cycles",
            buffered.cycles,
            rendezvous.cycles
        );
        assert_eq!(buffered.cycles, 16, "depth {depth}");
        // The producer no longer waits for the consumer chain: it drains
        // its three sends into the FIFO and retires early.
        assert!(
            buffered.process_cycles[0] < rendezvous.process_cycles[0],
            "depth {depth}: producer not decoupled"
        );
    }
}
