//! Property-based integration tests over random data-flow graphs and
//! random programs, on the in-repo `hls-testkit` runner.

use hls::sched::{
    asap_schedule, branch_and_bound_schedule, force_directed_schedule, list_schedule,
    transformational_schedule, OpClassifier, Priority, ResourceLimits,
};
use hls::Synthesizer;
use hls_testkit::{forall, Config};
use hls_workloads::random::{random_dag, RandomDagConfig};

fn cfg(ops: usize, window: usize, seed: u64) -> RandomDagConfig {
    RandomDagConfig {
        ops,
        window,
        seed,
        ..Default::default()
    }
}

/// Every resource-constrained scheduler yields a valid schedule on
/// arbitrary DAGs, and list scheduling never loses to ASAP.
#[test]
fn schedulers_valid_on_random_dags() {
    forall(
        &Config::cases(24),
        |rng| {
            (
                rng.usize_in(1, 60),
                rng.usize_in(2, 20),
                rng.u64_in(0, 1000),
                rng.usize_in(1, 4),
            )
        },
        |&(ops, window, seed, fus)| {
            let g = random_dag(&cfg(ops, window, seed));
            let cls = OpClassifier::universal();
            let limits = ResourceLimits::universal(fus);
            let asap = asap_schedule(&g, &cls, &limits).unwrap();
            asap.validate(&g, &cls, &limits).unwrap();
            let list = list_schedule(&g, &cls, &limits, Priority::PathLength).unwrap();
            list.validate(&g, &cls, &limits).unwrap();
            let (tr, _) = transformational_schedule(&g, &cls, &limits).unwrap();
            tr.validate(&g, &cls, &limits).unwrap();
            // Serial lower bound: ceil(ops / fus); dependence bound via ASAP
            // with unlimited resources.
            let lb = ops.div_ceil(fus) as u32;
            assert!(list.num_steps() >= lb.min(list.num_steps()));
            assert!(list.num_steps() <= asap.num_steps() + ops as u32);
        },
    );
}

/// Branch-and-bound is never worse than list scheduling (and both are
/// bounded below by the trivial bounds).
#[test]
fn bb_at_least_as_good_as_list() {
    forall(
        &Config::cases(24),
        |rng| (rng.usize_in(1, 12), rng.u64_in(0, 200)),
        |&(ops, seed)| {
            let g = random_dag(&cfg(ops, 4, seed));
            let cls = OpClassifier::universal();
            let limits = ResourceLimits::universal(2);
            let list = list_schedule(&g, &cls, &limits, Priority::PathLength).unwrap();
            let bb = branch_and_bound_schedule(&g, &cls, &limits, 3_000_000).unwrap();
            bb.validate(&g, &cls, &limits).unwrap();
            assert!(bb.num_steps() <= list.num_steps());
            let serial_lb = (ops as u32).div_ceil(2);
            assert!(bb.num_steps() >= serial_lb);
        },
    );
}

/// Force-directed scheduling meets its deadline and respects
/// dependences on arbitrary DAGs.
#[test]
fn fds_meets_deadline() {
    forall(
        &Config::cases(24),
        |rng| (rng.usize_in(1, 40), rng.u64_in(0, 200), rng.u32_in(0, 4)),
        |&(ops, seed, slack)| {
            let g = random_dag(&cfg(ops, 6, seed));
            let cls = OpClassifier::universal();
            let (_, cp) = hls::sched::precedence::unconstrained_asap(&g, &cls).unwrap();
            let s = force_directed_schedule(&g, &cls, cp + slack).unwrap();
            s.validate(&g, &cls, &ResourceLimits::unlimited()).unwrap();
            assert!(s.num_steps() <= cp + slack);
        },
    );
}

/// Register allocation on scheduled random DAGs hits the max-live
/// lower bound and never aliases overlapping lifetimes.
#[test]
fn register_allocation_optimal_on_random_dags() {
    forall(
        &Config::cases(24),
        |rng| (rng.usize_in(1, 50), rng.u64_in(0, 300), rng.usize_in(1, 4)),
        |&(ops, seed, fus)| {
            use hls::alloc::{left_edge, minimum_registers, value_intervals};
            let g = random_dag(&cfg(ops, 8, seed));
            let cls = OpClassifier::universal();
            let s = list_schedule(
                &g,
                &cls,
                &ResourceLimits::universal(fus),
                Priority::PathLength,
            )
            .unwrap();
            let ivs = value_intervals(&g, &s);
            let alloc = left_edge(&ivs);
            assert!(alloc.is_valid(&ivs));
            assert_eq!(alloc.count, minimum_registers(&ivs));
        },
    );
}

/// Greedy FU allocation is always valid and hits the per-step
/// concurrency lower bound on random DAGs.
#[test]
fn fu_allocation_valid_on_random_dags() {
    forall(
        &Config::cases(24),
        |rng| (rng.usize_in(1, 50), rng.u64_in(0, 300)),
        |&(ops, seed)| {
            use hls::alloc::{fu_lower_bound, greedy_allocation, left_edge, value_intervals};
            let g = random_dag(&cfg(ops, 8, seed));
            let cls = OpClassifier::typed();
            let s = list_schedule(&g, &cls, &ResourceLimits::unlimited(), Priority::PathLength)
                .unwrap();
            let regs = left_edge(&value_intervals(&g, &s));
            let alloc = greedy_allocation(&g, &cls, &s, &regs, true);
            assert!(alloc.is_valid(&g, &cls, &s));
            for (class, bound) in fu_lower_bound(&g, &cls, &s) {
                assert_eq!(alloc.count_of(class), bound);
            }
        },
    );
}

/// End to end on random straight-line programs: synthesized RTL
/// matches the behavioral model.
#[test]
fn random_expressions_synthesize_correctly() {
    forall(
        &Config::cases(24),
        |rng| (rng.u64_in(0, 40), rng.usize_in(1, 4)),
        |&(seed, fus)| {
            use std::fmt::Write as _;
            // Generate a random expression program deterministically.
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move |n: u64| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D) % n
            };
            let mut src =
                String::from("program rand; input a, b, c; output y, z; var t0, t1, t2;\nbegin\n");
            let mut names = vec!["a", "b", "c"];
            for (i, t) in ["t0", "t1", "t2"].iter().enumerate() {
                let l = names[next(names.len() as u64) as usize];
                let r = names[next(names.len() as u64) as usize];
                let op = ["+", "-", "*"][next(3) as usize];
                let _ = writeln!(src, "  {t} := {l} {op} {r};");
                let _ = i;
                names.push(t);
            }
            let _ = writeln!(src, "  y := t2 + t0;\n  z := t1 * 2;\nend.");
            let design = Synthesizer::new()
                .universal_fus(fus)
                .synthesize_source(&src)
                .unwrap();
            let eq = design.verify(8, (-3.0, 3.0)).unwrap();
            assert!(eq.equivalent, "{:?}\n{}", eq.mismatch, src);
        },
    );
}
