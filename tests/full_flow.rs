//! Cross-crate integration: every workload through every configuration of
//! the flow, with RTL-vs-behavioral verification at the end.

use hls::alloc::{CliqueMethod, FuStrategy};
use hls::sched::{Algorithm, FuClass, Priority, ResourceLimits};
use hls::{ControlStyle, Synthesizer};

const SOURCES: [(&str, &str, (f64, f64)); 5] = [
    ("sqrt", hls_workloads::sources::SQRT, (0.05, 1.0)),
    ("gcd", hls_workloads::sources::GCD, (1.0, 64.0)),
    ("diffeq", hls_workloads::sources::DIFFEQ, (0.1, 0.9)),
    ("fir4", hls_workloads::sources::FIR4, (-2.0, 2.0)),
    ("sumsq", hls_workloads::sources::SUMSQ, (1.0, 15.0)),
];

#[test]
fn every_source_flows_under_defaults() {
    for (name, src, range) in SOURCES {
        let design = Synthesizer::new()
            .synthesize_source(src)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(design.latency > 0, "{name}");
        assert!(design.datapath.reg_count() > 0, "{name}");
        assert!(design.fsm.len() > 1, "{name}");
        let eq = design
            .verify(10, range)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(eq.equivalent, "{name}: {:?}", eq.mismatch);
    }
}

#[test]
fn fu_strategies_preserve_behavior() {
    for strategy in [
        FuStrategy::GreedyAware,
        FuStrategy::GreedyBlind,
        FuStrategy::Clique(CliqueMethod::ExactMaxClique),
        FuStrategy::Clique(CliqueMethod::Tseng),
    ] {
        for (name, src, range) in SOURCES {
            let design = Synthesizer::new()
                .fu_strategy(strategy)
                .synthesize_source(src)
                .unwrap_or_else(|e| panic!("{name}/{strategy:?}: {e}"));
            let eq = design.verify(6, range).unwrap();
            assert!(eq.equivalent, "{name}/{strategy:?}: {:?}", eq.mismatch);
        }
    }
}

#[test]
fn schedulers_preserve_behavior() {
    for alg in [
        Algorithm::Asap,
        Algorithm::List(Priority::PathLength),
        Algorithm::List(Priority::Urgency),
        Algorithm::List(Priority::Mobility),
        Algorithm::ForceDirected { slack: 1 },
        Algorithm::FreedomBased { slack: 1 },
        Algorithm::Transformational,
        Algorithm::BranchAndBound {
            node_budget: 2_000_000,
        },
    ] {
        for (name, src, range) in SOURCES {
            let design = Synthesizer::new()
                .algorithm(alg)
                .synthesize_source(src)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", alg.name()));
            let eq = design.verify(5, range).unwrap();
            assert!(eq.equivalent, "{name}/{}: {:?}", alg.name(), eq.mismatch);
        }
    }
}

#[test]
fn typed_resources_flow() {
    let limits = ResourceLimits::unlimited()
        .with(FuClass::Multiplier, 2)
        .with(FuClass::Alu, 2)
        .with(FuClass::Divider, 1)
        .with(FuClass::Comparator, 1);
    for (name, src, range) in SOURCES {
        let design = Synthesizer::new()
            .typed_fus(limits.clone())
            .synthesize_source(src)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let eq = design.verify(6, range).unwrap();
        assert!(eq.equivalent, "{name}: {:?}", eq.mismatch);
    }
}

#[test]
fn control_styles_and_encodings() {
    use hls::ctrl::EncodingStyle;
    for control in [
        ControlStyle::Hardwired(EncodingStyle::Binary),
        ControlStyle::Hardwired(EncodingStyle::OneHot),
        ControlStyle::Hardwired(EncodingStyle::Gray),
        ControlStyle::Microcode,
    ] {
        let design = Synthesizer::new()
            .control(control)
            .synthesize_source(hls_workloads::sources::SQRT)
            .unwrap();
        assert_eq!(design.latency, 10, "{control:?}");
    }
}

#[test]
fn verilog_is_emitted_for_every_source() {
    for (name, src, _) in SOURCES {
        let design = Synthesizer::new().synthesize_source(src).unwrap();
        let v = design.to_verilog();
        assert!(v.contains(&format!("module {name}")), "{name}");
        assert!(v.contains("endmodule"), "{name}");
    }
}

#[test]
fn vcd_export_of_a_full_run() {
    use std::collections::BTreeMap;
    let design = Synthesizer::new()
        .synthesize_source(hls_workloads::sources::SQRT)
        .unwrap();
    let r = hls::sim::simulate(
        &design.cdfg,
        &design.schedule,
        &design.datapath,
        &design.classifier,
        &BTreeMap::from([("X".to_string(), hls::Fx::from_f64(0.36))]),
        true,
    )
    .unwrap();
    let vcd = hls::sim::to_vcd(&design.datapath, &r);
    assert!(vcd.contains("$enddefinitions"));
    let timestamps = vcd.lines().filter(|l| l.starts_with('#')).count();
    assert_eq!(timestamps, 10, "ten cycles dumped");
}

#[test]
fn netlists_validate_and_have_area() {
    for (name, src, _) in SOURCES {
        let design = Synthesizer::new().synthesize_source(src).unwrap();
        design
            .netlist
            .validate()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(design.area.total() > 0.0, "{name}");
        assert!(design.area.clock_ns > 0.0, "{name}");
    }
}

#[test]
fn benchmark_dfgs_schedule_under_all_algorithms() {
    use hls::sched::{list_schedule, OpClassifier};
    let cls = OpClassifier::typed();
    for (name, g) in hls_workloads::all_benchmarks() {
        let limits = ResourceLimits::unlimited()
            .with(FuClass::Multiplier, 2)
            .with(FuClass::Alu, 2);
        let s = list_schedule(&g, &cls, &limits, Priority::PathLength)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        s.validate(&g, &cls, &limits)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
