//! # hls-sim — behavioral and RT-level simulation
//!
//! The §4 "design verification" substrate:
//!
//! * [`interpret`] — the behavioral golden model: executes the CDFG
//!   directly.
//! * [`simulate`] — cycle-accurate execution of the bound datapath, reading
//!   operands from the *physical* registers allocation chose, so register
//!   clobbering and broken transfers surface as wrong outputs.
//! * [`check_vector`] / [`check_random_vectors`] — co-simulation
//!   equivalence checking.
//! * [`to_vcd`] — waveform export of RTL traces.
//! * [`analyze_deadlock`] — static liveness verdict over the per-process
//!   channel-operation traces of a multi-process system.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod behav;
mod deadlock;
mod equiv;
mod rtl;
mod system;
mod vcd;

pub use behav::{apply_width, eval_op, interpret, BehavResult, MAX_ITERATIONS};
pub use deadlock::{analyze_deadlock, DeadlockVerdict};
pub use equiv::{check_random_vectors, check_vector, Equivalence};
pub use rtl::{simulate, RtlResult};
pub use system::{
    interpret_system, simulate_system, ProcessRtl, SystemBehavResult, SystemRtlResult,
};
pub use vcd::to_vcd;

use std::error::Error;
use std::fmt;

/// A simulation error.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A declared input was not supplied.
    MissingInput {
        /// Input name.
        name: String,
    },
    /// A declared output was never assigned.
    UnsetOutput {
        /// Output name.
        name: String,
    },
    /// Division (or remainder) by zero.
    DivideByZero,
    /// A data-dependent loop exceeded the iteration cap.
    Nonterminating,
    /// The op kind cannot be evaluated.
    UnsupportedOp {
        /// Operator symbol.
        op: String,
    },
    /// The structure lacks storage or binding for something it needs.
    UnboundValue {
        /// What is missing.
        detail: String,
    },
    /// The graph failed a structural check.
    BadGraph {
        /// The underlying problem.
        detail: String,
    },
    /// Every unfinished process is blocked on a channel rendezvous that
    /// can never be granted (the system-simulation analogue of a hang,
    /// reported structurally instead).
    Deadlock {
        /// `(process, operation)` pairs, e.g. `("prod", "send c")`.
        blocked: Vec<(String, String)>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingInput { name } => write!(f, "input `{name}` not supplied"),
            SimError::UnsetOutput { name } => write!(f, "output `{name}` never assigned"),
            SimError::DivideByZero => write!(f, "division by zero"),
            SimError::Nonterminating => write!(f, "loop exceeded the iteration cap"),
            SimError::UnsupportedOp { op } => write!(f, "operator `{op}` not simulatable here"),
            SimError::UnboundValue { detail } => f.write_str(detail),
            SimError::BadGraph { detail } => f.write_str(detail),
            SimError::Deadlock { blocked } => {
                write!(f, "deadlock: ")?;
                for (i, (p, op)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "`{p}` blocked on {op}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for SimError {}
