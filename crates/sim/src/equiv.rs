//! Behavioral/RTL equivalence checking — the §4 "design verification"
//! instrument: "the proof that a detailed design implements the exact
//! design stated in the specification", here by co-execution.

use std::collections::BTreeMap;

use hls_alloc::Datapath;
use hls_cdfg::{Cdfg, Fx};
use hls_sched::{CdfgSchedule, OpClassifier};

use crate::behav::interpret;
use crate::rtl::simulate;
use crate::SimError;

/// The verdict of one equivalence run.
#[derive(Clone, Debug, PartialEq)]
pub struct Equivalence {
    /// `true` when every output matched on every vector.
    pub equivalent: bool,
    /// Vectors checked.
    pub vectors: usize,
    /// First mismatch, if any: `(input set, output name, behavioral,
    /// rtl)`.
    pub mismatch: Option<(BTreeMap<String, Fx>, String, Fx, Fx)>,
    /// Total RTL cycles across all vectors.
    pub total_cycles: u64,
}

/// Checks one input vector.
///
/// # Errors
///
/// Propagates simulation errors from either model (a divide-by-zero is an
/// error, not a mismatch).
pub fn check_vector(
    cdfg: &Cdfg,
    schedule: &CdfgSchedule,
    datapath: &Datapath,
    classifier: &OpClassifier,
    inputs: &BTreeMap<String, Fx>,
) -> Result<Equivalence, SimError> {
    let golden = interpret(cdfg, inputs)?;
    let rtl = simulate(cdfg, schedule, datapath, classifier, inputs, false)?;
    for (name, &expected) in &golden.outputs {
        let got = rtl.outputs.get(name).copied().unwrap_or(Fx::ZERO);
        if got != expected {
            return Ok(Equivalence {
                equivalent: false,
                vectors: 1,
                mismatch: Some((inputs.clone(), name.clone(), expected, got)),
                total_cycles: rtl.cycles,
            });
        }
    }
    Ok(Equivalence {
        equivalent: true,
        vectors: 1,
        mismatch: None,
        total_cycles: rtl.cycles,
    })
}

/// Checks `n` seeded pseudo-random vectors (inputs drawn from
/// `range_lo..range_hi` in fixed point). Vectors that hit arithmetic
/// errors in the *golden* model (e.g. divide by zero) are skipped — both
/// models would trap identically.
///
/// # Errors
///
/// Propagates RTL-side errors (the golden model accepted the vector but
/// the structure failed) and reports the first output mismatch via the
/// returned [`Equivalence`].
pub fn check_random_vectors(
    cdfg: &Cdfg,
    schedule: &CdfgSchedule,
    datapath: &Datapath,
    classifier: &OpClassifier,
    n: usize,
    range: (f64, f64),
    seed: u64,
) -> Result<Equivalence, SimError> {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let u = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (u >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut checked = 0;
    let mut cycles = 0;
    for _ in 0..n {
        let inputs: BTreeMap<String, Fx> = cdfg
            .inputs()
            .iter()
            .map(|(name, _)| {
                let x = range.0 + (range.1 - range.0) * next();
                (name.clone(), Fx::from_f64(x))
            })
            .collect();
        match interpret(cdfg, &inputs) {
            Err(SimError::DivideByZero) | Err(SimError::Nonterminating) => continue,
            Err(e) => return Err(e),
            Ok(_) => {}
        }
        let eq = check_vector(cdfg, schedule, datapath, classifier, &inputs)?;
        cycles += eq.total_cycles;
        checked += 1;
        if !eq.equivalent {
            return Ok(Equivalence {
                vectors: checked,
                total_cycles: cycles,
                ..eq
            });
        }
    }
    Ok(Equivalence {
        equivalent: true,
        vectors: checked,
        mismatch: None,
        total_cycles: cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_alloc::{build_datapath, CliqueMethod, FuStrategy};
    use hls_rtl::Library;
    use hls_sched::{schedule_cdfg, Algorithm, Priority, ResourceLimits};

    fn full_flow(
        src: &str,
        strategy: FuStrategy,
        algorithm: Algorithm,
        fus: usize,
    ) -> (Cdfg, CdfgSchedule, Datapath, OpClassifier) {
        let mut cdfg = hls_lang::compile(src).unwrap();
        hls_opt::optimize(&mut cdfg);
        let cls = OpClassifier::universal_free_shifts();
        let limits = ResourceLimits::universal(fus);
        let sched = schedule_cdfg(&cdfg, &cls, &limits, algorithm).unwrap();
        let dp = build_datapath(&cdfg, &sched, &cls, &Library::standard(), strategy).unwrap();
        (cdfg, sched, dp, cls)
    }

    #[test]
    fn sqrt_equivalent_across_strategies_and_schedulers() {
        for strategy in [
            FuStrategy::GreedyAware,
            FuStrategy::GreedyBlind,
            FuStrategy::Clique(CliqueMethod::ExactMaxClique),
        ] {
            for alg in [
                Algorithm::Asap,
                Algorithm::List(Priority::PathLength),
                Algorithm::Transformational,
            ] {
                let (cdfg, sched, dp, cls) =
                    full_flow(hls_workloads::sources::SQRT, strategy, alg, 2);
                let eq =
                    check_random_vectors(&cdfg, &sched, &dp, &cls, 10, (0.1, 1.0), 42).unwrap();
                assert!(eq.equivalent, "{strategy:?}/{alg:?}: {:?}", eq.mismatch);
                assert_eq!(eq.vectors, 10);
            }
        }
    }

    #[test]
    fn gcd_equivalent_with_branches() {
        let mut cdfg = hls_lang::compile(hls_workloads::sources::GCD).unwrap();
        hls_opt::optimize(&mut cdfg);
        let cls = OpClassifier::universal();
        let limits = ResourceLimits::universal(1);
        let sched =
            schedule_cdfg(&cdfg, &cls, &limits, Algorithm::List(Priority::PathLength)).unwrap();
        let dp = build_datapath(
            &cdfg,
            &sched,
            &cls,
            &Library::standard(),
            FuStrategy::GreedyAware,
        )
        .unwrap();
        for (a, b) in [(48, 36), (7, 13), (100, 75), (5, 5)] {
            let inputs = BTreeMap::from([
                ("A".to_string(), Fx::from_i64(a)),
                ("B".to_string(), Fx::from_i64(b)),
            ]);
            let eq = check_vector(&cdfg, &sched, &dp, &cls, &inputs).unwrap();
            assert!(eq.equivalent, "gcd({a},{b}): {:?}", eq.mismatch);
        }
    }

    #[test]
    fn fir4_equivalent() {
        let (cdfg, sched, dp, cls) = full_flow(
            hls_workloads::sources::FIR4,
            FuStrategy::GreedyAware,
            Algorithm::List(Priority::PathLength),
            2,
        );
        let eq = check_random_vectors(&cdfg, &sched, &dp, &cls, 16, (-2.0, 2.0), 7).unwrap();
        assert!(eq.equivalent, "{:?}", eq.mismatch);
    }

    #[test]
    fn sumsq_equivalent_with_memory() {
        use hls_sched::FuClass;
        let mut cdfg = hls_lang::compile(hls_workloads::sources::SUMSQ).unwrap();
        hls_opt::optimize(&mut cdfg);
        let cls = OpClassifier::typed();
        let limits = ResourceLimits::unlimited()
            .with(FuClass::Alu, 1)
            .with(FuClass::Multiplier, 1)
            .with(FuClass::MemPort, 1)
            .with(FuClass::Comparator, 1);
        let sched =
            schedule_cdfg(&cdfg, &cls, &limits, Algorithm::List(Priority::PathLength)).unwrap();
        let dp = build_datapath(
            &cdfg,
            &sched,
            &cls,
            &Library::standard(),
            FuStrategy::GreedyAware,
        )
        .unwrap();
        assert!(dp.memories.contains(&"A".to_string()));
        for n in [0i64, 2, 7, 15] {
            let inputs = BTreeMap::from([("N".to_string(), Fx::from_i64(n))]);
            let eq = check_vector(&cdfg, &sched, &dp, &cls, &inputs).unwrap();
            assert!(eq.equivalent, "N={n}: {:?}", eq.mismatch);
        }
    }

    #[test]
    fn diffeq_equivalent() {
        let mut cdfg = hls_lang::compile(hls_workloads::sources::DIFFEQ).unwrap();
        hls_opt::optimize(&mut cdfg);
        let cls = OpClassifier::universal_free_shifts();
        let limits = ResourceLimits::universal(3);
        let sched =
            schedule_cdfg(&cdfg, &cls, &limits, Algorithm::List(Priority::PathLength)).unwrap();
        let dp = build_datapath(
            &cdfg,
            &sched,
            &cls,
            &Library::standard(),
            FuStrategy::GreedyAware,
        )
        .unwrap();
        let inputs = BTreeMap::from([
            ("X0".to_string(), Fx::from_f64(0.0)),
            ("Y0".to_string(), Fx::from_f64(1.0)),
            ("U0".to_string(), Fx::from_f64(0.0)),
            ("DX".to_string(), Fx::from_f64(0.25)),
            ("A".to_string(), Fx::from_f64(1.0)),
        ]);
        let eq = check_vector(&cdfg, &sched, &dp, &cls, &inputs).unwrap();
        assert!(eq.equivalent, "{:?}", eq.mismatch);
    }
}
