//! Behavioral (golden-model) interpretation of a CDFG.
//!
//! Executes the internal representation directly, with no notion of
//! control steps or hardware — the reference against which synthesized
//! structures are verified (§4, "design verification").

use std::collections::{BTreeMap, HashMap};

use hls_cdfg::{Cdfg, DataFlowGraph, Fx, LoopKind, OpKind, Region, ValueId};

use crate::SimError;

/// Iteration cap for data-dependent loops.
pub const MAX_ITERATIONS: u64 = 1 << 20;

/// The result of a behavioral run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BehavResult {
    /// Final values of the declared program outputs.
    pub outputs: BTreeMap<String, Fx>,
    /// Total operations executed (loops counted per iteration).
    pub ops_executed: u64,
}

/// Evaluates one operator over fixed-point arguments.
///
/// # Errors
///
/// Returns [`SimError::DivideByZero`] for zero divisors; other kinds
/// always succeed.
pub fn eval_op(kind: OpKind, args: &[Fx]) -> Result<Fx, SimError> {
    use OpKind::*;
    Ok(match (kind, args) {
        (Add, [a, b]) => *a + *b,
        (Sub, [a, b]) => *a - *b,
        (Mul, [a, b]) => *a * *b,
        (Div, [a, b]) => {
            if b.is_zero() {
                return Err(SimError::DivideByZero);
            }
            *a / *b
        }
        (Mod, [a, b]) => {
            if b.is_zero() {
                return Err(SimError::DivideByZero);
            }
            *a % *b
        }
        (Neg, [a]) => -*a,
        (Inc, [a]) => *a + Fx::ONE,
        (Dec, [a]) => *a - Fx::ONE,
        (Shl, [a, b]) => *a << (b.to_i64().clamp(0, 63) as u32),
        (Shr, [a, b]) => *a >> (b.to_i64().clamp(0, 63) as u32),
        (And, [a, b]) => Fx::from_raw(a.raw() & b.raw()),
        (Or, [a, b]) => Fx::from_raw(a.raw() | b.raw()),
        (Xor, [a, b]) => Fx::from_raw(a.raw() ^ b.raw()),
        (Not, [a]) => Fx::from_raw(!a.raw()),
        (Eq, [a, b]) => bool_fx(a == b),
        (Ne, [a, b]) => bool_fx(a != b),
        (Lt, [a, b]) => bool_fx(a < b),
        (Le, [a, b]) => bool_fx(a <= b),
        (Gt, [a, b]) => bool_fx(a > b),
        (Ge, [a, b]) => bool_fx(a >= b),
        (Mux, [s, a, b]) => {
            if s.is_zero() {
                *b
            } else {
                *a
            }
        }
        (Copy, [a]) => *a,
        _ => {
            return Err(SimError::UnsupportedOp {
                op: kind.to_string(),
            })
        }
    })
}

fn bool_fx(b: bool) -> Fx {
    if b {
        Fx::ONE
    } else {
        Fx::ZERO
    }
}

/// Applies the declared width to a computed value: integer-typed values
/// narrower than the full 32-bit datapath wrap in their registers.
pub fn apply_width(v: Fx, width: u8) -> Fx {
    if width < 32 {
        v.wrap_int_bits(width.max(1))
    } else {
        v
    }
}

/// Interprets `cdfg` on the given inputs.
///
/// # Errors
///
/// Returns [`SimError::MissingInput`] when a declared input is absent,
/// [`SimError::Nonterminating`] when a data-dependent loop exceeds
/// [`MAX_ITERATIONS`], and any evaluation error.
pub fn interpret(cdfg: &Cdfg, inputs: &BTreeMap<String, Fx>) -> Result<BehavResult, SimError> {
    let mut env: HashMap<String, Fx> = HashMap::new();
    for (name, width) in cdfg.inputs() {
        let v = inputs
            .get(name)
            .copied()
            .ok_or_else(|| SimError::MissingInput { name: name.clone() })?;
        env.insert(name.clone(), apply_width(v, *width));
    }
    let mut memories: HashMap<String, HashMap<i64, Fx>> = HashMap::new();
    let mut ops_executed = 0u64;
    run_region(
        cdfg,
        cdfg.body(),
        &mut env,
        &mut memories,
        &mut ops_executed,
    )?;
    let mut outputs = BTreeMap::new();
    for name in cdfg.outputs() {
        let v = env
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnsetOutput { name: name.clone() })?;
        outputs.insert(name.clone(), v);
    }
    Ok(BehavResult {
        outputs,
        ops_executed,
    })
}

fn run_region(
    cdfg: &Cdfg,
    region: &Region,
    env: &mut HashMap<String, Fx>,
    memories: &mut HashMap<String, HashMap<i64, Fx>>,
    ops: &mut u64,
) -> Result<(), SimError> {
    match region {
        Region::Block(b) => run_block(&cdfg.block(*b).dfg, env, memories, ops),
        Region::Seq(rs) => {
            for r in rs {
                run_region(cdfg, r, env, memories, ops)?;
            }
            Ok(())
        }
        Region::Loop(l) => {
            let mut iterations = 0u64;
            loop {
                iterations += 1;
                if iterations > MAX_ITERATIONS {
                    return Err(SimError::Nonterminating);
                }
                match l.kind {
                    LoopKind::DoUntil => {
                        run_region(cdfg, &l.body, env, memories, ops)?;
                        let flag = env.get(&l.exit_var).copied().unwrap_or(Fx::ZERO);
                        if !flag.is_zero() {
                            return Ok(());
                        }
                    }
                    LoopKind::While => {
                        if let Some(cb) = l.cond_block {
                            run_block(&cdfg.block(cb).dfg, env, memories, ops)?;
                        }
                        let flag = env.get(&l.exit_var).copied().unwrap_or(Fx::ZERO);
                        if flag.is_zero() {
                            return Ok(());
                        }
                        run_region(cdfg, &l.body, env, memories, ops)?;
                    }
                }
            }
        }
        Region::If(i) => {
            run_block(&cdfg.block(i.cond_block).dfg, env, memories, ops)?;
            let flag = env.get(&i.cond_var).copied().unwrap_or(Fx::ZERO);
            if !flag.is_zero() {
                run_region(cdfg, &i.then_region, env, memories, ops)
            } else if let Some(e) = &i.else_region {
                run_region(cdfg, e, env, memories, ops)
            } else {
                Ok(())
            }
        }
    }
}

pub(crate) fn run_block(
    dfg: &DataFlowGraph,
    env: &mut HashMap<String, Fx>,
    memories: &mut HashMap<String, HashMap<i64, Fx>>,
    ops: &mut u64,
) -> Result<(), SimError> {
    let mut values: HashMap<ValueId, Fx> = HashMap::new();
    for &iv in dfg.inputs() {
        let name = &dfg.value(iv).name;
        let v = env
            .get(name)
            .copied()
            .ok_or_else(|| SimError::MissingInput { name: name.clone() })?;
        values.insert(iv, v);
    }
    let order = dfg.topological_order().map_err(|e| SimError::BadGraph {
        detail: e.to_string(),
    })?;
    for id in order {
        let op = dfg.op(id);
        *ops += 1;
        let result = match op.kind {
            OpKind::Const => op.constant.unwrap_or_default(),
            OpKind::Load => {
                let mem = op.memory.as_deref().unwrap_or("");
                let addr = values[&op.operands[0]].to_i64();
                memories
                    .get(mem)
                    .and_then(|m| m.get(&addr))
                    .copied()
                    .unwrap_or(Fx::ZERO)
            }
            OpKind::Store => {
                let mem = op.memory.clone().unwrap_or_default();
                let addr = values[&op.operands[0]].to_i64();
                let data = values[&op.operands[1]];
                memories.entry(mem).or_default().insert(addr, data);
                Fx::ZERO // the next memory-state token
            }
            kind => {
                let args: Vec<Fx> = op.operands.iter().map(|v| values[v]).collect();
                eval_op(kind, &args)?
            }
        };
        if let Some(res) = op.result {
            let width = dfg.value(res).width;
            values.insert(res, apply_width(result, width));
        }
    }
    for (name, v) in dfg.outputs() {
        env.insert(name.clone(), values[v]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx(v: f64) -> Fx {
        Fx::from_f64(v)
    }

    #[test]
    fn sqrt_computes_square_roots() {
        let cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        for x in [0.09, 0.25, 0.5, 0.7, 0.99] {
            let r = interpret(&cdfg, &BTreeMap::from([("X".to_string(), fx(x))])).unwrap();
            let y = r.outputs["Y"].to_f64();
            assert!((y - x.sqrt()).abs() < 2e-3, "sqrt({x}) ≈ {y}");
        }
    }

    #[test]
    fn sqrt_unchanged_by_optimization() {
        // The §4 verification question, answered by execution: the Fig. 2
        // transformations preserve behavior.
        let cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        let mut optimized = cdfg.clone();
        hls_opt::optimize(&mut optimized);
        for x in [0.1, 0.33, 0.64, 0.88] {
            let inp = BTreeMap::from([("X".to_string(), fx(x))]);
            let a = interpret(&cdfg, &inp).unwrap();
            let b = interpret(&optimized, &inp).unwrap();
            assert_eq!(a.outputs["Y"], b.outputs["Y"], "x = {x}");
            assert!(b.ops_executed < a.ops_executed, "optimization removed work");
        }
    }

    #[test]
    fn sqrt_unchanged_by_unrolling() {
        let cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        let mut unrolled = cdfg.clone();
        hls_opt::run_pass(&mut unrolled, hls_opt::PassKind::Unroll);
        hls_opt::optimize(&mut unrolled);
        let inp = BTreeMap::from([("X".to_string(), fx(0.42))]);
        assert_eq!(
            interpret(&cdfg, &inp).unwrap().outputs["Y"],
            interpret(&unrolled, &inp).unwrap().outputs["Y"],
        );
    }

    #[test]
    fn gcd_by_subtraction() {
        let cdfg = hls_lang::compile(hls_workloads::sources::GCD).unwrap();
        for (a, b, g) in [(12, 18, 6), (35, 14, 7), (9, 9, 9), (17, 5, 1)] {
            let r = interpret(
                &cdfg,
                &BTreeMap::from([
                    ("A".to_string(), Fx::from_i64(a)),
                    ("B".to_string(), Fx::from_i64(b)),
                ]),
            )
            .unwrap();
            assert_eq!(r.outputs["G"], Fx::from_i64(g), "gcd({a},{b})");
        }
    }

    #[test]
    fn diffeq_integrates() {
        let cdfg = hls_lang::compile(hls_workloads::sources::DIFFEQ).unwrap();
        let r = interpret(
            &cdfg,
            &BTreeMap::from([
                ("X0".to_string(), fx(0.0)),
                ("Y0".to_string(), fx(1.0)),
                ("U0".to_string(), fx(0.0)),
                ("DX".to_string(), fx(0.125)),
                ("A".to_string(), fx(1.0)),
            ]),
        )
        .unwrap();
        assert!(r.outputs["XN"].to_f64() >= 1.0, "integrated past the bound");
    }

    #[test]
    fn sumsq_uses_memory_correctly() {
        let cdfg = hls_lang::compile(hls_workloads::sources::SUMSQ).unwrap();
        for n in [0i64, 1, 3, 5, 15] {
            let r =
                interpret(&cdfg, &BTreeMap::from([("N".to_string(), Fx::from_i64(n))])).unwrap();
            let expected: i64 = (0..n).map(|i| i * i).sum();
            assert_eq!(r.outputs["S"], Fx::from_i64(expected), "N = {n}");
        }
    }

    #[test]
    fn missing_input_is_an_error() {
        let cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        assert!(matches!(
            interpret(&cdfg, &BTreeMap::new()),
            Err(SimError::MissingInput { .. })
        ));
    }

    #[test]
    fn division_by_zero_reported() {
        let cdfg =
            hls_lang::compile("program t; input a; output y; begin y := 1 / a; end").unwrap();
        assert!(matches!(
            interpret(&cdfg, &BTreeMap::from([("a".to_string(), Fx::ZERO)])),
            Err(SimError::DivideByZero)
        ));
    }

    #[test]
    fn nonterminating_loop_detected() {
        let cdfg = hls_lang::compile(
            "program t; input x; output y; var d : bit; begin
               y := x;
               do y := y + 0; d := y < 0; until d = 1;
             end",
        )
        .unwrap();
        assert!(matches!(
            interpret(&cdfg, &BTreeMap::from([("x".to_string(), Fx::ONE)])),
            Err(SimError::Nonterminating)
        ));
    }

    #[test]
    fn eval_op_covers_logic_and_mux() {
        assert_eq!(
            eval_op(OpKind::Mux, &[Fx::ONE, fx(2.0), fx(3.0)]).unwrap(),
            fx(2.0)
        );
        assert_eq!(
            eval_op(OpKind::Mux, &[Fx::ZERO, fx(2.0), fx(3.0)]).unwrap(),
            fx(3.0)
        );
        assert_eq!(
            eval_op(OpKind::Xor, &[Fx::from_raw(0b1100), Fx::from_raw(0b1010)]).unwrap(),
            Fx::from_raw(0b0110)
        );
    }
}
