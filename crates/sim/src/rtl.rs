//! Cycle-accurate simulation of the synthesized RT-level structure.
//!
//! Executes the bound datapath step by step: operands are read from the
//! *physical* registers chosen by allocation (not from SSA values), so a
//! register-sharing bug, a clobbered live value, or a broken inter-block
//! transfer shows up as a wrong output — this is the §4 "design
//! verification" instrument.

use std::collections::{BTreeMap, HashMap};

use hls_alloc::{BlockBinding, Datapath};
use hls_cdfg::{BlockId, Cdfg, Fx, LoopKind, OpKind, Region, ValueDef, ValueId};
use hls_sched::{CdfgSchedule, OpClassifier, Schedule};

use crate::behav::{apply_width, eval_op, MAX_ITERATIONS};
use crate::SimError;

/// The result of an RTL run.
#[derive(Clone, Debug, PartialEq)]
pub struct RtlResult {
    /// Final values of the declared program outputs (read from variable
    /// registers).
    pub outputs: BTreeMap<String, Fx>,
    /// Clock cycles consumed (one per control step).
    pub cycles: u64,
    /// Register-file snapshots per cycle, for VCD export: `(cycle, regs)`.
    pub trace: Vec<(u64, Vec<Fx>)>,
}

/// Simulates the synthesized structure on the given inputs.
///
/// # Errors
///
/// Returns [`SimError::MissingInput`], [`SimError::UnboundValue`] when
/// allocation left a needed value without storage, arithmetic errors, and
/// [`SimError::Nonterminating`] for runaway loops.
pub fn simulate(
    cdfg: &Cdfg,
    schedule: &CdfgSchedule,
    datapath: &Datapath,
    classifier: &OpClassifier,
    inputs: &BTreeMap<String, Fx>,
    record_trace: bool,
) -> Result<RtlResult, SimError> {
    let mut sim = Sim::new(cdfg, schedule, datapath, classifier, record_trace);
    for (name, width) in cdfg.inputs() {
        let v = inputs
            .get(name)
            .copied()
            .ok_or_else(|| SimError::MissingInput { name: name.clone() })?;
        sim.poke_var(name, apply_width(v, *width))?;
    }
    sim.run_region(cdfg.body())?;
    let mut outputs = BTreeMap::new();
    for name in cdfg.outputs() {
        outputs.insert(name.clone(), sim.peek_var(name)?);
    }
    Ok(RtlResult {
        outputs,
        cycles: sim.cycles,
        trace: sim.trace,
    })
}

/// The RT-level machine for one synthesized behavior: physical registers,
/// memories, and a cycle counter over a bound datapath. Also driven
/// block-by-block by the multi-process system simulator.
pub(crate) struct Sim<'a> {
    cdfg: &'a Cdfg,
    schedule: &'a CdfgSchedule,
    datapath: &'a Datapath,
    #[allow(dead_code)]
    classifier: &'a OpClassifier,
    regs: Vec<Fx>,
    memories: HashMap<String, HashMap<i64, Fx>>,
    pub(crate) cycles: u64,
    trace: Vec<(u64, Vec<Fx>)>,
    record_trace: bool,
}

impl<'a> Sim<'a> {
    pub(crate) fn new(
        cdfg: &'a Cdfg,
        schedule: &'a CdfgSchedule,
        datapath: &'a Datapath,
        classifier: &'a OpClassifier,
        record_trace: bool,
    ) -> Self {
        Sim {
            cdfg,
            schedule,
            datapath,
            classifier,
            regs: vec![Fx::ZERO; datapath.regs.len()],
            memories: HashMap::new(),
            cycles: 0,
            trace: Vec::new(),
            record_trace,
        }
    }

    /// Writes the register allocated to variable `name`.
    pub(crate) fn poke_var(&mut self, name: &str, v: Fx) -> Result<(), SimError> {
        let r = *self
            .datapath
            .var_reg
            .get(name)
            .ok_or_else(|| SimError::UnboundValue {
                detail: format!("no register for `{name}`"),
            })?;
        self.regs[r] = v;
        Ok(())
    }

    /// Reads the register allocated to variable `name`.
    pub(crate) fn peek_var(&self, name: &str) -> Result<Fx, SimError> {
        self.flag(name)
    }

    fn run_region(&mut self, region: &Region) -> Result<(), SimError> {
        match region {
            Region::Block(b) => self.run_block(*b),
            Region::Seq(rs) => {
                for r in rs {
                    self.run_region(r)?;
                }
                Ok(())
            }
            Region::Loop(l) => {
                let mut iters = 0u64;
                loop {
                    iters += 1;
                    if iters > MAX_ITERATIONS {
                        return Err(SimError::Nonterminating);
                    }
                    match l.kind {
                        LoopKind::DoUntil => {
                            self.run_region(&l.body)?;
                            if !self.flag(&l.exit_var)?.is_zero() {
                                return Ok(());
                            }
                        }
                        LoopKind::While => {
                            if let Some(cb) = l.cond_block {
                                self.run_block(cb)?;
                            }
                            if self.flag(&l.exit_var)?.is_zero() {
                                return Ok(());
                            }
                            self.run_region(&l.body)?;
                        }
                    }
                }
            }
            Region::If(i) => {
                self.run_block(i.cond_block)?;
                if !self.flag(&i.cond_var)?.is_zero() {
                    self.run_region(&i.then_region)
                } else if let Some(e) = &i.else_region {
                    self.run_region(e)
                } else {
                    Ok(())
                }
            }
        }
    }

    fn flag(&self, var: &str) -> Result<Fx, SimError> {
        let r = *self
            .datapath
            .var_reg
            .get(var)
            .ok_or_else(|| SimError::UnboundValue {
                detail: format!("no register for flag `{var}`"),
            })?;
        Ok(self.regs[r])
    }

    pub(crate) fn run_block(&mut self, block: BlockId) -> Result<(), SimError> {
        let dfg = &self.cdfg.block(block).dfg;
        let sched = self
            .schedule
            .block(block)
            .ok_or_else(|| SimError::UnboundValue {
                detail: format!("no schedule for block `{}`", self.cdfg.block(block).name),
            })?;
        let binding = self
            .datapath
            .blocks
            .get(&block)
            .ok_or_else(|| SimError::UnboundValue {
                detail: format!("no binding for block `{}`", self.cdfg.block(block).name),
            })?;
        let steps = sched.num_steps();
        // Combinational values computed this step, before the clock edge.
        let mut computed: HashMap<ValueId, Fx> = HashMap::new();
        for step in 0..steps {
            computed.clear();
            // Evaluate this step's ops in topological order (chained free
            // ops may depend on step ops in the same cycle).
            let order = dfg.topological_order().map_err(|e| SimError::BadGraph {
                detail: e.to_string(),
            })?;
            for op in order {
                if sched.step(op) != Some(step) {
                    continue;
                }
                let kind = dfg.op(op).kind;
                let result = match kind {
                    OpKind::Const => dfg.op(op).constant.unwrap_or_default(),
                    OpKind::Load => {
                        let mem = dfg.op(op).memory.clone().unwrap_or_default();
                        let addr = self
                            .read(dfg, sched, binding, &computed, dfg.op(op).operands[0], step)?
                            .to_i64();
                        self.memories
                            .get(&mem)
                            .and_then(|m| m.get(&addr))
                            .copied()
                            .unwrap_or(Fx::ZERO)
                    }
                    OpKind::Store => {
                        let mem = dfg.op(op).memory.clone().unwrap_or_default();
                        let addr = self
                            .read(dfg, sched, binding, &computed, dfg.op(op).operands[0], step)?
                            .to_i64();
                        let data = self.read(
                            dfg,
                            sched,
                            binding,
                            &computed,
                            dfg.op(op).operands[1],
                            step,
                        )?;
                        self.memories.entry(mem).or_default().insert(addr, data);
                        Fx::ZERO // the next memory-state token
                    }
                    _ => {
                        let args: Vec<Fx> = dfg
                            .op(op)
                            .operands
                            .iter()
                            .map(|&v| self.read(dfg, sched, binding, &computed, v, step))
                            .collect::<Result<_, _>>()?;
                        eval_op(kind, &args)?
                    }
                };
                if let Some(res) = dfg.result(op) {
                    computed.insert(res, apply_width(result, dfg.value(res).width));
                }
            }
            // End-of-block variable writes share the final clock edge with
            // the temp commits, so they are *resolved* against pre-edge
            // register state (values produced this very cycle arrive
            // combinationally via `computed`).
            let mut pending_writes: Vec<(usize, Fx)> = Vec::new();
            if step + 1 == steps {
                pending_writes = binding
                    .writes
                    .iter()
                    .filter_map(|w| self.datapath.var_reg.get(&w.var).map(|&r| (r, w.value)))
                    .map(|(r, v)| {
                        self.read(dfg, sched, binding, &computed, v, step)
                            .map(|x| (r, x))
                    })
                    .collect::<Result<_, _>>()?;
            }
            // Clock edge: commit computed values to their registers.
            for (&v, &x) in &computed {
                if let Some(&r) = binding.value_reg.get(&v) {
                    self.regs[r] = x;
                }
            }
            for (r, x) in pending_writes {
                self.regs[r] = x;
            }
            self.cycles += 1;
            if self.record_trace {
                self.trace.push((self.cycles, self.regs.clone()));
            }
        }
        // Blocks with zero steps still transfer pass-through outputs.
        if steps == 0 && !binding.writes.is_empty() {
            let writes: Vec<(usize, Fx)> = binding
                .writes
                .iter()
                .filter_map(|w| self.datapath.var_reg.get(&w.var).map(|&r| (r, w.value)))
                .map(|(r, v)| {
                    self.read(dfg, sched, binding, &HashMap::new(), v, 0)
                        .map(|x| (r, x))
                })
                .collect::<Result<_, _>>()?;
            for (r, x) in writes {
                self.regs[r] = x;
            }
        }
        Ok(())
    }

    /// Reads the physical source of `value` when consumed at `step`:
    /// variable register, temp register, wired constant, or this cycle's
    /// combinational result.
    fn read(
        &self,
        dfg: &hls_cdfg::DataFlowGraph,
        sched: &Schedule,
        binding: &BlockBinding,
        computed: &HashMap<ValueId, Fx>,
        value: ValueId,
        step: u32,
    ) -> Result<Fx, SimError> {
        match dfg.value(value).def {
            ValueDef::BlockInput(ref name) => {
                let r = *self
                    .datapath
                    .var_reg
                    .get(name)
                    .ok_or_else(|| SimError::UnboundValue {
                        detail: format!("no register for `{name}`"),
                    })?;
                Ok(self.regs[r])
            }
            ValueDef::Op(p) => {
                if dfg.op(p).kind == OpKind::Const {
                    return Ok(dfg.op(p).constant.unwrap_or_default());
                }
                let def_step = sched.step(p).unwrap_or(0);
                if def_step < step {
                    // Registered earlier: must have a temp register.
                    let r =
                        *binding
                            .value_reg
                            .get(&value)
                            .ok_or_else(|| SimError::UnboundValue {
                                detail: format!(
                                    "value v{} crosses steps without a register",
                                    value.index()
                                ),
                            })?;
                    Ok(self.regs[r])
                } else {
                    // Same cycle: combinational (chained free op or the
                    // producing FU's output before the edge).
                    computed
                        .get(&value)
                        .copied()
                        .ok_or_else(|| SimError::UnboundValue {
                            detail: format!("value v{} read before computed", value.index()),
                        })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_alloc::{build_datapath, FuStrategy};
    use hls_rtl::Library;
    use hls_sched::{schedule_cdfg, Algorithm, Priority, ResourceLimits};

    fn synthesize(
        src: &str,
        fus: usize,
        optimize: bool,
    ) -> (Cdfg, CdfgSchedule, Datapath, OpClassifier) {
        let mut cdfg = hls_lang::compile(src).unwrap();
        if optimize {
            hls_opt::optimize(&mut cdfg);
        }
        let cls = if optimize {
            OpClassifier::universal_free_shifts()
        } else {
            OpClassifier::universal()
        };
        let limits = ResourceLimits::universal(fus);
        let sched =
            schedule_cdfg(&cdfg, &cls, &limits, Algorithm::List(Priority::PathLength)).unwrap();
        let dp = build_datapath(
            &cdfg,
            &sched,
            &cls,
            &Library::standard(),
            FuStrategy::GreedyAware,
        )
        .unwrap();
        (cdfg, sched, dp, cls)
    }

    #[test]
    fn sqrt_rtl_matches_math_and_cycle_count() {
        let (cdfg, sched, dp, cls) = synthesize(hls_workloads::sources::SQRT, 2, true);
        let r = simulate(
            &cdfg,
            &sched,
            &dp,
            &cls,
            &BTreeMap::from([("X".to_string(), Fx::from_f64(0.7))]),
            false,
        )
        .unwrap();
        assert!((r.outputs["Y"].to_f64() - 0.7f64.sqrt()).abs() < 2e-3);
        assert_eq!(r.cycles, 10, "the paper's 10-step schedule, in cycles");
    }

    #[test]
    fn sqrt_serial_rtl_takes_23_cycles() {
        let (cdfg, sched, dp, cls) = synthesize(hls_workloads::sources::SQRT, 1, false);
        let r = simulate(
            &cdfg,
            &sched,
            &dp,
            &cls,
            &BTreeMap::from([("X".to_string(), Fx::from_f64(0.5))]),
            false,
        )
        .unwrap();
        assert_eq!(r.cycles, 23, "the paper's 23-step schedule, in cycles");
        assert!((r.outputs["Y"].to_f64() - 0.5f64.sqrt()).abs() < 2e-3);
    }

    #[test]
    fn gcd_rtl_control_flow() {
        let (cdfg, sched, dp, cls) = synthesize(hls_workloads::sources::GCD, 1, false);
        for (a, b, g) in [(12, 18, 6), (35, 14, 7), (9, 9, 9)] {
            let r = simulate(
                &cdfg,
                &sched,
                &dp,
                &cls,
                &BTreeMap::from([
                    ("A".to_string(), Fx::from_i64(a)),
                    ("B".to_string(), Fx::from_i64(b)),
                ]),
                false,
            )
            .unwrap();
            assert_eq!(r.outputs["G"], Fx::from_i64(g), "gcd({a},{b})");
        }
    }

    #[test]
    fn trace_records_every_cycle() {
        let (cdfg, sched, dp, cls) = synthesize(hls_workloads::sources::SQRT, 2, true);
        let r = simulate(
            &cdfg,
            &sched,
            &dp,
            &cls,
            &BTreeMap::from([("X".to_string(), Fx::from_f64(0.3))]),
            true,
        )
        .unwrap();
        assert_eq!(r.trace.len() as u64, r.cycles);
        assert_eq!(r.trace[0].1.len(), dp.regs.len());
    }
}
