//! Multi-process system simulation: concurrent process execution with
//! blocking channel rendezvous, mutex-guarded shared variables, and
//! structural deadlock detection.
//!
//! Two models share one round-robin scheduler:
//!
//! * [`interpret_system`] — the behavioral golden model, executing each
//!   process CDFG directly.
//! * [`simulate_system`] — lockstep RT-level co-simulation: each process
//!   runs on its own bound datapath, and rendezvous synchronize the
//!   processes' virtual clocks the way the ready/valid handshake ports do
//!   in the elaborated hardware. The reported cycle count is the parallel
//!   makespan (the slowest process's clock), not the sum.
//!
//! Processes pause only at *sync blocks* (see [`hls_cdfg::SyncOp`]); the
//! scheduler grants mutex blocks in process order and channel operations
//! in channel-declaration order, which makes every run deterministic. A
//! state where no unfinished process can be granted anything is reported
//! as [`SimError::Deadlock`] rather than hanging.
//!
//! Channels come in two flavors. Depth-0 channels are rendezvous: a
//! transfer needs sender and receiver blocked simultaneously. Buffered
//! channels (`depth ≥ 1`) hold a FIFO of in-flight values inside the
//! driver; the sender is granted whenever the queue has room (at its own
//! local clock — this is what lets a buffered pipeline overlap stages)
//! and the receiver whenever the queue is nonempty, observing each value
//! no earlier than the virtual time it was enqueued. Crucially, every
//! grant decision depends only on queue occupancy and the pending sync
//! ops — never on process clocks — so the behavioral model (all clocks
//! pinned at 0) and the RT-level model take identical grant sequences
//! and remain lockstep-comparable.

use std::collections::{BTreeMap, HashMap, VecDeque};

use hls_alloc::Datapath;
use hls_cdfg::system::{chan_ok_port, chan_rx_port, chan_tx_port, shared_ld_port, shared_st_port};
use hls_cdfg::{BlockId, Cdfg, Fx, LoopKind, Region, SyncOp, SystemCdfg};
use hls_sched::{CdfgSchedule, OpClassifier};

use crate::behav::{apply_width, run_block, MAX_ITERATIONS};
use crate::rtl::Sim;
use crate::SimError;

/// The result of a behavioral system run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemBehavResult {
    /// Final values of the declared system outputs.
    pub outputs: BTreeMap<String, Fx>,
    /// Total operations executed across all processes.
    pub ops_executed: u64,
    /// Channel rendezvous granted.
    pub rendezvous: u64,
}

/// The result of a lockstep RT-level system run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemRtlResult {
    /// Final values of the declared system outputs (read from the owning
    /// process's variable registers).
    pub outputs: BTreeMap<String, Fx>,
    /// Parallel makespan in cycles: the maximum process clock at the end,
    /// with rendezvous synchronizing clocks pairwise.
    pub cycles: u64,
    /// Per-process final clocks, in process order.
    pub process_cycles: Vec<u64>,
    /// Channel rendezvous granted.
    pub rendezvous: u64,
}

/// Synthesized artifacts for one process, borrowed by
/// [`simulate_system`]. Produced per process by the system synthesizer.
#[derive(Clone, Copy)]
pub struct ProcessRtl<'a> {
    /// The process's block schedule.
    pub schedule: &'a CdfgSchedule,
    /// The process's bound datapath.
    pub datapath: &'a Datapath,
    /// The classifier the schedule was produced under.
    pub classifier: &'a OpClassifier,
}

/// A flattened, resumable control program for one process: the region
/// tree linearized so execution can pause at sync blocks and resume.
/// Shared with the static deadlock analysis in [`crate::deadlock`].
#[derive(Clone, Debug)]
pub(crate) enum Ctl {
    /// Execute the basic block.
    Block(BlockId),
    /// Jump to `target` when the flag is zero (`when_zero`) / nonzero.
    CondJump {
        var: String,
        when_zero: bool,
        target: usize,
    },
    /// Unconditional jump.
    Jump(usize),
}

pub(crate) fn flatten(cdfg: &Cdfg) -> Vec<Ctl> {
    let mut out = Vec::new();
    flatten_region(cdfg.body(), &mut out);
    out
}

fn flatten_region(region: &Region, out: &mut Vec<Ctl>) {
    match region {
        Region::Block(b) => out.push(Ctl::Block(*b)),
        Region::Seq(rs) => {
            for r in rs {
                flatten_region(r, out);
            }
        }
        Region::Loop(l) => match l.kind {
            LoopKind::DoUntil => {
                let start = out.len();
                flatten_region(&l.body, out);
                // Loop back while the exit flag is zero.
                out.push(Ctl::CondJump {
                    var: l.exit_var.clone(),
                    when_zero: true,
                    target: start,
                });
            }
            LoopKind::While => {
                let start = out.len();
                if let Some(cb) = l.cond_block {
                    out.push(Ctl::Block(cb));
                }
                let exit_ix = out.len();
                out.push(Ctl::CondJump {
                    var: l.exit_var.clone(),
                    when_zero: true,
                    target: usize::MAX, // patched below
                });
                flatten_region(&l.body, out);
                out.push(Ctl::Jump(start));
                let end = out.len();
                if let Ctl::CondJump { target, .. } = &mut out[exit_ix] {
                    *target = end;
                }
            }
        },
        Region::If(i) => {
            out.push(Ctl::Block(i.cond_block));
            let branch_ix = out.len();
            out.push(Ctl::CondJump {
                var: i.cond_var.clone(),
                when_zero: true,
                target: usize::MAX, // patched below
            });
            flatten_region(&i.then_region, out);
            let else_target = match &i.else_region {
                Some(e) => {
                    let skip_ix = out.len();
                    out.push(Ctl::Jump(usize::MAX));
                    let else_start = out.len();
                    flatten_region(e, out);
                    let end = out.len();
                    if let Ctl::Jump(t) = &mut out[skip_ix] {
                        *t = end;
                    }
                    else_start
                }
                None => out.len(),
            };
            if let Ctl::CondJump { target, .. } = &mut out[branch_ix] {
                *target = else_target;
            }
        }
    }
}

/// The execution substrate for one process: block execution plus named
/// variable access. Implemented by the behavioral interpreter and the
/// RT-level machine; the round-robin scheduler is shared.
trait ProcExec {
    fn exec_block(&mut self, block: BlockId) -> Result<(), SimError>;
    /// Reads a control flag / variable (missing behaves as zero only in
    /// the behavioral model; the RTL machine errors on unbound names).
    fn flag(&self, var: &str) -> Result<Fx, SimError>;
    /// Reads a port/output variable; an unset name is an error.
    fn read(&self, var: &str) -> Result<Fx, SimError>;
    /// Writes a port variable before a granted sync block runs.
    fn write(&mut self, var: &str, v: Fx) -> Result<(), SimError>;
    /// The process's local clock (always 0 for the behavioral model).
    fn clock(&self) -> u64 {
        0
    }
    /// Advances the local clock to `t` (stalling while blocked).
    fn set_clock(&mut self, _t: u64) {}
}

/// Behavioral process state.
struct BehavProc<'a> {
    cdfg: &'a Cdfg,
    env: HashMap<String, Fx>,
    memories: HashMap<String, HashMap<i64, Fx>>,
    ops: u64,
}

impl ProcExec for BehavProc<'_> {
    fn exec_block(&mut self, block: BlockId) -> Result<(), SimError> {
        run_block(
            &self.cdfg.block(block).dfg,
            &mut self.env,
            &mut self.memories,
            &mut self.ops,
        )
    }

    fn flag(&self, var: &str) -> Result<Fx, SimError> {
        Ok(self.env.get(var).copied().unwrap_or(Fx::ZERO))
    }

    fn read(&self, var: &str) -> Result<Fx, SimError> {
        self.env
            .get(var)
            .copied()
            .ok_or_else(|| SimError::UnsetOutput {
                name: var.to_string(),
            })
    }

    fn write(&mut self, var: &str, v: Fx) -> Result<(), SimError> {
        self.env.insert(var.to_string(), v);
        Ok(())
    }
}

/// RT-level process state: the single-FSMD machine plus a virtual clock.
struct RtlProc<'a> {
    sim: Sim<'a>,
}

impl ProcExec for RtlProc<'_> {
    fn exec_block(&mut self, block: BlockId) -> Result<(), SimError> {
        self.sim.run_block(block)
    }

    fn flag(&self, var: &str) -> Result<Fx, SimError> {
        self.sim.peek_var(var)
    }

    fn read(&self, var: &str) -> Result<Fx, SimError> {
        self.sim.peek_var(var)
    }

    fn write(&mut self, var: &str, v: Fx) -> Result<(), SimError> {
        self.sim.poke_var(var, v)
    }

    fn clock(&self) -> u64 {
        self.sim.cycles
    }

    fn set_clock(&mut self, t: u64) {
        self.sim.cycles = t;
    }
}

/// What a paused process is waiting for.
#[derive(Clone, Debug)]
struct Pending {
    sync: SyncOp,
    block: BlockId,
}

/// The shared round-robin scheduler over any [`ProcExec`] substrate.
struct Driver<'a, E> {
    sys: &'a SystemCdfg,
    ctls: Vec<Vec<Ctl>>,
    execs: Vec<E>,
    pcs: Vec<usize>,
    steps: Vec<u64>,
    shared_vals: HashMap<String, Fx>,
    /// Virtual time at which each shared variable's mutex frees up.
    mutex_free: HashMap<String, u64>,
    /// In-flight values of each buffered (depth ≥ 1) channel, paired with
    /// the virtual time the sender enqueued them: a receiver can pop a
    /// value only at or after that time.
    fifos: HashMap<String, VecDeque<(Fx, u64)>>,
    rendezvous: u64,
}

impl<'a, E: ProcExec> Driver<'a, E> {
    fn new(sys: &'a SystemCdfg, execs: Vec<E>) -> Self {
        let n = sys.processes.len();
        Driver {
            sys,
            ctls: sys.processes.iter().map(|p| flatten(&p.cdfg)).collect(),
            execs,
            pcs: vec![0; n],
            steps: vec![0; n],
            shared_vals: sys
                .shared
                .iter()
                .map(|s| (s.name.clone(), Fx::ZERO))
                .collect(),
            mutex_free: sys.shared.iter().map(|s| (s.name.clone(), 0)).collect(),
            fifos: sys
                .channels
                .iter()
                .filter(|c| c.depth > 0)
                .map(|c| (c.name.clone(), VecDeque::new()))
                .collect(),
            rendezvous: 0,
        }
    }

    fn done(&self, pi: usize) -> bool {
        self.pcs[pi] >= self.ctls[pi].len()
    }

    /// The sync block process `pi` is paused at, if any.
    fn pending(&self, pi: usize) -> Option<Pending> {
        if self.done(pi) {
            return None;
        }
        if let Ctl::Block(b) = self.ctls[pi][self.pcs[pi]] {
            if let Some(sync) = &self.sys.processes[pi].cdfg.block(b).sync {
                return Some(Pending {
                    sync: sync.clone(),
                    block: b,
                });
            }
        }
        None
    }

    /// Runs process `pi` until it finishes or pauses at a sync block.
    fn advance(&mut self, pi: usize) -> Result<(), SimError> {
        loop {
            if self.done(pi) || self.pending(pi).is_some() {
                return Ok(());
            }
            match self.ctls[pi][self.pcs[pi]].clone() {
                Ctl::Block(b) => {
                    self.execs[pi].exec_block(b)?;
                    self.pcs[pi] += 1;
                }
                Ctl::CondJump {
                    var,
                    when_zero,
                    target,
                } => {
                    let flag = self.execs[pi].flag(&var)?;
                    if flag.is_zero() == when_zero {
                        self.pcs[pi] = target;
                    } else {
                        self.pcs[pi] += 1;
                    }
                }
                Ctl::Jump(t) => self.pcs[pi] = t,
            }
            self.steps[pi] += 1;
            if self.steps[pi] > MAX_ITERATIONS {
                return Err(SimError::Nonterminating);
            }
        }
    }

    /// Executes a granted sync block, charging at least one cycle (the
    /// handshake state the FSM always holds for a sync block).
    fn exec_sync(&mut self, pi: usize, block: BlockId) -> Result<(), SimError> {
        let before = self.execs[pi].clock();
        self.execs[pi].exec_block(block)?;
        if self.execs[pi].clock() == before {
            self.execs[pi].set_clock(before + 1);
        }
        self.pcs[pi] += 1;
        Ok(())
    }

    fn queue_len(&self, chan: &str) -> usize {
        self.fifos.get(chan).map_or(0, VecDeque::len)
    }

    /// Reads the just-executed sender block's `tx` port and enqueues the
    /// value at the sender's local clock. Counts as a transfer.
    fn push_fifo(&mut self, chan: &hls_cdfg::ChannelSpec, s: usize) -> Result<(), SimError> {
        let v = apply_width(self.execs[s].read(&chan_tx_port(&chan.name))?, chan.width);
        let ts = self.execs[s].clock();
        self.fifos
            .entry(chan.name.clone())
            .or_default()
            .push_back((v, ts));
        self.rendezvous += 1;
        Ok(())
    }

    fn pop_fifo(&mut self, chan: &str) -> Option<(Fx, u64)> {
        self.fifos.get_mut(chan).and_then(VecDeque::pop_front)
    }

    fn run(&mut self) -> Result<(), SimError> {
        let n = self.sys.processes.len();
        loop {
            for pi in 0..n {
                self.advance(pi)?;
            }
            if (0..n).all(|pi| self.done(pi)) {
                return Ok(());
            }
            let mut granted = false;
            // Mutex grants first, in process order: a shared-variable
            // block is always grantable (the mutex is never held across
            // blocks), so these never deadlock.
            for pi in 0..n {
                let Some(p) = self.pending(pi) else { continue };
                let SyncOp::Shared { var, read, write } = p.sync else {
                    continue;
                };
                let width = self
                    .sys
                    .shared
                    .iter()
                    .find(|s| s.name == var)
                    .map(|s| s.width)
                    .ok_or_else(|| SimError::BadGraph {
                        detail: format!("sync block references undeclared shared `{var}`"),
                    })?;
                // Serialize on the mutex in virtual time.
                let t0 = self.execs[pi]
                    .clock()
                    .max(self.mutex_free.get(&var).copied().unwrap_or(0));
                self.execs[pi].set_clock(t0);
                if read {
                    let v = self.shared_vals[&var];
                    self.execs[pi].write(&shared_ld_port(&var), v)?;
                }
                self.exec_sync(pi, p.block)?;
                if write {
                    let v = self.execs[pi].read(&shared_st_port(&var))?;
                    self.shared_vals.insert(var.clone(), apply_width(v, width));
                }
                self.mutex_free.insert(var, self.execs[pi].clock());
                granted = true;
            }
            // Channel grants next, in channel-declaration order. A
            // rendezvous (depth 0) needs both endpoints waiting; a
            // buffered channel grants each endpoint independently on
            // queue occupancy, sender side first — so a receiver can pop
            // a value pushed in the same sweep.
            for ci in 0..self.sys.channels.len() {
                let chan = self.sys.channels[ci].clone();
                if chan.depth == 0 {
                    let (Some(s), Some(r)) = (chan.sender, chan.receiver) else {
                        continue;
                    };
                    let (Some(ps), Some(pr)) = (self.pending(s), self.pending(r)) else {
                        continue;
                    };
                    let (name, width) = (chan.name.clone(), chan.width);
                    if !matches!(&ps.sync, SyncOp::Send { chan: c } if *c == name) {
                        continue;
                    }
                    if !matches!(&pr.sync, SyncOp::Recv { chan: c } if *c == name) {
                        continue;
                    }
                    // Rendezvous: both parties wait for the later one, the
                    // sender's block commits the value, the receiver latches
                    // it and runs its block.
                    let t0 = self.execs[s].clock().max(self.execs[r].clock());
                    self.execs[s].set_clock(t0);
                    self.exec_sync(s, ps.block)?;
                    let v = apply_width(self.execs[s].read(&chan_tx_port(&name))?, width);
                    let ts = self.execs[s].clock();
                    self.execs[r].set_clock(ts);
                    self.execs[r].write(&chan_rx_port(&name), v)?;
                    self.exec_sync(r, pr.block)?;
                    self.rendezvous += 1;
                    granted = true;
                    continue;
                }
                // Buffered channel: sender side.
                if let Some(s) = chan.sender {
                    match self.pending(s).map(|p| (p.sync.clone(), p.block)) {
                        Some((SyncOp::Send { chan: c }, block))
                            if c == chan.name
                                && self.queue_len(&chan.name) < chan.depth as usize =>
                        {
                            self.exec_sync(s, block)?;
                            self.push_fifo(&chan, s)?;
                            granted = true;
                        }
                        Some((SyncOp::TrySend { chan: c }, block)) if c == chan.name => {
                            // Never blocks: the ok port tells the block
                            // whether the value made it into the queue.
                            let ok = self.queue_len(&chan.name) < chan.depth as usize;
                            self.execs[s].write(&chan_ok_port(&chan.name), bit(ok))?;
                            self.exec_sync(s, block)?;
                            if ok {
                                self.push_fifo(&chan, s)?;
                            }
                            granted = true;
                        }
                        _ => {}
                    }
                }
                // Buffered channel: receiver side.
                if let Some(r) = chan.receiver {
                    match self.pending(r).map(|p| (p.sync.clone(), p.block)) {
                        Some((SyncOp::Recv { chan: c }, block)) if c == chan.name => {
                            if let Some((v, ts)) = self.pop_fifo(&chan.name) {
                                let t0 = self.execs[r].clock().max(ts);
                                self.execs[r].set_clock(t0);
                                self.execs[r].write(&chan_rx_port(&chan.name), v)?;
                                self.exec_sync(r, block)?;
                                granted = true;
                            }
                        }
                        Some((SyncOp::TryRecv { chan: c }, block)) if c == chan.name => {
                            match self.pop_fifo(&chan.name) {
                                Some((v, ts)) => {
                                    let t0 = self.execs[r].clock().max(ts);
                                    self.execs[r].set_clock(t0);
                                    self.execs[r].write(&chan_rx_port(&chan.name), v)?;
                                    self.execs[r].write(&chan_ok_port(&chan.name), bit(true))?;
                                }
                                None => {
                                    // Empty FIFO: destination zeroed,
                                    // flag low, no blocking.
                                    self.execs[r].write(&chan_rx_port(&chan.name), Fx::ZERO)?;
                                    self.execs[r].write(&chan_ok_port(&chan.name), bit(false))?;
                                }
                            }
                            self.exec_sync(r, block)?;
                            granted = true;
                        }
                        _ => {}
                    }
                }
            }
            if !granted {
                let blocked = (0..n)
                    .filter_map(|pi| {
                        self.pending(pi).map(|p| {
                            let what = match &p.sync {
                                SyncOp::Send { chan } => format!("send {chan}"),
                                SyncOp::Recv { chan } => format!("recv {chan}"),
                                // Try-ops are always grantable, so they
                                // can never appear in a blocked set; the
                                // labels exist for exhaustiveness.
                                SyncOp::TrySend { chan } => format!("try_send {chan}"),
                                SyncOp::TryRecv { chan } => format!("try_recv {chan}"),
                                SyncOp::Shared { var, .. } => format!("shared {var}"),
                            };
                            (self.sys.processes[pi].name.clone(), what)
                        })
                    })
                    .collect();
                return Err(SimError::Deadlock { blocked });
            }
        }
    }

    /// Reads the declared system outputs from their owning processes.
    fn outputs(&self) -> Result<BTreeMap<String, Fx>, SimError> {
        let mut out = BTreeMap::new();
        for (name, owner) in &self.sys.outputs {
            out.insert(name.clone(), self.execs[*owner].read(name)?);
        }
        Ok(out)
    }
}

/// Interprets a system behaviorally: the golden model for multi-process
/// co-simulation.
///
/// # Errors
///
/// Returns [`SimError::MissingInput`] for absent system inputs,
/// [`SimError::Deadlock`] when no unfinished process can make progress,
/// [`SimError::Nonterminating`] for runaway processes, and any evaluation
/// error.
pub fn interpret_system(
    sys: &SystemCdfg,
    inputs: &BTreeMap<String, Fx>,
) -> Result<SystemBehavResult, SimError> {
    let mut execs = Vec::new();
    for p in &sys.processes {
        let mut env = HashMap::new();
        for (name, width) in p.cdfg.inputs() {
            // Only system inputs are bound up front; channel/shared ports
            // are poked at each rendezvous.
            if let Some(v) = inputs.get(name) {
                env.insert(name.clone(), apply_width(*v, *width));
            } else if !is_port_var(name) {
                return Err(SimError::MissingInput { name: name.clone() });
            }
        }
        execs.push(BehavProc {
            cdfg: &p.cdfg,
            env,
            memories: HashMap::new(),
            ops: 0,
        });
    }
    let mut driver = Driver::new(sys, execs);
    driver.run()?;
    Ok(SystemBehavResult {
        outputs: driver.outputs()?,
        ops_executed: driver.execs.iter().map(|e| e.ops).sum(),
        rendezvous: driver.rendezvous,
    })
}

/// Lockstep RT-level co-simulation of a synthesized system: one bound
/// datapath per process, rendezvous synchronizing the process clocks.
///
/// `procs` must be in process order and the same length as
/// `sys.processes`.
///
/// # Errors
///
/// As [`interpret_system`], plus [`SimError::UnboundValue`] when a
/// process's allocation lacks storage for a needed port or variable.
pub fn simulate_system(
    sys: &SystemCdfg,
    procs: &[ProcessRtl<'_>],
    inputs: &BTreeMap<String, Fx>,
) -> Result<SystemRtlResult, SimError> {
    if procs.len() != sys.processes.len() {
        return Err(SimError::BadGraph {
            detail: format!(
                "system has {} processes but {} RTL artifacts were supplied",
                sys.processes.len(),
                procs.len()
            ),
        });
    }
    let mut execs = Vec::new();
    for (p, art) in sys.processes.iter().zip(procs) {
        let mut sim = Sim::new(&p.cdfg, art.schedule, art.datapath, art.classifier, false);
        for (name, width) in p.cdfg.inputs() {
            if let Some(v) = inputs.get(name) {
                sim.poke_var(name, apply_width(*v, *width))?;
            } else if !is_port_var(name) {
                return Err(SimError::MissingInput { name: name.clone() });
            }
        }
        execs.push(RtlProc { sim });
    }
    let mut driver = Driver::new(sys, execs);
    driver.run()?;
    let outputs = driver.outputs()?;
    let process_cycles: Vec<u64> = driver.execs.iter().map(|e| e.sim.cycles).collect();
    Ok(SystemRtlResult {
        outputs,
        cycles: process_cycles.iter().copied().max().unwrap_or(0),
        process_cycles,
        rendezvous: driver.rendezvous,
    })
}

/// `true` for the reserved rendezvous port variables (`{chan}__rx`,
/// `{var}__ld`, ...), which are bound at sync time, not at start.
fn is_port_var(name: &str) -> bool {
    name.contains("__")
}

/// A 1-bit flag value.
fn bit(b: bool) -> Fx {
    if b {
        Fx::from_i64(1)
    } else {
        Fx::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PIPE: &str = "
        system pipe;
        input X;
        output Y;
        chan c : fix;
        process prod;
        var i : int<4>;
        begin
          i := 0;
          do
            send c, X + i;
            i := i + 1;
          until i > 2;
        end;
        process cons;
        var v, acc;
        var j : int<4>;
        begin
          acc := 0;
          j := 0;
          do
            recv c, v;
            acc := acc + v;
            j := j + 1;
          until j > 2;
          Y := acc;
        end;
        end.
    ";

    fn fx(v: f64) -> Fx {
        Fx::from_f64(v)
    }

    #[test]
    fn producer_consumer_pipeline() {
        let sys = hls_lang::compile_system(PIPE).unwrap();
        let r = interpret_system(&sys, &BTreeMap::from([("X".to_string(), fx(2.0))])).unwrap();
        // Y = (X+0) + (X+1) + (X+2) = 3X + 3
        assert_eq!(r.outputs["Y"], fx(9.0));
        assert_eq!(r.rendezvous, 3);
    }

    #[test]
    fn shared_variable_mutex_is_atomic_and_ordered() {
        // Both processes bump the same shared accumulator; grants are in
        // process order, so the final value is deterministic.
        let sys = hls_lang::compile_system(
            "system s; output Y; shared acc;
             process a; var i : int<4>; begin
               i := 0;
               do acc := acc + 1; i := i + 1; until i > 3;
             end;
             process b; var t; begin
               t := acc;
               Y := t;
             end;
             end.",
        )
        .unwrap();
        let r = interpret_system(&sys, &BTreeMap::new()).unwrap();
        // Process order: a's first increment is granted before b's read.
        assert_eq!(r.outputs["Y"], Fx::from_i64(1));
    }

    #[test]
    fn send_without_receiver_deadlocks() {
        let sys = hls_lang::compile_system(
            "system s; output Y; chan c;
             process a; begin send c, 1; Y := 0; end;
             end.",
        )
        .unwrap();
        let err = interpret_system(&sys, &BTreeMap::new()).unwrap_err();
        let SimError::Deadlock { blocked } = err else {
            panic!("expected deadlock, got {err}");
        };
        assert_eq!(blocked, vec![("a".to_string(), "send c".to_string())]);
    }

    #[test]
    fn mismatched_rendezvous_counts_deadlock() {
        // Producer sends twice, consumer receives three times.
        let sys = hls_lang::compile_system(
            "system s; output Y; chan c;
             process a; var i : int<4>; begin
               i := 0;
               do send c, i; i := i + 1; until i > 1;
             end;
             process b; var v, j : int<4>; begin
               j := 0;
               do recv c, v; j := j + 1; until j > 2;
               Y := v;
             end;
             end.",
        )
        .unwrap();
        let err = interpret_system(&sys, &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
        assert!(err.to_string().contains("recv c"), "{err}");
    }

    #[test]
    fn flatten_covers_control_shapes() {
        let cdfg = hls_lang::compile(
            "program t; input x; output y; var i : int<4>; begin
               y := 0;
               i := 0;
               while i < 3 do
                 if x > 0 then y := y + x; else y := y - x; end;
                 i := i + 1;
               end;
               do y := y + 1; until y > 10;
             end",
        )
        .unwrap();
        let ctl = flatten(&cdfg);
        assert!(ctl.len() > 5);
        // Jump targets stay in range (usize::MAX placeholders all patched).
        for c in &ctl {
            match c {
                Ctl::Jump(t) | Ctl::CondJump { target: t, .. } => assert!(*t <= ctl.len()),
                Ctl::Block(_) => {}
            }
        }
    }
}
