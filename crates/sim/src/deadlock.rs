//! Static deadlock analysis over per-process sync sequences.
//!
//! [`analyze_deadlock`] decides, at compile time, whether a
//! [`SystemCdfg`] can reach a state where unfinished processes block on
//! channel operations forever. It works in two phases:
//!
//! 1. **Trace extraction.** Each process's flattened control program is
//!    abstractly interpreted over `Option<Fx>` (`None` = unknown: system
//!    inputs, channel/shared port values, memory loads). If every branch
//!    the process takes has a statically known flag, the exact sequence
//!    of blocking channel operations it will perform falls out — the
//!    *sync trace*. Mutex (`shared`) blocks are excluded: the arbiter
//!    always grants them, so they can never contribute to a deadlock.
//! 2. **Replay.** The traces are replayed under the exact grant
//!    discipline of the runtime scheduler (rendezvous needs both ends
//!    waiting; buffered sends need queue room, receives need a nonempty
//!    queue — pure counting, no data). Replay either drains every trace
//!    or wedges, and because the runtime scheduler's grant decisions
//!    depend only on the same occupancy/pending state, the replay
//!    verdict transfers to both the behavioral and the RT-level
//!    simulation.
//!
//! The analysis is *conservative*: anything it cannot trace exactly — an
//! input-dependent branch, a non-blocking `try_send`/`try_recv` (whose
//! success depends on queue occupancy at run time), a process exceeding
//! the step cap — yields [`DeadlockVerdict::Unknown`] with the reason,
//! never a guess. A [`DeadlockVerdict::Free`] therefore proves the
//! common acyclic pipelines and producer/consumer rings deadlock-free at
//! compile time, and a [`DeadlockVerdict::Deadlock`] comes with the
//! blocked set and, when one exists, the wait-for cycle as a witness.

use std::collections::HashMap;

use hls_cdfg::{Cdfg, DataFlowGraph, Fx, OpKind, SyncOp, SystemCdfg, ValueId};

use crate::behav::{apply_width, eval_op};
use crate::system::{flatten, Ctl};

/// Step cap per process during trace extraction; traces longer than this
/// are reported as [`DeadlockVerdict::Unknown`] rather than unrolled.
const TRACE_STEP_CAP: u64 = 1 << 16;

/// The outcome of the static deadlock analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeadlockVerdict {
    /// Every process's sync trace drains under the scheduler's grant
    /// discipline: the system cannot deadlock, on any input.
    Free,
    /// Replay wedged: the listed processes block forever.
    Deadlock {
        /// `(process, operation)` pairs in process order, e.g.
        /// `("prod", "send c")` — the same labels the runtime
        /// [`crate::SimError::Deadlock`] reports.
        blocked: Vec<(String, String)>,
        /// A wait-for cycle among the blocked processes (each waits on
        /// the next, the last on the first), when one exists. Empty for
        /// pure starvation (e.g. a send whose partner already finished).
        cycle: Vec<String>,
    },
    /// The analysis could not extract exact traces; the runtime verdict
    /// is data-dependent. `reason` names the first obstruction.
    Unknown {
        /// Why the analysis gave up (conservative, logged upstream).
        reason: String,
    },
}

impl DeadlockVerdict {
    /// `true` only for a proven [`DeadlockVerdict::Free`].
    pub fn is_free(&self) -> bool {
        matches!(self, DeadlockVerdict::Free)
    }
}

impl std::fmt::Display for DeadlockVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeadlockVerdict::Free => f.write_str("deadlock-free"),
            DeadlockVerdict::Deadlock { blocked, cycle } => {
                write!(f, "deadlock: ")?;
                for (i, (p, op)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "`{p}` blocked on {op}")?;
                }
                if !cycle.is_empty() {
                    write!(f, " (cycle: {})", cycle.join(" -> "))?;
                }
                Ok(())
            }
            DeadlockVerdict::Unknown { reason } => write!(f, "unknown ({reason})"),
        }
    }
}

/// Statically analyzes `sys` for deadlock. See the module docs for the
/// method and the soundness argument.
pub fn analyze_deadlock(sys: &SystemCdfg) -> DeadlockVerdict {
    let mut traces = Vec::with_capacity(sys.processes.len());
    for p in &sys.processes {
        match extract_trace(&p.cdfg) {
            Ok(t) => traces.push(t),
            Err(reason) => {
                return DeadlockVerdict::Unknown {
                    reason: format!("process `{}`: {reason}", p.name),
                }
            }
        }
    }
    replay(sys, &traces)
}

/// One blocking channel operation of a process's sync trace.
#[derive(Clone, Debug, PartialEq, Eq)]
enum TraceOp {
    Send(String),
    Recv(String),
}

impl TraceOp {
    fn label(&self) -> String {
        match self {
            TraceOp::Send(c) => format!("send {c}"),
            TraceOp::Recv(c) => format!("recv {c}"),
        }
    }

    fn chan(&self) -> &str {
        match self {
            TraceOp::Send(c) | TraceOp::Recv(c) => c,
        }
    }
}

/// Abstractly executes one process, returning its exact sequence of
/// blocking channel operations, or the reason it cannot be determined.
fn extract_trace(cdfg: &Cdfg) -> Result<Vec<TraceOp>, String> {
    let ctl = flatten(cdfg);
    // All names start unknown: system inputs, ports, everything. Known
    // values enter only through constants inside blocks.
    let mut env: HashMap<String, Option<Fx>> = HashMap::new();
    let mut trace = Vec::new();
    let mut pc = 0usize;
    let mut steps = 0u64;
    while pc < ctl.len() {
        steps += 1;
        if steps > TRACE_STEP_CAP {
            return Err("control trace exceeds the analysis step cap".to_string());
        }
        match &ctl[pc] {
            Ctl::Block(b) => {
                let block = cdfg.block(*b);
                match &block.sync {
                    Some(SyncOp::Send { chan }) => trace.push(TraceOp::Send(chan.clone())),
                    Some(SyncOp::Recv { chan }) => trace.push(TraceOp::Recv(chan.clone())),
                    Some(SyncOp::TrySend { chan } | SyncOp::TryRecv { chan }) => {
                        return Err(format!(
                            "non-blocking try op on `{chan}` makes queue occupancy \
                             data-dependent"
                        ));
                    }
                    // Mutex blocks are always granted; not part of the
                    // trace. Their loaded value stays unknown.
                    Some(SyncOp::Shared { .. }) | None => {}
                }
                abs_block(&block.dfg, &mut env);
                pc += 1;
            }
            Ctl::CondJump {
                var,
                when_zero,
                target,
            } => {
                let Some(Some(flag)) = env.get(var.as_str()).copied() else {
                    return Err(format!("branch on `{var}` is input-dependent"));
                };
                if flag.is_zero() == *when_zero {
                    pc = *target;
                } else {
                    pc += 1;
                }
            }
            Ctl::Jump(t) => pc = *t,
        }
    }
    Ok(trace)
}

/// Abstract interpretation of one basic block over `Option<Fx>`: known
/// operands evaluate exactly, anything touching an unknown (or a memory,
/// or a faulting evaluation) produces unknown.
fn abs_block(dfg: &DataFlowGraph, env: &mut HashMap<String, Option<Fx>>) {
    let mut values: HashMap<ValueId, Option<Fx>> = HashMap::new();
    for &iv in dfg.inputs() {
        let name = &dfg.value(iv).name;
        values.insert(iv, env.get(name).copied().flatten());
    }
    let Ok(order) = dfg.topological_order() else {
        // A malformed block cannot be traced; poison all its outputs.
        for (name, _) in dfg.outputs() {
            env.insert(name.clone(), None);
        }
        return;
    };
    for id in order {
        let op = dfg.op(id);
        let result: Option<Fx> = match op.kind {
            OpKind::Const => Some(op.constant.unwrap_or_default()),
            // Memory contents are not tracked: loads are unknown, store
            // tokens are concrete (they only thread ordering).
            OpKind::Load => None,
            OpKind::Store => Some(Fx::ZERO),
            kind => {
                let args: Option<Vec<Fx>> = op.operands.iter().map(|v| values[v]).collect();
                args.and_then(|a| eval_op(kind, &a).ok())
            }
        };
        if let Some(res) = op.result {
            let width = dfg.value(res).width;
            values.insert(res, result.map(|v| apply_width(v, width)));
        }
    }
    for (name, v) in dfg.outputs() {
        env.insert(name.clone(), values[v]);
    }
}

/// Replays the traces under the scheduler's grant discipline.
fn replay(sys: &SystemCdfg, traces: &[Vec<TraceOp>]) -> DeadlockVerdict {
    let n = traces.len();
    let mut pcs = vec![0usize; n];
    let mut queues: HashMap<&str, u32> = sys
        .channels
        .iter()
        .filter(|c| c.depth > 0)
        .map(|c| (c.name.as_str(), 0u32))
        .collect();
    let at = |pcs: &[usize], pi: usize, traces: &[Vec<TraceOp>]| -> Option<TraceOp> {
        traces[pi].get(pcs[pi]).cloned()
    };
    loop {
        if (0..n).all(|pi| pcs[pi] >= traces[pi].len()) {
            return DeadlockVerdict::Free;
        }
        let mut granted = false;
        for chan in &sys.channels {
            if chan.depth == 0 {
                let (Some(s), Some(r)) = (chan.sender, chan.receiver) else {
                    continue;
                };
                let send_ready =
                    matches!(at(&pcs, s, traces), Some(TraceOp::Send(c)) if c == chan.name);
                let recv_ready =
                    matches!(at(&pcs, r, traces), Some(TraceOp::Recv(c)) if c == chan.name);
                if send_ready && recv_ready {
                    pcs[s] += 1;
                    pcs[r] += 1;
                    granted = true;
                }
                continue;
            }
            if let Some(s) = chan.sender {
                if matches!(at(&pcs, s, traces), Some(TraceOp::Send(c)) if c == chan.name)
                    && queues[chan.name.as_str()] < chan.depth
                {
                    pcs[s] += 1;
                    *queues.get_mut(chan.name.as_str()).expect("seeded") += 1;
                    granted = true;
                }
            }
            if let Some(r) = chan.receiver {
                if matches!(at(&pcs, r, traces), Some(TraceOp::Recv(c)) if c == chan.name)
                    && queues[chan.name.as_str()] > 0
                {
                    pcs[r] += 1;
                    *queues.get_mut(chan.name.as_str()).expect("seeded") -= 1;
                    granted = true;
                }
            }
        }
        if !granted {
            return wedge_verdict(sys, traces, &pcs);
        }
    }
}

/// Builds the [`DeadlockVerdict::Deadlock`] witness from a wedged replay
/// state: the blocked set plus a wait-for cycle, if one exists.
fn wedge_verdict(sys: &SystemCdfg, traces: &[Vec<TraceOp>], pcs: &[usize]) -> DeadlockVerdict {
    let n = traces.len();
    let stuck: Vec<usize> = (0..n).filter(|&pi| pcs[pi] < traces[pi].len()).collect();
    let blocked: Vec<(String, String)> = stuck
        .iter()
        .map(|&pi| {
            let op = &traces[pi][pcs[pi]];
            (sys.processes[pi].name.clone(), op.label())
        })
        .collect();
    // Wait-for edges: a blocked sender waits on the channel's receiver,
    // a blocked receiver on the sender. Each process has at most one
    // outstanding op, so each node has at most one successor — a cycle,
    // if any, is found by walking successors.
    let waits_on = |pi: usize| -> Option<usize> {
        let op = &traces[pi][pcs[pi]];
        let chan = sys.channel(op.chan())?;
        let partner = match op {
            TraceOp::Send(_) => chan.receiver,
            TraceOp::Recv(_) => chan.sender,
        }?;
        stuck.contains(&partner).then_some(partner)
    };
    for &start in &stuck {
        let mut path = vec![start];
        let mut cur = start;
        while let Some(next) = waits_on(cur) {
            if let Some(pos) = path.iter().position(|&p| p == next) {
                let cycle = path[pos..]
                    .iter()
                    .map(|&pi| sys.processes[pi].name.clone())
                    .collect();
                return DeadlockVerdict::Deadlock { blocked, cycle };
            }
            path.push(next);
            cur = next;
        }
    }
    DeadlockVerdict::Deadlock {
        blocked,
        cycle: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(src: &str) -> DeadlockVerdict {
        let sys = hls_lang::compile_system(src).unwrap();
        analyze_deadlock(&sys)
    }

    #[test]
    fn acyclic_pipeline_is_proven_free() {
        let v = verdict(
            "system pipe; input X; output Y; chan c;
             process prod; var i : int<4>; begin
               i := 0;
               do send c, X + i; i := i + 1; until i > 2;
             end;
             process cons; var v, acc, j : int<4>; begin
               acc := 0; j := 0;
               do recv c, v; acc := acc + v; j := j + 1; until j > 2;
               Y := acc;
             end;
             end.",
        );
        assert_eq!(v, DeadlockVerdict::Free);
    }

    #[test]
    fn producer_consumer_ring_is_proven_free() {
        // a -> b -> a: a classic request/response ring. With matched
        // counts and a send-first process, this never deadlocks.
        let v = verdict(
            "system ring; output Y; chan req; chan rsp;
             process a; var i : int<4>; var v; begin
               i := 0;
               do send req, i; recv rsp, v; i := i + 1; until i > 2;
               Y := v;
             end;
             process b; var r; begin
               recv req, r; send rsp, r + 1;
               recv req, r; send rsp, r + 1;
               recv req, r; send rsp, r + 1;
             end;
             end.",
        );
        assert_eq!(v, DeadlockVerdict::Free);
    }

    #[test]
    fn crossed_rendezvous_reports_cycle_witness() {
        // Both processes send first: each waits for the other's recv.
        let v = verdict(
            "system cross; output Y; chan ab; chan ba;
             process a; var v; begin
               send ab, 1; recv ba, v; Y := v;
             end;
             process b; var w; begin
               send ba, 2; recv ab, w;
             end;
             end.",
        );
        let DeadlockVerdict::Deadlock { blocked, cycle } = v else {
            panic!("expected deadlock, got {v}");
        };
        assert_eq!(
            blocked,
            vec![
                ("a".to_string(), "send ab".to_string()),
                ("b".to_string(), "send ba".to_string()),
            ]
        );
        assert_eq!(cycle.len(), 2, "a waits on b waits on a: {cycle:?}");
    }

    #[test]
    fn buffering_resolves_the_crossed_sends() {
        // The same crossed shape, but one channel buffered: the send on
        // `ab` completes immediately, breaking the cycle.
        let v = verdict(
            "system cross; output Y; chan ab : fix[1]; chan ba;
             process a; var v; begin
               send ab, 1; recv ba, v; Y := v;
             end;
             process b; var w; begin
               send ba, 2; recv ab, w;
             end;
             end.",
        );
        assert_eq!(v, DeadlockVerdict::Free);
    }

    #[test]
    fn mismatched_counts_deadlock_without_cycle() {
        let v = verdict(
            "system s; output Y; chan c;
             process a; var i : int<4>; begin
               i := 0;
               do send c, i; i := i + 1; until i > 1;
             end;
             process b; var v, j : int<4>; begin
               j := 0;
               do recv c, v; j := j + 1; until j > 2;
               Y := v;
             end;
             end.",
        );
        let DeadlockVerdict::Deadlock { blocked, cycle } = v else {
            panic!("expected deadlock, got {v}");
        };
        assert_eq!(blocked, vec![("b".to_string(), "recv c".to_string())]);
        assert!(cycle.is_empty(), "starvation, not a cycle: {cycle:?}");
    }

    #[test]
    fn overfilled_buffer_deadlocks() {
        // Three sends into a depth-2 FIFO nobody drains.
        let v = verdict(
            "system s; output Y; chan c : fix[2];
             process a; var i : int<4>; begin
               i := 0;
               do send c, i; i := i + 1; until i > 2;
               Y := i;
             end;
             process b; var unused; begin
               unused := 0;
             end;
             end.",
        );
        let DeadlockVerdict::Deadlock { blocked, .. } = v else {
            panic!("expected deadlock, got {v}");
        };
        assert_eq!(blocked, vec![("a".to_string(), "send c".to_string())]);
    }

    #[test]
    fn input_dependent_branch_is_unknown() {
        let v = verdict(
            "system s; input X; output Y; chan c;
             process a; begin
               if X > 0 then Y := 1; else Y := 2; end;
               send c, X;
             end;
             process b; var v; begin recv c, v; end;
             end.",
        );
        let DeadlockVerdict::Unknown { reason } = v else {
            panic!("expected unknown, got {v}");
        };
        assert!(reason.contains("input-dependent"), "{reason}");
    }

    #[test]
    fn try_ops_are_conservatively_unknown() {
        let v = verdict(
            "system s; output Y; chan c : fix[2];
             process a; var f : bit; begin
               try_send c, 7, f;
               Y := f;
             end;
             process b; var v, g : bit; begin
               try_recv c, v, g;
             end;
             end.",
        );
        assert!(matches!(v, DeadlockVerdict::Unknown { .. }), "{v}");
    }

    #[test]
    fn verdict_agrees_with_simulation_on_the_crossed_case() {
        let sys = hls_lang::compile_system(
            "system cross; output Y; chan ab; chan ba;
             process a; var v; begin send ab, 1; recv ba, v; Y := v; end;
             process b; var w; begin send ba, 2; recv ab, w; end;
             end.",
        )
        .unwrap();
        let DeadlockVerdict::Deadlock { blocked, .. } = analyze_deadlock(&sys) else {
            panic!("analysis missed the deadlock");
        };
        let err = crate::interpret_system(&sys, &Default::default()).unwrap_err();
        let crate::SimError::Deadlock {
            blocked: sim_blocked,
        } = err
        else {
            panic!("simulation missed the deadlock: {err}");
        };
        assert_eq!(blocked, sim_blocked);
    }
}
