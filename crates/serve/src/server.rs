//! The HTTP server: admission control, routing, and graceful drain.
//!
//! ## Queueing model
//!
//! One acceptor thread owns the listener. Each accepted connection is
//! admitted against a single bound — `queue` — counting every request
//! that has been accepted but not yet finished (queued *and* executing).
//! Admitted connections are handed to a work-stealing pool reused from
//! [`hls_core::par`]; over the bound, the acceptor sheds the connection
//! with `503 Service Unavailable` + `Retry-After` from a short-lived
//! helper thread so the accept loop itself never blocks on a slow peer.
//!
//! ## Deadlines
//!
//! Every request gets a [`CancelToken`] carrying the server deadline
//! (or the request's own `deadline_ms`, whichever is sooner). The token
//! is checked between pipeline stages; an expired request answers
//! `504 Gateway Timeout` naming the last completed stage.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] flips the shutdown flag and pokes the
//! listener with a loopback connection so the blocking `accept` wakes
//! immediately. The acceptor stops admitting, waits until the in-flight
//! count drains to zero, joins the pool, and returns. The `hls-serve`
//! binary wires this handle to a SIGTERM/SIGINT self-pipe (see
//! [`crate::signal`]), so a terminating service finishes every admitted
//! request before exiting.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hls_core::par::{default_threads, ThreadPool};
use hls_core::{cdfg_fingerprint, CancelToken, Explorer, SynthesisError};

use crate::api;
use crate::cache::{response_key, ResponseCache};
use crate::http::{read_request, ReadError, Request, Response};
use crate::json::{self, Json};
use crate::metrics::Metrics;

/// Server configuration; every knob has an environment variable.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`HLS_SERVE_ADDR`, default `127.0.0.1:7878`;
    /// use port 0 for an ephemeral port).
    pub addr: String,
    /// Worker threads (`HLS_SERVE_THREADS`, default: available cores).
    pub threads: usize,
    /// Max accepted-but-unfinished requests before load shedding
    /// (`HLS_SERVE_QUEUE`, default 64).
    pub queue: usize,
    /// Per-request deadline (`HLS_SERVE_DEADLINE_MS`, default 10000).
    pub deadline: Duration,
    /// Response-cache capacity in entries (`HLS_SERVE_CACHE`, default
    /// 1024; 0 disables the cache).
    pub cache_capacity: usize,
    /// Seconds suggested in the `Retry-After` header of a 503.
    pub retry_after_secs: u64,
    /// Honor the `test_delay_ms` request field (integration tests only).
    pub allow_test_delay: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: default_threads(),
            queue: 64,
            deadline: Duration::from_millis(10_000),
            cache_capacity: 1024,
            retry_after_secs: 1,
            allow_test_delay: false,
        }
    }
}

/// Reads a non-negative integer environment variable, warning (not
/// silently ignoring) invalid values.
fn env_number(name: &str, fallback: u64, min: u64) -> u64 {
    match std::env::var(name) {
        Err(_) => fallback,
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(n) if n >= min => n,
            _ => {
                eprintln!(
                    "warning: ignoring {name}={raw:?} (expected an integer >= {min}); \
                     falling back to {fallback}"
                );
                fallback
            }
        },
    }
}

impl ServerConfig {
    /// Configuration from the `HLS_SERVE_*` environment variables.
    pub fn from_env() -> Self {
        let defaults = ServerConfig::default();
        ServerConfig {
            addr: std::env::var("HLS_SERVE_ADDR").unwrap_or(defaults.addr),
            threads: env_number("HLS_SERVE_THREADS", defaults.threads as u64, 1) as usize,
            queue: env_number("HLS_SERVE_QUEUE", defaults.queue as u64, 1) as usize,
            deadline: Duration::from_millis(env_number(
                "HLS_SERVE_DEADLINE_MS",
                defaults.deadline.as_millis() as u64,
                1,
            )),
            cache_capacity: env_number("HLS_SERVE_CACHE", defaults.cache_capacity as u64, 0)
                as usize,
            ..defaults
        }
    }
}

/// Shared server state, visible to the acceptor and every worker.
struct Ctx {
    config: ServerConfig,
    metrics: Arc<Metrics>,
    cache: ResponseCache,
    /// The shared exploration engine; its memo cache persists across
    /// requests, so repeated or overlapping grids are answered from it.
    explorer: Explorer,
    /// Accepted-but-unfinished requests (queued + executing).
    inflight: AtomicUsize,
    shutdown: AtomicBool,
    /// Parking spot for the drain wait.
    idle: Mutex<()>,
    idle_cv: Condvar,
}

impl Ctx {
    fn request_done(&self) {
        let before = self.inflight.fetch_sub(1, Ordering::SeqCst);
        self.metrics.queue_left(before.saturating_sub(1));
        if before == 1 {
            let _guard = self.idle.lock().expect("idle lock");
            self.idle_cv.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut guard = self.idle.lock().expect("idle lock");
        while self.inflight.load(Ordering::SeqCst) > 0 {
            guard = self.idle_cv.wait(guard).expect("idle wait");
        }
    }
}

/// A running server bound to its listener.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    pool: ThreadPool,
}

/// A cloneable handle for shutting the server down and reading metrics.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.ctx.metrics)
    }

    /// Requests a graceful shutdown: stop accepting, drain in-flight
    /// requests, then return from [`Server::run`]. Idempotent.
    pub fn shutdown(&self) {
        if !self.ctx.shutdown.swap(true, Ordering::SeqCst) {
            // Poke the blocking accept() so it observes the flag now.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

impl Server {
    /// Binds the listener and spins up the worker pool.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn bind(config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let pool = ThreadPool::new(config.threads);
        let explorer = Explorer::with_threads(config.threads);
        let ctx = Arc::new(Ctx {
            metrics: Arc::new(Metrics::new()),
            cache: ResponseCache::new(config.cache_capacity),
            explorer,
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
            config,
        });
        Ok(Server {
            listener,
            addr,
            ctx,
            pool,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for shutdown and metrics.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`], then
    /// drains every admitted request and joins the workers.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors.
    pub fn run(self) -> io::Result<()> {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.ctx.shutdown.load(Ordering::SeqCst) {
                drop(stream);
                break;
            }
            let depth = self.ctx.inflight.fetch_add(1, Ordering::SeqCst) + 1;
            self.ctx.metrics.queue_entered(depth);
            if depth > self.ctx.config.queue {
                self.ctx.metrics.shed();
                let ctx = Arc::clone(&self.ctx);
                // A helper thread absorbs a slow peer; shed responses are
                // bounded by the accept rate, not by synthesis time.
                std::thread::spawn(move || {
                    shed(stream, &ctx);
                    ctx.request_done();
                });
                continue;
            }
            let ctx = Arc::clone(&self.ctx);
            self.pool.execute(move || {
                // Outer firewall: even a panic outside route() (request
                // parsing, response writing) must not leak the in-flight
                // slot, or shutdown would wait on it forever.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(stream, &ctx);
                }));
                if caught.is_err() {
                    ctx.metrics.panic();
                }
                ctx.request_done();
            });
        }
        self.ctx.wait_idle();
        // Dropping the pool joins every (now idle) worker.
        drop(self.pool);
        Ok(())
    }
}

/// Answers one over-capacity connection with 503 + `Retry-After`.
fn shed(mut stream: TcpStream, ctx: &Ctx) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1000)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(1000)));
    // Read (and discard) the request so the client reliably sees the
    // response instead of a reset; ignore unreadable requests.
    let endpoint = match read_request(&mut stream) {
        Ok(req) => endpoint_label(&req),
        Err(_) => "unknown",
    };
    let body = Json::Obj(vec![
        ("error".into(), Json::Str("server overloaded".into())),
        (
            "retry_after_secs".into(),
            Json::Num(ctx.config.retry_after_secs as f64),
        ),
    ]);
    let resp = Response::json(503, body.render().into_bytes())
        .with_header("Retry-After", ctx.config.retry_after_secs.to_string());
    let _ = resp.write_to(&mut stream);
    ctx.metrics
        .observe_request(endpoint, 503, started.elapsed());
}

/// The metrics label for a request path.
fn endpoint_label(req: &Request) -> &'static str {
    match req.path.split('?').next().unwrap_or("") {
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/synthesize" => "synthesize",
        "/explore" => "explore",
        _ => "unknown",
    }
}

/// Reads, routes, answers, and records one connection.
fn handle_connection(mut stream: TcpStream, ctx: &Ctx) {
    let started = Instant::now();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(5000)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(5000)));
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(ReadError::Closed) => return,
        Err(ReadError::Io(_)) => return,
        Err(ReadError::TooLarge) => {
            let resp = error_response(413, "request too large");
            let _ = resp.write_to(&mut stream);
            ctx.metrics
                .observe_request("unknown", 413, started.elapsed());
            return;
        }
        Err(ReadError::Malformed(why)) => {
            let resp = error_response(400, why);
            let _ = resp.write_to(&mut stream);
            ctx.metrics
                .observe_request("unknown", 400, started.elapsed());
            return;
        }
    };
    let endpoint = endpoint_label(&req);
    // Panic firewall: a bug anywhere in the synthesis pipeline must cost
    // one 500, not a worker thread. AssertUnwindSafe is sound here
    // because `ctx` only holds lock-guarded or atomic state that stays
    // consistent if a request dies mid-flight (a poisoned metrics lock
    // would itself panic on the *next* request, so route() never leaves
    // one behind: the registry methods do not panic while holding it).
    let resp =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(&req, endpoint, ctx)))
            .unwrap_or_else(|payload| {
                ctx.metrics.panic();
                let msg = panic_message(payload.as_ref());
                eprintln!("panic in /{endpoint} handler: {msg}");
                error_response(500, &format!("internal error: {msg}"))
            });
    let status = resp.status;
    let _ = resp.write_to(&mut stream);
    ctx.metrics
        .observe_request(endpoint, status, started.elapsed());
}

/// A printable panic payload (panics carry `&str` or `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "unknown panic"
    }
}

/// A JSON error body.
fn error_response(status: u16, msg: &str) -> Response {
    let body = Json::Obj(vec![("error".into(), Json::Str(msg.into()))]);
    Response::json(status, body.render().into_bytes())
}

/// Dispatches one parsed request.
fn route(req: &Request, endpoint: &str, ctx: &Ctx) -> Response {
    match (endpoint, req.method.as_str()) {
        ("healthz", "GET") => Response::json(200, br#"{"status":"ok"}"#.to_vec()),
        ("metrics", "GET") => Response::text(200, ctx.metrics.render().into_bytes()),
        ("synthesize", "POST") => synthesize(req, ctx),
        ("explore", "POST") => explore(req, ctx),
        ("healthz" | "metrics" | "synthesize" | "explore", _) => {
            error_response(405, "method not allowed")
        }
        _ => error_response(404, "no such endpoint"),
    }
}

/// The request's effective deadline token.
fn deadline_token(ctx: &Ctx, requested_ms: Option<u64>) -> CancelToken {
    let server = ctx.config.deadline;
    let effective = match requested_ms {
        Some(ms) => server.min(Duration::from_millis(ms)),
        None => server,
    };
    CancelToken::with_timeout(effective)
}

/// Maps a synthesis failure onto an HTTP response.
fn synthesis_error_response(e: &SynthesisError, ctx: &Ctx) -> Response {
    match e {
        SynthesisError::Parse(_) => error_response(422, &e.to_string()),
        SynthesisError::Cancelled { completed } => {
            ctx.metrics.deadline_cancelled();
            let body = Json::Obj(vec![
                ("error".into(), Json::Str("deadline exceeded".into())),
                ("completed_stage".into(), Json::Str((*completed).into())),
            ]);
            Response::json(504, body.render().into_bytes())
        }
        other => error_response(500, &other.to_string()),
    }
}

/// `POST /synthesize`.
fn synthesize(req: &Request, ctx: &Ctx) -> Response {
    let body = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not utf-8".to_string())
        .and_then(|text| json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(msg) => return error_response(400, &msg),
    };
    let parsed = match api::SynthesizeRequest::from_json(&body) {
        Ok(p) => p,
        Err(e) => return error_response(422, &e.0),
    };
    let cancel = deadline_token(ctx, parsed.deadline_ms);
    // Test-only hold: occupies this worker (for saturation tests) while
    // the deadline clock, already started above, keeps running (for
    // deterministic 504 tests).
    if ctx.config.allow_test_delay && parsed.test_delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(parsed.test_delay_ms));
    }
    // Test-only injected panic: stands in for an unexpected bug deep in
    // the pipeline so tests can prove the firewall answers 500 and the
    // worker survives.
    if ctx.config.allow_test_delay && parsed.test_panic {
        panic!("test-injected panic in synthesize stage");
    }
    if hls_lang::is_system_source(&parsed.source) {
        return synthesize_system(&parsed, ctx);
    }
    let cdfg = match hls_lang::compile(&parsed.source) {
        Ok(c) => c,
        Err(e) => return error_response(422, &format!("parse: {e}")),
    };
    let behavior_fp = cdfg_fingerprint(&cdfg);
    let key = response_key(
        "synthesize",
        behavior_fp,
        parsed.synthesizer.fingerprint(),
        u64::from(parsed.verilog),
    );
    if ctx.config.cache_capacity > 0 {
        if let Some(cached) = ctx.cache.get(key) {
            ctx.metrics.cache_hit();
            return Response::json(200, cached.as_ref().clone())
                .with_header("X-HLS-Cache", "hit".into());
        }
        ctx.metrics.cache_miss();
    }
    let result = match parsed.synthesizer.synthesize_cancellable(cdfg, &cancel) {
        Ok(r) => r,
        Err(e) => return synthesis_error_response(&e, ctx),
    };
    ctx.metrics.observe_stages(result.stage_nanos);
    let rendered = api::synthesize_response(&parsed, behavior_fp, &result)
        .render()
        .into_bytes();
    let rendered = Arc::new(rendered);
    if ctx.config.cache_capacity > 0 {
        ctx.cache.insert(key, Arc::clone(&rendered));
    }
    Response::json(200, rendered.as_ref().clone()).with_header("X-HLS-Cache", "miss".into())
}

/// `POST /synthesize` for a multi-process `system` source: every
/// process runs the full per-behavior pipeline and the response carries
/// per-process metrics plus (on request) the elaborated top-level
/// Verilog with the handshake interconnect. System synthesis has no
/// between-stage cancel points yet, so the deadline is not enforced
/// mid-flight here.
fn synthesize_system(parsed: &api::SynthesizeRequest, ctx: &Ctx) -> Response {
    let sys = match hls_lang::compile_system(&parsed.source) {
        Ok(s) => s,
        Err(e) => return error_response(422, &format!("parse: {e}")),
    };
    let behavior_fp = api::system_fingerprint(&sys);
    let key = response_key(
        "synthesize-system",
        behavior_fp,
        parsed.synthesizer.fingerprint(),
        u64::from(parsed.verilog),
    );
    if ctx.config.cache_capacity > 0 {
        if let Some(cached) = ctx.cache.get(key) {
            ctx.metrics.cache_hit();
            return Response::json(200, cached.as_ref().clone())
                .with_header("X-HLS-Cache", "hit".into());
        }
        ctx.metrics.cache_miss();
    }
    let result = match parsed.synthesizer.synthesize_system(sys) {
        Ok(r) => r,
        Err(e) => return synthesis_error_response(&e, ctx),
    };
    for p in &result.processes {
        ctx.metrics.observe_stages(p.result.stage_nanos);
    }
    let rendered = api::system_response(parsed, behavior_fp, &result)
        .render()
        .into_bytes();
    let rendered = Arc::new(rendered);
    if ctx.config.cache_capacity > 0 {
        ctx.cache.insert(key, Arc::clone(&rendered));
    }
    Response::json(200, rendered.as_ref().clone()).with_header("X-HLS-Cache", "miss".into())
}

/// `POST /explore`.
fn explore(req: &Request, ctx: &Ctx) -> Response {
    let body = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not utf-8".to_string())
        .and_then(|text| json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(msg) => return error_response(400, &msg),
    };
    let parsed = match api::ExploreRequest::from_json(&body) {
        Ok(p) => p,
        Err(e) => return error_response(422, &e.0),
    };
    let cancel = deadline_token(ctx, parsed.deadline_ms);
    if hls_lang::is_system_source(&parsed.source) {
        return error_response(422, "explore does not accept system sources");
    }
    let cdfg = match hls_lang::compile(&parsed.source) {
        Ok(c) => c,
        Err(e) => return error_response(422, &format!("parse: {e}")),
    };
    let behavior_fp = cdfg_fingerprint(&cdfg);
    let config_fp = parsed.synthesizer.fingerprint();
    let spec_fp = {
        use std::fmt::Write as _;
        let mut w = hls_testkit::FnvWriter::new();
        let _ = write!(w, "{:?}", parsed.spec);
        w.finish()
    };
    let key = response_key("explore", behavior_fp, config_fp, spec_fp);
    if ctx.config.cache_capacity > 0 {
        if let Some(cached) = ctx.cache.get(key) {
            ctx.metrics.cache_hit();
            return Response::json(200, cached.as_ref().clone())
                .with_header("X-HLS-Cache", "hit".into());
        }
        ctx.metrics.cache_miss();
    }
    let points = match ctx.explorer.sweep_grid_cdfg_cancellable(
        &parsed.synthesizer,
        &cdfg,
        &parsed.spec,
        &cancel,
    ) {
        Ok(p) => p,
        Err(e) => return synthesis_error_response(&e, ctx),
    };
    let rendered = api::explore_response(&points, behavior_fp, config_fp)
        .render()
        .into_bytes();
    let rendered = Arc::new(rendered);
    if ctx.config.cache_capacity > 0 {
        ctx.cache.insert(key, Arc::clone(&rendered));
    }
    Response::json(200, rendered.as_ref().clone()).with_header("X-HLS-Cache", "miss".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_from_env_warns_and_falls_back() {
        // Invalid values fall back to defaults (with a stderr warning).
        std::env::set_var("HLS_SERVE_QUEUE", "not-a-number");
        std::env::set_var("HLS_SERVE_THREADS", "0");
        let cfg = ServerConfig::from_env();
        assert_eq!(cfg.queue, ServerConfig::default().queue);
        assert_eq!(cfg.threads, ServerConfig::default().threads);
        std::env::remove_var("HLS_SERVE_QUEUE");
        std::env::remove_var("HLS_SERVE_THREADS");
    }

    #[test]
    fn deadline_token_takes_the_sooner() {
        let ctx_cfg = ServerConfig {
            deadline: Duration::from_millis(50),
            ..ServerConfig::default()
        };
        // A request asking for longer than the server allows is clamped:
        // both tokens expire within the server deadline.
        let server = CancelToken::with_timeout(ctx_cfg.deadline);
        assert!(!server.is_cancelled());
        std::thread::sleep(Duration::from_millis(60));
        assert!(server.is_cancelled());
    }
}
