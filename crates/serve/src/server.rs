//! The HTTP server: admission control, routing, and graceful drain.
//!
//! ## Queueing model
//!
//! One acceptor thread owns the listener. Each accepted connection is
//! admitted against a single bound — `queue` — counting every request
//! that has been accepted but not yet finished (queued *and* executing).
//! Admitted connections are handed to a work-stealing pool reused from
//! [`hls_core::par`]; over the bound, the acceptor sheds the connection
//! with `503 Service Unavailable` + `Retry-After` from a short-lived
//! helper thread so the accept loop itself never blocks on a slow peer.
//!
//! ## Deadlines
//!
//! Every request gets a [`CancelToken`] carrying the server deadline
//! (or the request's own `deadline_ms`, whichever is sooner). The token
//! is checked between pipeline stages; an expired request answers
//! `504 Gateway Timeout` naming the last completed stage.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] flips the shutdown flag and pokes the
//! listener with a loopback connection so the blocking `accept` wakes
//! immediately. The acceptor stops admitting, waits until the in-flight
//! count drains to zero, joins the pool, and returns. The `hls-serve`
//! binary wires this handle to a SIGTERM/SIGINT self-pipe (see
//! [`crate::signal`]), so a terminating service finishes every admitted
//! request before exiting.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hls_core::par::{default_threads, ThreadPool};
use hls_core::{
    cdfg_fingerprint, CancelToken, DesignPoint, Explorer, GridPoint, StreamedPoint, SynthesisError,
};

use crate::api;
use crate::cache::{response_key, ResponseCache};
use crate::http::{
    finish_chunked, read_request, start_chunked, write_chunk, ReadError, Request, Response,
};
use crate::json::{self, Json};
use crate::metrics::{BatchOutcome, Metrics};

/// Server configuration; every knob has an environment variable.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`HLS_SERVE_ADDR`, default `127.0.0.1:7878`;
    /// use port 0 for an ephemeral port).
    pub addr: String,
    /// Worker threads (`HLS_SERVE_THREADS`, default: available cores).
    pub threads: usize,
    /// Max accepted-but-unfinished requests before load shedding
    /// (`HLS_SERVE_QUEUE`, default 64).
    pub queue: usize,
    /// Per-request deadline (`HLS_SERVE_DEADLINE_MS`, default 10000).
    pub deadline: Duration,
    /// Response-cache capacity in entries (`HLS_SERVE_CACHE`, default
    /// 1024; 0 disables the cache).
    pub cache_capacity: usize,
    /// Backoff suggested on a 503, in milliseconds. Rendered twice: the
    /// standard `Retry-After` header carries it rounded **up** to whole
    /// seconds (the header's unit), and `Retry-After-Ms` carries it
    /// verbatim for clients (like `hls-loadgen`) that back off in ms.
    pub retry_after_ms: u64,
    /// Honor the `test_delay_ms` request field (integration tests only;
    /// `HLS_SERVE_ALLOW_TEST_DELAY=1` for spawned worker processes).
    pub allow_test_delay: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: default_threads(),
            queue: 64,
            deadline: Duration::from_millis(10_000),
            cache_capacity: 1024,
            retry_after_ms: 1000,
            allow_test_delay: false,
        }
    }
}

/// Reads a non-negative integer environment variable, warning (not
/// silently ignoring) invalid values.
fn env_number(name: &str, fallback: u64, min: u64) -> u64 {
    match std::env::var(name) {
        Err(_) => fallback,
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(n) if n >= min => n,
            _ => {
                eprintln!(
                    "warning: ignoring {name}={raw:?} (expected an integer >= {min}); \
                     falling back to {fallback}"
                );
                fallback
            }
        },
    }
}

impl ServerConfig {
    /// Configuration from the `HLS_SERVE_*` environment variables.
    pub fn from_env() -> Self {
        let defaults = ServerConfig::default();
        ServerConfig {
            addr: std::env::var("HLS_SERVE_ADDR").unwrap_or(defaults.addr),
            threads: env_number("HLS_SERVE_THREADS", defaults.threads as u64, 1) as usize,
            queue: env_number("HLS_SERVE_QUEUE", defaults.queue as u64, 1) as usize,
            deadline: Duration::from_millis(env_number(
                "HLS_SERVE_DEADLINE_MS",
                defaults.deadline.as_millis() as u64,
                1,
            )),
            cache_capacity: env_number("HLS_SERVE_CACHE", defaults.cache_capacity as u64, 0)
                as usize,
            retry_after_ms: env_number("HLS_SERVE_RETRY_AFTER_MS", defaults.retry_after_ms, 1),
            allow_test_delay: std::env::var("HLS_SERVE_ALLOW_TEST_DELAY")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(defaults.allow_test_delay),
        }
    }

    /// The whole-second `Retry-After` value for [`Self::retry_after_ms`]
    /// (rounded up, never zero — the header cannot express sub-second
    /// backoff).
    pub fn retry_after_secs(&self) -> u64 {
        self.retry_after_ms.div_ceil(1000).max(1)
    }
}

/// Shared server state, visible to the acceptor and every worker.
struct Ctx {
    config: ServerConfig,
    metrics: Arc<Metrics>,
    cache: ResponseCache,
    /// The shared exploration engine; its memo cache persists across
    /// requests, so repeated or overlapping grids are answered from it.
    explorer: Explorer,
    /// Accepted-but-unfinished requests (queued + executing).
    inflight: AtomicUsize,
    shutdown: AtomicBool,
    /// Parking spot for the drain wait.
    idle: Mutex<()>,
    idle_cv: Condvar,
}

impl Ctx {
    fn request_done(&self) {
        let before = self.inflight.fetch_sub(1, Ordering::SeqCst);
        self.metrics.queue_left(before.saturating_sub(1));
        if before == 1 {
            let _guard = self.idle.lock().expect("idle lock");
            self.idle_cv.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut guard = self.idle.lock().expect("idle lock");
        while self.inflight.load(Ordering::SeqCst) > 0 {
            guard = self.idle_cv.wait(guard).expect("idle wait");
        }
    }
}

/// A running server bound to its listener.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    pool: ThreadPool,
}

/// A cloneable handle for shutting the server down and reading metrics.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.ctx.metrics)
    }

    /// Requests a graceful shutdown: stop accepting, drain in-flight
    /// requests, then return from [`Server::run`]. Idempotent.
    pub fn shutdown(&self) {
        if !self.ctx.shutdown.swap(true, Ordering::SeqCst) {
            // Poke the blocking accept() so it observes the flag now.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

impl Server {
    /// Binds the listener and spins up the worker pool.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn bind(config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let pool = ThreadPool::new(config.threads);
        let explorer = Explorer::with_threads(config.threads);
        let ctx = Arc::new(Ctx {
            metrics: Arc::new(Metrics::new()),
            cache: ResponseCache::new(config.cache_capacity),
            explorer,
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
            config,
        });
        Ok(Server {
            listener,
            addr,
            ctx,
            pool,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for shutdown and metrics.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`], then
    /// drains every admitted request and joins the workers.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors.
    pub fn run(self) -> io::Result<()> {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.ctx.shutdown.load(Ordering::SeqCst) {
                drop(stream);
                break;
            }
            let depth = self.ctx.inflight.fetch_add(1, Ordering::SeqCst) + 1;
            self.ctx.metrics.queue_entered(depth);
            if depth > self.ctx.config.queue {
                self.ctx.metrics.shed();
                let ctx = Arc::clone(&self.ctx);
                // A helper thread absorbs a slow peer; shed responses are
                // bounded by the accept rate, not by synthesis time.
                std::thread::spawn(move || {
                    shed(stream, &ctx);
                    ctx.request_done();
                });
                continue;
            }
            let ctx = Arc::clone(&self.ctx);
            self.pool.execute(move || {
                // Outer firewall: even a panic outside route() (request
                // parsing, response writing) must not leak the in-flight
                // slot, or shutdown would wait on it forever.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(stream, &ctx);
                }));
                if caught.is_err() {
                    ctx.metrics.panic();
                }
                ctx.request_done();
            });
        }
        self.ctx.wait_idle();
        // Dropping the pool joins every (now idle) worker.
        drop(self.pool);
        Ok(())
    }
}

/// Answers one over-capacity connection with 503 + `Retry-After` (whole
/// seconds, the header's unit) + `Retry-After-Ms` (exact).
fn shed(mut stream: TcpStream, ctx: &Ctx) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1000)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(1000)));
    // Read (and discard) the request so the client reliably sees the
    // response instead of a reset; ignore unreadable requests.
    let (endpoint, v1) = match read_request(&mut stream) {
        Ok(req) => parse_route(&req),
        Err(_) => ("unknown", false),
    };
    let ms = ctx.config.retry_after_ms;
    let body = if v1 {
        api::error_envelope("overloaded", "server overloaded", None, Some(ms))
    } else {
        Json::Obj(vec![
            ("error".into(), Json::Str("server overloaded".into())),
            (
                "retry_after_secs".into(),
                Json::Num(ctx.config.retry_after_secs() as f64),
            ),
        ])
    };
    let resp = Response::json(503, body.render().into_bytes())
        .with_header("Retry-After", ctx.config.retry_after_secs().to_string())
        .with_header("Retry-After-Ms", ms.to_string());
    let _ = resp.write_to(&mut stream);
    ctx.metrics
        .observe_request(endpoint, 503, started.elapsed());
}

/// Resolves a request path to its `(endpoint label, is_v1)` pair.
/// Legacy unversioned paths keep resolving (behind a `Deprecation`
/// header downstream); `/v1/batch` has no legacy twin.
pub(crate) fn parse_route(req: &Request) -> (&'static str, bool) {
    match req.path.split('?').next().unwrap_or("") {
        "/healthz" => ("healthz", false),
        "/metrics" => ("metrics", false),
        "/synthesize" => ("synthesize", false),
        "/explore" => ("explore", false),
        "/v1/healthz" => ("healthz", true),
        "/v1/metrics" => ("metrics", true),
        "/v1/synthesize" => ("synthesize", true),
        "/v1/explore" => ("explore", true),
        "/v1/batch" => ("batch", true),
        other => ("unknown", other.starts_with("/v1/")),
    }
}

/// Reads, routes, answers, and records one connection.
fn handle_connection(mut stream: TcpStream, ctx: &Ctx) {
    let started = Instant::now();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(5000)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(5000)));
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(ReadError::Closed) => return,
        Err(ReadError::Io(_)) => return,
        Err(ReadError::TooLarge) => {
            // The request never parsed, so its API version is unknown;
            // pre-route errors keep the legacy shape.
            let resp = error_response(413, "request too large", false);
            let _ = resp.write_to(&mut stream);
            ctx.metrics
                .observe_request("unknown", 413, started.elapsed());
            return;
        }
        Err(ReadError::Malformed(why)) => {
            let resp = error_response(400, why, false);
            let _ = resp.write_to(&mut stream);
            ctx.metrics
                .observe_request("unknown", 400, started.elapsed());
            return;
        }
    };
    let (endpoint, v1) = parse_route(&req);
    if endpoint == "batch" && req.method == "POST" {
        // The batch handler streams its own chunked response (and owns
        // the error paths before the stream starts), so it bypasses the
        // buffered write below. Same firewall contract as route().
        let status = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batch(&req, &mut stream, ctx)
        }))
        .unwrap_or_else(|payload| {
            ctx.metrics.panic();
            eprintln!(
                "panic in /batch handler: {}",
                panic_message(payload.as_ref())
            );
            500
        });
        ctx.metrics
            .observe_request(endpoint, status, started.elapsed());
        return;
    }
    // Panic firewall: a bug anywhere in the synthesis pipeline must cost
    // one 500, not a worker thread. AssertUnwindSafe is sound here
    // because `ctx` only holds lock-guarded or atomic state that stays
    // consistent if a request dies mid-flight (a poisoned metrics lock
    // would itself panic on the *next* request, so route() never leaves
    // one behind: the registry methods do not panic while holding it).
    let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        route(&req, endpoint, v1, ctx)
    }))
    .unwrap_or_else(|payload| {
        ctx.metrics.panic();
        let msg = panic_message(payload.as_ref());
        eprintln!("panic in /{endpoint} handler: {msg}");
        error_response(500, &format!("internal error: {msg}"), v1)
    });
    let status = resp.status;
    let _ = resp.write_to(&mut stream);
    ctx.metrics
        .observe_request(endpoint, status, started.elapsed());
}

/// A printable panic payload (panics carry `&str` or `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "unknown panic"
    }
}

/// The v1 machine-readable error code for an HTTP status.
pub(crate) fn error_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        413 => "payload_too_large",
        422 => "unprocessable",
        503 => "overloaded",
        504 => "deadline_exceeded",
        _ => "internal",
    }
}

/// A JSON error body: v1 requests get the
/// `{"error":{"code","message"}}` envelope, legacy requests keep the
/// flat `{"error":"msg"}` shape.
pub(crate) fn error_response(status: u16, msg: &str, v1: bool) -> Response {
    let body = if v1 {
        api::error_envelope(error_code(status), msg, None, None)
    } else {
        Json::Obj(vec![("error".into(), Json::Str(msg.into()))])
    };
    Response::json(status, body.render().into_bytes())
}

/// Dispatches one parsed request. Legacy (unversioned) hits on known
/// endpoints are counted and answered with a `Deprecation: true` header
/// over the old-shape body.
fn route(req: &Request, endpoint: &str, v1: bool, ctx: &Ctx) -> Response {
    let resp = match (endpoint, req.method.as_str()) {
        ("healthz", "GET") => Response::json(200, br#"{"status":"ok"}"#.to_vec()),
        ("metrics", "GET") => Response::text(200, ctx.metrics.render().into_bytes()),
        ("synthesize", "POST") => synthesize(req, ctx, v1),
        ("explore", "POST") => explore(req, ctx, v1),
        ("healthz" | "metrics" | "synthesize" | "explore" | "batch", _) => {
            error_response(405, "method not allowed", v1)
        }
        _ => error_response(404, "no such endpoint", v1),
    };
    if v1 || endpoint == "unknown" {
        resp
    } else {
        ctx.metrics.deprecated_request(endpoint);
        resp.with_header("Deprecation", "true".into())
    }
}

/// The request's effective deadline token.
fn deadline_token(ctx: &Ctx, requested_ms: Option<u64>) -> CancelToken {
    let server = ctx.config.deadline;
    let effective = match requested_ms {
        Some(ms) => server.min(Duration::from_millis(ms)),
        None => server,
    };
    CancelToken::with_timeout(effective)
}

/// Maps a synthesis failure onto an HTTP response. The v1 504 carries
/// the last completed stage inside the envelope (`error.stage`); legacy
/// keeps the top-level `completed_stage` member.
fn synthesis_error_response(e: &SynthesisError, ctx: &Ctx, v1: bool) -> Response {
    match e {
        SynthesisError::Parse(_) => error_response(422, &e.to_string(), v1),
        SynthesisError::Cancelled { completed } => {
            ctx.metrics.deadline_cancelled();
            let body = if v1 {
                api::error_envelope(
                    "deadline_exceeded",
                    "deadline exceeded",
                    Some(completed),
                    None,
                )
            } else {
                Json::Obj(vec![
                    ("error".into(), Json::Str("deadline exceeded".into())),
                    ("completed_stage".into(), Json::Str((*completed).into())),
                ])
            };
            Response::json(504, body.render().into_bytes())
        }
        other => error_response(500, &other.to_string(), v1),
    }
}

/// Wraps a cached-or-fresh 200 body for the requested API version: v1
/// splices the serve-time `cache_hit` field in; both versions keep the
/// `X-HLS-Cache` header.
fn ok_with_cache_flag(body: &[u8], hit: bool, v1: bool) -> Response {
    let rendered = if v1 {
        api::with_cache_hit(body, hit)
    } else {
        body.to_vec()
    };
    Response::json(200, rendered)
        .with_header("X-HLS-Cache", if hit { "hit" } else { "miss" }.into())
}

/// `POST /synthesize` and `POST /v1/synthesize`.
fn synthesize(req: &Request, ctx: &Ctx, v1: bool) -> Response {
    let body = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not utf-8".to_string())
        .and_then(|text| json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(msg) => return error_response(400, &msg, v1),
    };
    let parsed = match api::SynthesizeRequest::from_json(&body) {
        Ok(p) => p,
        Err(e) => return error_response(422, &e.0, v1),
    };
    let cancel = deadline_token(ctx, parsed.deadline_ms);
    // Test-only hold: occupies this worker (for saturation tests) while
    // the deadline clock, already started above, keeps running (for
    // deterministic 504 tests).
    if ctx.config.allow_test_delay && parsed.test_delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(parsed.test_delay_ms));
    }
    // Test-only injected panic: stands in for an unexpected bug deep in
    // the pipeline so tests can prove the firewall answers 500 and the
    // worker survives.
    if ctx.config.allow_test_delay && parsed.test_panic {
        panic!("test-injected panic in synthesize stage");
    }
    if hls_lang::is_system_source(&parsed.source) {
        return synthesize_system(&parsed, ctx, v1);
    }
    let cdfg = match hls_lang::compile(&parsed.source) {
        Ok(c) => c,
        Err(e) => return error_response(422, &format!("parse: {e}"), v1),
    };
    let behavior_fp = cdfg_fingerprint(&cdfg);
    let key = response_key(
        "synthesize",
        behavior_fp,
        parsed.synthesizer.fingerprint(),
        u64::from(parsed.verilog),
    );
    if ctx.config.cache_capacity > 0 {
        if let Some(cached) = ctx.cache.get(key) {
            ctx.metrics.cache_hit();
            return ok_with_cache_flag(&cached, true, v1);
        }
        ctx.metrics.cache_miss();
    }
    let result = match parsed.synthesizer.synthesize_cancellable(cdfg, &cancel) {
        Ok(r) => r,
        Err(e) => return synthesis_error_response(&e, ctx, v1),
    };
    ctx.metrics.observe_stages(result.stage_nanos);
    let rendered = api::synthesize_response(&parsed, behavior_fp, &result)
        .render()
        .into_bytes();
    let rendered = Arc::new(rendered);
    if ctx.config.cache_capacity > 0 {
        ctx.cache.insert(key, Arc::clone(&rendered));
    }
    ok_with_cache_flag(&rendered, false, v1)
}

/// `POST /synthesize` for a multi-process `system` source: every
/// process runs the full per-behavior pipeline and the response carries
/// per-process metrics plus (on request) the elaborated top-level
/// Verilog with the handshake interconnect. System synthesis has no
/// between-stage cancel points yet, so the deadline is not enforced
/// mid-flight here.
fn synthesize_system(parsed: &api::SynthesizeRequest, ctx: &Ctx, v1: bool) -> Response {
    let sys = match hls_lang::compile_system(&parsed.source) {
        Ok(s) => s,
        Err(e) => return error_response(422, &format!("parse: {e}"), v1),
    };
    let behavior_fp = api::system_fingerprint(&sys);
    // The v1 body differs (per-process `clock_ns`), so each version
    // caches its own rendering; bit 1 of the flags keeps them apart.
    let key = response_key(
        "synthesize-system",
        behavior_fp,
        parsed.synthesizer.fingerprint(),
        u64::from(parsed.verilog) | (u64::from(v1) << 1),
    );
    if ctx.config.cache_capacity > 0 {
        if let Some(cached) = ctx.cache.get(key) {
            ctx.metrics.cache_hit();
            return ok_with_cache_flag(&cached, true, v1);
        }
        ctx.metrics.cache_miss();
    }
    let result = match parsed.synthesizer.synthesize_system(sys) {
        Ok(r) => r,
        Err(e) => return synthesis_error_response(&e, ctx, v1),
    };
    for p in &result.processes {
        ctx.metrics.observe_stages(p.result.stage_nanos);
    }
    let rendered = if v1 {
        api::system_response_v1(parsed, behavior_fp, &result)
    } else {
        api::system_response(parsed, behavior_fp, &result)
    }
    .render()
    .into_bytes();
    let rendered = Arc::new(rendered);
    if ctx.config.cache_capacity > 0 {
        ctx.cache.insert(key, Arc::clone(&rendered));
    }
    ok_with_cache_flag(&rendered, false, v1)
}

/// `POST /explore` and `POST /v1/explore`.
fn explore(req: &Request, ctx: &Ctx, v1: bool) -> Response {
    let body = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not utf-8".to_string())
        .and_then(|text| json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(msg) => return error_response(400, &msg, v1),
    };
    let parsed = match api::ExploreRequest::from_json(&body) {
        Ok(p) => p,
        Err(e) => return error_response(422, &e.0, v1),
    };
    let cancel = deadline_token(ctx, parsed.deadline_ms);
    if hls_lang::is_system_source(&parsed.source) {
        return error_response(422, "explore does not accept system sources", v1);
    }
    let cdfg = match hls_lang::compile(&parsed.source) {
        Ok(c) => c,
        Err(e) => return error_response(422, &format!("parse: {e}"), v1),
    };
    let behavior_fp = cdfg_fingerprint(&cdfg);
    let config_fp = parsed.synthesizer.fingerprint();
    let spec_fp = {
        use std::fmt::Write as _;
        let mut w = hls_testkit::FnvWriter::new();
        let _ = write!(w, "{:?}", parsed.spec);
        if parsed.prune {
            // A pruned response body carries extra members, so it must
            // not share a cache slot with the exhaustive rendering.
            w.update(b"/pruned");
        }
        w.finish()
    };
    let key = response_key("explore", behavior_fp, config_fp, spec_fp);
    if ctx.config.cache_capacity > 0 {
        if let Some(cached) = ctx.cache.get(key) {
            ctx.metrics.cache_hit();
            return ok_with_cache_flag(&cached, true, v1);
        }
        ctx.metrics.cache_miss();
    }
    let rendered = if parsed.prune {
        let sweep = match ctx.explorer.sweep_grid_cdfg_pruned_cancellable(
            &parsed.synthesizer,
            &cdfg,
            &parsed.spec,
            &cancel,
        ) {
            Ok(s) => s,
            Err(e) => return synthesis_error_response(&e, ctx, v1),
        };
        ctx.metrics.points_pruned(sweep.stats.pruned as u64);
        api::explore_response_pruned(&sweep, behavior_fp, config_fp)
    } else {
        let points = match ctx.explorer.sweep_grid_cdfg_cancellable(
            &parsed.synthesizer,
            &cdfg,
            &parsed.spec,
            &cancel,
        ) {
            Ok(p) => p,
            Err(e) => return synthesis_error_response(&e, ctx, v1),
        };
        api::explore_response(&points, behavior_fp, config_fp)
    }
    .render()
    .into_bytes();
    let rendered = Arc::new(rendered);
    if ctx.config.cache_capacity > 0 {
        ctx.cache.insert(key, Arc::clone(&rendered));
    }
    ok_with_cache_flag(&rendered, false, v1)
}

/// Serializes batch NDJSON lines onto one chunked response stream.
///
/// Grid points complete on pool workers in any order; records are keyed
/// by their *local index* in the request (0..n) and written strictly in
/// that order via a reorder buffer, so the byte stream of a batch is a
/// deterministic function of the request whenever every point's outcome
/// is (e.g. all cache hits). A failed write marks the client gone and
/// cancels the batch token so remaining synthesis stops early.
struct BatchEmitter {
    inner: Mutex<EmitterInner>,
    cancel: CancelToken,
}

struct EmitterInner {
    stream: TcpStream,
    /// Next local index to write.
    next: usize,
    /// Completed records waiting for their turn, by local index.
    pending: BTreeMap<usize, Vec<u8>>,
    failed: bool,
}

impl BatchEmitter {
    fn new(stream: TcpStream, cancel: CancelToken) -> Self {
        BatchEmitter {
            inner: Mutex::new(EmitterInner {
                stream,
                next: 0,
                pending: BTreeMap::new(),
                failed: false,
            }),
            cancel,
        }
    }

    /// Queues record `idx` and flushes every now-contiguous record.
    fn push(&self, idx: usize, mut line: Vec<u8>) {
        line.push(b'\n');
        let mut g = self.inner.lock().expect("emitter lock");
        if g.failed {
            return;
        }
        g.pending.insert(idx, line);
        loop {
            let next = g.next;
            let Some(line) = g.pending.remove(&next) else {
                break;
            };
            if write_chunk(&mut g.stream, &line).is_err() {
                // Mid-stream disconnect: drop the backlog and cancel the
                // token so in-flight points stop at the next stage check.
                g.failed = true;
                g.pending.clear();
                self.cancel.cancel();
                return;
            }
            g.next += 1;
        }
    }

    /// Writes the terminal line and the chunked terminator; `false` if
    /// the client disconnected at any point.
    fn finish(&self, terminal: &[u8]) -> bool {
        let mut g = self.inner.lock().expect("emitter lock");
        if g.failed {
            return false;
        }
        let mut line = terminal.to_vec();
        line.push(b'\n');
        if write_chunk(&mut g.stream, &line).is_err() || finish_chunked(&mut g.stream).is_err() {
            g.failed = true;
            return false;
        }
        true
    }

    fn has_failed(&self) -> bool {
        self.inner.lock().expect("emitter lock").failed
    }
}

/// Renders one failed grid point as its NDJSON error record (shared by
/// the exhaustive and pruned batch callbacks).
fn batch_error_line(seq: u64, e: &SynthesisError) -> Json {
    match e {
        SynthesisError::Cancelled { completed } => api::batch_error_record(
            seq,
            "deadline_exceeded",
            "deadline exceeded",
            Some(completed),
        ),
        other => {
            let code = match other {
                SynthesisError::Parse(_) => "unprocessable",
                _ => "internal",
            };
            api::batch_error_record(seq, code, &other.to_string(), None)
        }
    }
}

/// `POST /v1/batch`: streams one NDJSON record per completed grid point
/// over a chunked response, then a terminal summary line. Returns the
/// status for the metrics label (499 = client disconnected mid-stream).
fn batch(req: &Request, stream: &mut TcpStream, ctx: &Ctx) -> u16 {
    let fail = |stream: &mut TcpStream, status: u16, msg: &str| {
        let _ = error_response(status, msg, true).write_to(stream);
        status
    };
    let body = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not utf-8".to_string())
        .and_then(|text| json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(msg) => return fail(stream, 400, &msg),
    };
    let parsed = match api::BatchRequest::from_json(&body) {
        Ok(p) => p,
        Err(e) => return fail(stream, 422, &e.0),
    };
    if hls_lang::is_system_source(&parsed.source) {
        return fail(stream, 422, "batch does not accept system sources");
    }
    let cdfg = match hls_lang::compile(&parsed.source) {
        Ok(c) => c,
        Err(e) => return fail(stream, 422, &format!("parse: {e}")),
    };
    let cancel = deadline_token(ctx, parsed.deadline_ms);
    let Ok(out) = stream.try_clone() else {
        return fail(stream, 500, "connection unavailable");
    };
    if start_chunked(stream, 200, "application/x-ndjson", &[]).is_err() {
        return 499;
    }
    let n = parsed.points.len();
    let seqs: Arc<Vec<u64>> = Arc::new(parsed.points.iter().map(|(s, _)| *s).collect());
    let points: Vec<GridPoint> = parsed.points.iter().map(|(_, p)| *p).collect();
    let emitter = Arc::new(BatchEmitter::new(out, cancel.clone()));
    type Slot = Option<(DesignPoint, bool)>;
    let results: Arc<Mutex<Vec<Slot>>> = Arc::new(Mutex::new(vec![None; n]));
    let delay = if ctx.config.allow_test_delay {
        parsed.test_delay_ms
    } else {
        0
    };
    // Test-only: hold once after the deadline clock starts, so a tiny
    // deadline is deterministically blown before any point runs —
    // mirroring where the single-shot path injects its hold.
    if delay > 0 {
        std::thread::sleep(Duration::from_millis(delay));
    }
    let sweep_result: Result<Option<hls_core::PruneStats>, SynthesisError> = if parsed.prune {
        let cb = {
            let emitter = Arc::clone(&emitter);
            let results = Arc::clone(&results);
            let seqs = Arc::clone(&seqs);
            let points = Arc::new(points.clone());
            let metrics = Arc::clone(&ctx.metrics);
            move |idx: usize, res: Result<StreamedPoint, SynthesisError>| {
                if delay > 0 {
                    std::thread::sleep(Duration::from_millis(delay));
                }
                let seq = seqs[idx];
                let line = match res {
                    Ok(StreamedPoint::Pruned) => {
                        metrics.points_pruned(1);
                        api::batch_pruned_record(seq, &points[idx])
                    }
                    Ok(StreamedPoint::Synthesized {
                        point: dp,
                        cache_hit: hit,
                    }) => {
                        metrics.batch_point(if hit {
                            BatchOutcome::Hit
                        } else {
                            BatchOutcome::Miss
                        });
                        let record = api::batch_point_record(seq, hit, &points[idx], &dp);
                        results.lock().expect("results lock")[idx] = Some((dp, hit));
                        record
                    }
                    Err(e) => {
                        metrics.batch_point(BatchOutcome::Error);
                        batch_error_line(seq, &e)
                    }
                };
                emitter.push(idx, line.render().into_bytes());
            }
        };
        ctx.explorer
            .sweep_points_cdfg_streaming_pruned(&parsed.synthesizer, &cdfg, points, &cancel, cb)
            .map(Some)
    } else {
        let cb = {
            let emitter = Arc::clone(&emitter);
            let results = Arc::clone(&results);
            let seqs = Arc::clone(&seqs);
            let points = Arc::new(points.clone());
            let metrics = Arc::clone(&ctx.metrics);
            move |idx: usize, res: Result<(DesignPoint, bool), SynthesisError>| {
                // Test-only pacing: holds this pool worker per point so
                // tests can observe mid-batch state deterministically.
                if delay > 0 {
                    std::thread::sleep(Duration::from_millis(delay));
                }
                let seq = seqs[idx];
                let line = match res {
                    Ok((dp, hit)) => {
                        metrics.batch_point(if hit {
                            BatchOutcome::Hit
                        } else {
                            BatchOutcome::Miss
                        });
                        let record = api::batch_point_record(seq, hit, &points[idx], &dp);
                        results.lock().expect("results lock")[idx] = Some((dp, hit));
                        record
                    }
                    Err(e) => {
                        metrics.batch_point(BatchOutcome::Error);
                        batch_error_line(seq, &e)
                    }
                };
                emitter.push(idx, line.render().into_bytes());
            }
        };
        ctx.explorer
            .sweep_points_cdfg_streaming(&parsed.synthesizer, &cdfg, points, &cancel, cb)
            .map(|()| None)
    };
    let stats = match sweep_result {
        Ok(stats) => stats,
        Err(e) => {
            // Shared preparation failed before any point ran: the chunked
            // head is already on the wire, so the error goes out as the
            // terminal line.
            let line = api::error_envelope("internal", &e.to_string(), None, None)
                .render()
                .into_bytes();
            emitter.finish(&line);
            return 200;
        }
    };
    // Summary over the completed points in *seq* order (completion
    // order varies; the rendering must not).
    let slots = results.lock().expect("results lock");
    let mut completed: Vec<(u64, DesignPoint, bool)> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.as_ref().map(|(dp, hit)| (seqs[i], dp.clone(), *hit)))
        .collect();
    drop(slots);
    completed.sort_by_key(|(seq, _, _)| *seq);
    let ok = completed.len();
    let hits = completed.iter().filter(|(_, _, hit)| *hit).count();
    let pts: Vec<DesignPoint> = completed.iter().map(|(_, dp, _)| dp.clone()).collect();
    let summary = match stats {
        Some(stats) => {
            let errors = n.saturating_sub(ok).saturating_sub(stats.pruned);
            api::batch_summary_pruned(n, ok, errors, hits, stats.pruned, &pts)
        }
        None => api::batch_summary(n, ok, n - ok, hits, &pts),
    }
    .render()
    .into_bytes();
    if emitter.has_failed() {
        ctx.metrics.batch_cancelled();
        return 499;
    }
    if cancel.is_cancelled() {
        // Deadline expiry mid-batch: the summary still goes out (late
        // points became error records), but record the cancellation.
        ctx.metrics.deadline_cancelled();
    }
    if !emitter.finish(&summary) {
        ctx.metrics.batch_cancelled();
        return 499;
    }
    200
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_from_env_warns_and_falls_back() {
        // Invalid values fall back to defaults (with a stderr warning).
        std::env::set_var("HLS_SERVE_QUEUE", "not-a-number");
        std::env::set_var("HLS_SERVE_THREADS", "0");
        let cfg = ServerConfig::from_env();
        assert_eq!(cfg.queue, ServerConfig::default().queue);
        assert_eq!(cfg.threads, ServerConfig::default().threads);
        std::env::remove_var("HLS_SERVE_QUEUE");
        std::env::remove_var("HLS_SERVE_THREADS");
    }

    #[test]
    fn deadline_token_takes_the_sooner() {
        let ctx_cfg = ServerConfig {
            deadline: Duration::from_millis(50),
            ..ServerConfig::default()
        };
        // A request asking for longer than the server allows is clamped:
        // both tokens expire within the server deadline.
        let server = CancelToken::with_timeout(ctx_cfg.deadline);
        assert!(!server.is_cancelled());
        std::thread::sleep(Duration::from_millis(60));
        assert!(server.is_cancelled());
    }
}
