//! SIGTERM/SIGINT → graceful shutdown via a self-pipe.
//!
//! `std` exposes no signal API, and the hermetic build cannot add a
//! crate for one, so this module carries the crate's only `unsafe`: three
//! libc declarations (`pipe`, `write`, `signal`) that std already links.
//! The classic self-pipe trick keeps the handler async-signal-safe — it
//! only calls `write(2)` on a pre-opened pipe; a watcher thread blocks
//! on the read end and calls [`ServerHandle::shutdown`] when a byte (or
//! pipe closure) arrives.
//!
//! On non-Unix targets installation is a no-op returning `false`;
//! callers fall back to stdin-EOF shutdown (see the `hls-serve` binary).
//!
//! [`ServerHandle::shutdown`]: crate::ServerHandle::shutdown

use crate::ServerHandle;

/// Installs handlers for SIGTERM and SIGINT that gracefully drain the
/// server behind `handle`. Returns `true` when the handlers are in
/// place, `false` when the platform (or pipe creation) does not
/// cooperate.
pub fn drain_on_termination(handle: ServerHandle) -> bool {
    imp::install(Box::new(move || handle.shutdown()))
}

/// [`drain_on_termination`] for any shutdown action — used by the shard
/// front, whose handle type differs from the worker's.
pub fn drain_on_termination_with(shutdown: impl FnOnce() + Send + 'static) -> bool {
    imp::install(Box::new(shutdown))
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::fs::File;
    use std::io::Read;
    use std::os::fd::FromRawFd;
    use std::sync::atomic::{AtomicI32, Ordering};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn pipe(fds: *mut i32) -> i32;
        fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Write end of the self-pipe; -1 until installed.
    static WRITE_FD: AtomicI32 = AtomicI32::new(-1);

    /// The signal handler: async-signal-safe by construction — one
    /// `write(2)` on the pre-opened pipe, nothing else.
    extern "C" fn on_signal(_signum: i32) {
        let fd = WRITE_FD.load(Ordering::SeqCst);
        if fd >= 0 {
            let byte = [1u8];
            unsafe {
                write(fd, byte.as_ptr().cast(), 1);
            }
        }
    }

    pub fn install(shutdown: Box<dyn FnOnce() + Send>) -> bool {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a valid out-pointer for two descriptors.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return false;
        }
        WRITE_FD.store(fds[1], Ordering::SeqCst);
        // SAFETY: `on_signal` is an `extern "C" fn(i32)`, the shape
        // `signal(2)` expects; it touches only async-signal-safe state.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
        // SAFETY: fds[0] is a freshly created pipe read end owned by no
        // other File.
        let mut read_end = unsafe { File::from_raw_fd(fds[0]) };
        std::thread::Builder::new()
            .name("hls-serve-signal".into())
            .spawn(move || {
                let mut byte = [0u8; 1];
                // Blocks until the handler writes (or the pipe breaks).
                let _ = read_end.read(&mut byte);
                shutdown();
            })
            .is_ok()
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install(_shutdown: Box<dyn FnOnce() + Send>) -> bool {
        false
    }
}
