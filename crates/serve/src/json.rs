//! A minimal, dependency-free JSON encoder/decoder.
//!
//! The hermetic build cannot pull serde, and the service API only needs
//! a small, predictable subset of JSON: objects, arrays, strings,
//! numbers, booleans, and null. Two properties matter more than
//! generality here:
//!
//! * **Deterministic rendering** — objects preserve insertion order and
//!   numbers render through one canonical path, so the same response
//!   value always serializes to the same bytes (the response cache and
//!   the load generator's byte-identity check both rely on this).
//! * **Bounded inputs** — the parser enforces a nesting-depth limit so a
//!   hostile request body cannot blow the worker's stack.

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact, deterministic rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Canonical number rendering: integers without a fraction, everything
/// else through Rust's shortest-round-trip float formatting.
fn write_num(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the least-wrong rendering.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{', "expected {")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected :")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: read the low half if the
                            // high half announces one.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so any
                    // multibyte sequence is valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let src = r#"{"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2.5));
    }

    #[test]
    fn deterministic_rendering_preserves_member_order() {
        let v = Json::Obj(vec![
            ("z".into(), Json::Num(1.0)),
            ("a".into(), Json::Num(2.0)),
        ]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(10.0).render(), "10");
        assert_eq!(Json::Num(10.25).render(), "10.25");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }

    #[test]
    fn rejects_garbage_and_trailing_input() {
        assert!(parse("{]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert_eq!(err.msg, "nesting too deep");
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
        let pair = parse(r#""😀""#).unwrap();
        assert_eq!(pair.as_str(), Some("😀"));
    }

    #[test]
    fn escaped_control_chars_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
    }
}
