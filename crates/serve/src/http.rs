//! A minimal HTTP/1.1 request reader and response writer.
//!
//! Just enough of RFC 9112 for the service API: one request per
//! connection (every response carries `Connection: close`), requests are
//! a start line + headers + optional `Content-Length` body, and both the
//! header block and the body are size-capped so a hostile client cannot
//! balloon a worker. Chunked transfer encoding is deliberately not
//! supported — the API's request bodies are small JSON documents with a
//! known length.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (start line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path only; any `?query` is kept verbatim).
    pub path: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a full request.
    Closed,
    /// Malformed request head.
    Malformed(&'static str),
    /// The head or body exceeded its size cap.
    TooLarge,
    /// Socket-level failure (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::Malformed(why) => write!(f, "malformed request: {why}"),
            ReadError::TooLarge => write!(f, "request too large"),
            ReadError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

/// Index one past the blank line terminating the head, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Reads one full request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    // Read chunks until the blank line ending the head shows up; any
    // bytes past it already belong to the body.
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD {
            return Err(ReadError::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(ReadError::Closed)
                } else {
                    Err(ReadError::Malformed("eof inside head"))
                }
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(ReadError::Io(e)),
        }
    };
    let leftover = buf.split_off(head_len);
    let head = buf;
    let head_text = std::str::from_utf8(&head).map_err(|_| ReadError::Malformed("non-utf8"))?;
    let mut lines = head_text.split("\r\n").flat_map(|l| l.split('\n'));
    let start = lines.next().ok_or(ReadError::Malformed("empty head"))?;
    let mut parts = start.split_whitespace();
    let method = parts
        .next()
        .ok_or(ReadError::Malformed("missing method"))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or(ReadError::Malformed("missing path"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(ReadError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed("unsupported version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::Malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(ReadError::TooLarge);
    }
    let mut body = leftover;
    if body.len() > content_length {
        return Err(ReadError::Malformed("body longer than content-length"));
    }
    let already = body.len();
    body.resize(content_length, 0);
    stream
        .read_exact(&mut body[already..])
        .map_err(ReadError::Io)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// An HTTP response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the defaults.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a JSON body.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into(),
        }
    }

    /// A response with a plain-text body.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.into(), value));
        self
    }

    /// Serializes and writes the response; always closes the exchange
    /// with `Connection: close`.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason);
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Standard reason phrases for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips a raw byte request through a real socket pair.
    fn roundtrip(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = read_request(&mut server_side);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            roundtrip(b"POST /synthesize HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/synthesize");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_bad_start_line() {
        assert!(matches!(
            roundtrip(b"NONSENSE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_content_length() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            roundtrip(raw.as_bytes()),
            Err(ReadError::TooLarge)
        ));
    }

    #[test]
    fn response_renders_with_length_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            Response::json(200, r#"{"ok":true}"#.as_bytes().to_vec())
                .write_to(&mut s)
                .unwrap();
        });
        let mut c = TcpStream::connect(addr).unwrap();
        let mut out = String::new();
        c.read_to_string(&mut out).unwrap();
        t.join().unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.contains("Content-Length: 11\r\n"));
        assert!(out.contains("Connection: close\r\n"));
        assert!(out.ends_with(r#"{"ok":true}"#));
    }
}
