//! A minimal HTTP/1.1 request reader and response writer.
//!
//! Just enough of RFC 9112 for the service API: one request per
//! connection (every response carries `Connection: close`), requests are
//! a start line + headers + optional `Content-Length` body, and both the
//! header block and the body are size-capped so a hostile client cannot
//! balloon a worker. Chunked transfer encoding is deliberately not
//! supported — the API's request bodies are small JSON documents with a
//! known length.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (start line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path only; any `?query` is kept verbatim).
    pub path: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a full request.
    Closed,
    /// Malformed request head.
    Malformed(&'static str),
    /// The head or body exceeded its size cap.
    TooLarge,
    /// Socket-level failure (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::Malformed(why) => write!(f, "malformed request: {why}"),
            ReadError::TooLarge => write!(f, "request too large"),
            ReadError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

/// Index one past the blank line terminating the head, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Reads one full request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    // Read chunks until the blank line ending the head shows up; any
    // bytes past it already belong to the body.
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD {
            return Err(ReadError::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(ReadError::Closed)
                } else {
                    Err(ReadError::Malformed("eof inside head"))
                }
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(ReadError::Io(e)),
        }
    };
    let leftover = buf.split_off(head_len);
    let head = buf;
    let head_text = std::str::from_utf8(&head).map_err(|_| ReadError::Malformed("non-utf8"))?;
    let mut lines = head_text.split("\r\n").flat_map(|l| l.split('\n'));
    let start = lines.next().ok_or(ReadError::Malformed("empty head"))?;
    let mut parts = start.split_whitespace();
    let method = parts
        .next()
        .ok_or(ReadError::Malformed("missing method"))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or(ReadError::Malformed("missing path"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(ReadError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed("unsupported version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::Malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(ReadError::TooLarge);
    }
    let mut body = leftover;
    if body.len() > content_length {
        return Err(ReadError::Malformed("body longer than content-length"));
    }
    let already = body.len();
    body.resize(content_length, 0);
    stream
        .read_exact(&mut body[already..])
        .map_err(ReadError::Io)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// An HTTP response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the defaults.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a JSON body.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into(),
        }
    }

    /// A response with a plain-text body.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.into(), value));
        self
    }

    /// Serializes and writes the response; always closes the exchange
    /// with `Connection: close`.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason);
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Writes the head of a chunked streaming response (the NDJSON batch
/// stream). The caller then emits bodies with [`write_chunk`] and
/// terminates the stream with [`finish_chunked`]; the connection still
/// closes after the exchange (`Connection: close`).
pub fn start_chunked(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(String, String)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n",
        status,
        reason_phrase(status),
        content_type
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes one chunk of a chunked response and flushes it, so each NDJSON
/// line reaches the client as soon as its grid point completes. Empty
/// chunks are skipped (an empty chunk would terminate the stream).
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response with the zero-length chunk.
pub fn finish_chunked(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Decodes a complete chunked transfer coding into the body bytes.
///
/// # Errors
///
/// Fails on malformed chunk framing (bad size line, missing CRLF,
/// truncated data).
pub fn decode_chunked(raw: &[u8]) -> io::Result<Vec<u8>> {
    let bad = |why: &str| io::Error::new(io::ErrorKind::InvalidData, format!("chunked: {why}"));
    let mut out = Vec::new();
    let mut rest = raw;
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| bad("missing size line"))?;
        let size_text = std::str::from_utf8(&rest[..line_end]).map_err(|_| bad("non-utf8 size"))?;
        let size = usize::from_str_radix(size_text.trim().split(';').next().unwrap_or(""), 16)
            .map_err(|_| bad("bad chunk size"))?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if rest.len() < size + 2 {
            return Err(bad("truncated chunk"));
        }
        out.extend_from_slice(&rest[..size]);
        if &rest[size..size + 2] != b"\r\n" {
            return Err(bad("chunk without trailing CRLF"));
        }
        rest = &rest[size + 2..];
    }
}

/// A parsed HTTP response (client side: the front proxying a worker, or
/// the load generator).
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, with any chunked transfer coding already decoded.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed response head: status, headers, and the index one past the
/// terminating blank line.
type ResponseHead = (u16, Vec<(String, String)>, usize);

/// Parses a response head (status line + headers).
fn parse_response_head(raw: &[u8]) -> io::Result<ResponseHead> {
    let bad = |why: &str| io::Error::new(io::ErrorKind::InvalidData, why.to_string());
    let head_len = head_end(raw).ok_or_else(|| bad("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_len]).map_err(|_| bad("non-utf8 response head"))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let status = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let headers = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers, head_len))
}

/// Reads one whole close-delimited response from the stream, decoding
/// chunked bodies.
///
/// # Errors
///
/// Propagates socket errors and malformed heads/chunk framing.
pub fn read_response(stream: &mut TcpStream) -> io::Result<ClientResponse> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let (status, headers, head_len) = parse_response_head(&raw)?;
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        decode_chunked(&raw[head_len..])?
    } else {
        raw[head_len..].to_vec()
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Incrementally reads a chunked NDJSON response line by line, without
/// waiting for the stream to end — this is how the shard front forwards
/// worker batch records to the client as they complete.
pub struct ChunkedLineReader {
    stream: TcpStream,
    /// Raw, not-yet-decoded bytes read off the socket.
    raw: Vec<u8>,
    /// Decoded body bytes not yet split into lines.
    decoded: Vec<u8>,
    /// The terminal chunk has been decoded.
    done: bool,
    /// Response status and headers.
    pub head: (u16, Vec<(String, String)>),
}

impl ChunkedLineReader {
    /// Reads the response head and prepares incremental line decoding.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, a malformed head, or a response that is
    /// not chunked (the caller should fall back to [`read_response`]).
    pub fn start(mut stream: TcpStream) -> io::Result<Self> {
        let mut raw = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        let head_len = loop {
            if let Some(end) = head_end(&raw) {
                break end;
            }
            match stream.read(&mut chunk)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof inside response head",
                    ))
                }
                n => raw.extend_from_slice(&chunk[..n]),
            }
        };
        let (status, headers, _) = parse_response_head(&raw)?;
        let leftover = raw.split_off(head_len);
        Ok(ChunkedLineReader {
            stream,
            raw: leftover,
            decoded: Vec::new(),
            done: false,
            head: (status, headers),
        })
    }

    /// Decodes as many complete chunks as `self.raw` currently holds.
    fn drain_raw(&mut self) -> io::Result<()> {
        let bad = |why: &str| io::Error::new(io::ErrorKind::InvalidData, format!("chunked: {why}"));
        loop {
            let Some(line_end) = self.raw.windows(2).position(|w| w == b"\r\n") else {
                return Ok(()); // size line incomplete
            };
            let size_text = std::str::from_utf8(&self.raw[..line_end])
                .map_err(|_| bad("non-utf8 size"))?
                .trim()
                .split(';')
                .next()
                .unwrap_or("")
                .to_string();
            let size = usize::from_str_radix(&size_text, 16).map_err(|_| bad("bad chunk size"))?;
            if size == 0 {
                self.done = true;
                return Ok(());
            }
            if self.raw.len() < line_end + 2 + size + 2 {
                return Ok(()); // chunk data incomplete
            }
            self.decoded
                .extend_from_slice(&self.raw[line_end + 2..line_end + 2 + size]);
            if &self.raw[line_end + 2 + size..line_end + 2 + size + 2] != b"\r\n" {
                return Err(bad("chunk without trailing CRLF"));
            }
            self.raw.drain(..line_end + 2 + size + 2);
        }
    }

    /// The next complete NDJSON line (without its terminator), or `None`
    /// once the stream has ended.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed chunk framing.
    pub fn next_line(&mut self) -> io::Result<Option<String>> {
        let mut chunk = [0u8; 4096];
        loop {
            self.drain_raw()?;
            if let Some(pos) = self.decoded.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.decoded.drain(..=pos).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(String::from_utf8(line).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "non-utf8 ndjson line")
                })?));
            }
            if self.done {
                // A final unterminated line would be a framing bug on our
                // side; the batch stream terminates every line.
                return Ok(None);
            }
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof inside chunked body",
                    ))
                }
                n => self.raw.extend_from_slice(&chunk[..n]),
            }
        }
    }
}

/// Standard reason phrases for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips a raw byte request through a real socket pair.
    fn roundtrip(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = read_request(&mut server_side);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            roundtrip(b"POST /synthesize HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/synthesize");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_bad_start_line() {
        assert!(matches!(
            roundtrip(b"NONSENSE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_content_length() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            roundtrip(raw.as_bytes()),
            Err(ReadError::TooLarge)
        ));
    }

    #[test]
    fn chunked_roundtrip_through_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            start_chunked(&mut s, 200, "application/x-ndjson", &[]).unwrap();
            write_chunk(&mut s, b"{\"seq\":0}\n").unwrap();
            write_chunk(&mut s, b"").unwrap(); // skipped, not a terminator
            write_chunk(&mut s, b"{\"seq\":1}\n{\"seq\":2}\n").unwrap();
            finish_chunked(&mut s).unwrap();
        });
        let mut c = TcpStream::connect(addr).unwrap();
        let resp = read_response(&mut c).unwrap();
        t.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.header("transfer-encoding").map(str::to_string),
            Some("chunked".into())
        );
        assert_eq!(resp.body, b"{\"seq\":0}\n{\"seq\":1}\n{\"seq\":2}\n");
    }

    #[test]
    fn chunked_line_reader_yields_lines_across_chunk_boundaries() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            start_chunked(&mut s, 200, "application/x-ndjson", &[]).unwrap();
            // One line split across two chunks, then two lines in one.
            write_chunk(&mut s, b"{\"a\"").unwrap();
            std::thread::sleep(std::time::Duration::from_millis(20));
            write_chunk(&mut s, b":1}\n").unwrap();
            write_chunk(&mut s, b"{\"b\":2}\n{\"c\":3}\n").unwrap();
            finish_chunked(&mut s).unwrap();
        });
        let c = TcpStream::connect(addr).unwrap();
        let mut reader = ChunkedLineReader::start(c).unwrap();
        assert_eq!(reader.head.0, 200);
        let mut lines = Vec::new();
        while let Some(line) = reader.next_line().unwrap() {
            lines.push(line);
        }
        t.join().unwrap();
        assert_eq!(lines, vec!["{\"a\":1}", "{\"b\":2}", "{\"c\":3}"]);
    }

    #[test]
    fn decode_chunked_rejects_malformed_framing() {
        assert!(decode_chunked(b"zz\r\nhello\r\n0\r\n\r\n").is_err());
        assert!(decode_chunked(b"5\r\nhel").is_err(), "truncated data");
        assert!(decode_chunked(b"5\r\nhelloXX0\r\n\r\n").is_err(), "no CRLF");
        assert_eq!(
            decode_chunked(b"3\r\nabc\r\n2\r\nde\r\n0\r\n\r\n").unwrap(),
            b"abcde"
        );
    }

    #[test]
    fn response_renders_with_length_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            Response::json(200, r#"{"ok":true}"#.as_bytes().to_vec())
                .write_to(&mut s)
                .unwrap();
        });
        let mut c = TcpStream::connect(addr).unwrap();
        let mut out = String::new();
        c.read_to_string(&mut out).unwrap();
        t.join().unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.contains("Content-Length: 11\r\n"));
        assert!(out.contains("Connection: close\r\n"));
        assert!(out.ends_with(r#"{"ok":true}"#));
    }
}
