//! The service metrics registry and its Prometheus text rendering.
//!
//! Counters are plain atomics; the per-(endpoint, status) request counts
//! live behind one mutex because the label set is open-ended. Latency is
//! a fixed-bucket cumulative histogram per endpoint (the Prometheus
//! `le`-labelled form), so `GET /metrics` renders without touching any
//! per-request state.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Histogram bucket upper bounds, in seconds.
const BUCKETS: [f64; 11] = [
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// Latency histogram for one endpoint: cumulative counts per bucket plus
/// a +Inf bucket, a sum, and a count.
#[derive(Debug, Default)]
struct Histogram {
    /// One counter per entry of [`BUCKETS`], plus the +Inf bucket last.
    buckets: [AtomicU64; BUCKETS.len() + 1],
    /// Total observed time in nanoseconds.
    sum_nanos: AtomicU64,
}

impl Histogram {
    fn observe(&self, d: Duration) {
        let secs = d.as_secs_f64();
        let idx = BUCKETS
            .iter()
            .position(|&le| secs <= le)
            .unwrap_or(BUCKETS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }
}

/// How one batch grid point resolved, for the
/// `hls_serve_batch_points_total` counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOutcome {
    /// Served from the exploration memo cache.
    Hit,
    /// Synthesized fresh.
    Miss,
    /// Failed (or was cancelled) and streamed as an error record.
    Error,
}

/// The server-wide metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests finished, by (endpoint, status).
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    /// Latency histograms for the synthesis endpoints.
    synthesize_latency: Histogram,
    explore_latency: Histogram,
    batch_latency: Histogram,
    /// Requests arriving on legacy unversioned routes, by endpoint.
    deprecated: Mutex<BTreeMap<String, u64>>,
    /// Requests routed to each shard worker (front process only).
    shard_requests: Mutex<BTreeMap<String, u64>>,
    /// Batch grid points streamed, by outcome (`hit`/`miss`/`error`).
    batch_points_hit: AtomicU64,
    batch_points_miss: AtomicU64,
    batch_points_error: AtomicU64,
    /// Batches cancelled before the summary line (disconnect/deadline).
    batch_cancelled: AtomicU64,
    /// Exploration grid points skipped by the estimator's dominance
    /// pre-pass (never synthesized).
    points_pruned: AtomicU64,
    /// Response-cache outcomes.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Requests shed with 503 at the accept queue.
    shed: AtomicU64,
    /// Panics caught by the request firewall (answered with 500).
    panics: AtomicU64,
    /// Requests cancelled by their deadline (504).
    deadline_cancelled: AtomicU64,
    /// Current queued + in-flight requests, and its high-water mark.
    queue_depth: AtomicUsize,
    queue_high_water: AtomicUsize,
    /// Cumulative wall-clock time inside each synthesis pipeline stage,
    /// in nanoseconds (schedule, allocate, rtl).
    stage_schedule_nanos: AtomicU64,
    stage_alloc_nanos: AtomicU64,
    stage_rtl_nanos: AtomicU64,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finished request.
    pub fn observe_request(&self, endpoint: &str, status: u16, elapsed: Duration) {
        *self
            .requests
            .lock()
            .expect("metrics lock")
            .entry((endpoint.to_string(), status))
            .or_insert(0) += 1;
        match endpoint {
            "synthesize" => self.synthesize_latency.observe(elapsed),
            "explore" => self.explore_latency.observe(elapsed),
            "batch" => self.batch_latency.observe(elapsed),
            _ => {}
        }
    }

    /// Records a request that arrived on a legacy unversioned route.
    pub fn deprecated_request(&self, endpoint: &str) {
        *self
            .deprecated
            .lock()
            .expect("metrics lock")
            .entry(endpoint.to_string())
            .or_insert(0) += 1;
    }

    /// Records a request the front routed to `worker` (shard index or
    /// address label).
    pub fn shard_request(&self, worker: &str) {
        *self
            .shard_requests
            .lock()
            .expect("metrics lock")
            .entry(worker.to_string())
            .or_insert(0) += 1;
    }

    /// Records one streamed batch point by outcome.
    pub fn batch_point(&self, outcome: BatchOutcome) {
        let c = match outcome {
            BatchOutcome::Hit => &self.batch_points_hit,
            BatchOutcome::Miss => &self.batch_points_miss,
            BatchOutcome::Error => &self.batch_points_error,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batch aborted before its summary line.
    pub fn batch_cancelled(&self) {
        self.batch_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` exploration points skipped by the dominance pre-pass.
    pub fn points_pruned(&self, n: u64) {
        self.points_pruned.fetch_add(n, Ordering::Relaxed);
    }

    /// Pruned-point total so far (used by tests).
    pub fn points_pruned_total(&self) -> u64 {
        self.points_pruned.load(Ordering::Relaxed)
    }

    /// Batch point totals so far as (hit, miss, error) (used by tests).
    pub fn batch_point_totals(&self) -> (u64, u64, u64) {
        (
            self.batch_points_hit.load(Ordering::Relaxed),
            self.batch_points_miss.load(Ordering::Relaxed),
            self.batch_points_error.load(Ordering::Relaxed),
        )
    }

    /// Records a response-cache hit.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a response-cache miss.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a load-shed (503) decision.
    pub fn shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a deadline cancellation (504).
    pub fn deadline_cancelled(&self) {
        self.deadline_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a panic caught by the request firewall.
    pub fn panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates the per-stage pipeline timings of one synthesis run.
    pub fn observe_stages(&self, stages: hls_core::StageNanos) {
        self.stage_schedule_nanos
            .fetch_add(stages.schedule, Ordering::Relaxed);
        self.stage_alloc_nanos
            .fetch_add(stages.allocate, Ordering::Relaxed);
        self.stage_rtl_nanos
            .fetch_add(stages.rtl, Ordering::Relaxed);
    }

    /// Cumulative (schedule, alloc, rtl) stage time in seconds.
    pub fn stage_seconds(&self) -> (f64, f64, f64) {
        (
            self.stage_schedule_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            self.stage_alloc_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            self.stage_rtl_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        )
    }

    /// Number of caught panics so far (used by tests).
    pub fn panics_total(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Tracks the accept-queue depth after a request entered the queue,
    /// updating the high-water mark.
    pub fn queue_entered(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Tracks the accept-queue depth after a request left the queue.
    pub fn queue_left(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Number of 503-shed requests so far (used by tests).
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Cache (hits, misses) so far.
    pub fn cache_totals(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// The queue-depth high-water mark so far.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water.load(Ordering::Relaxed)
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP hls_requests_total Finished requests by endpoint and status.\n");
        out.push_str("# TYPE hls_requests_total counter\n");
        for ((endpoint, status), count) in self.requests.lock().expect("metrics lock").iter() {
            let _ = writeln!(
                out,
                "hls_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}"
            );
        }
        out.push_str(
            "# HELP hls_request_duration_seconds Request latency by endpoint.\n\
             # TYPE hls_request_duration_seconds histogram\n",
        );
        for (endpoint, hist) in [
            ("synthesize", &self.synthesize_latency),
            ("explore", &self.explore_latency),
            ("batch", &self.batch_latency),
        ] {
            let mut cumulative = 0u64;
            for (i, le) in BUCKETS.iter().enumerate() {
                cumulative += hist.buckets[i].load(Ordering::Relaxed);
                let _ = writeln!(
                    out,
                    "hls_request_duration_seconds_bucket{{endpoint=\"{endpoint}\",le=\"{le}\"}} {cumulative}"
                );
            }
            cumulative += hist.buckets[BUCKETS.len()].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "hls_request_duration_seconds_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}} {cumulative}"
            );
            let sum = hist.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9;
            let _ = writeln!(
                out,
                "hls_request_duration_seconds_sum{{endpoint=\"{endpoint}\"}} {sum}"
            );
            let _ = writeln!(
                out,
                "hls_request_duration_seconds_count{{endpoint=\"{endpoint}\"}} {cumulative}"
            );
        }
        let (hits, misses) = self.cache_totals();
        let _ = writeln!(
            out,
            "# HELP hls_response_cache_total Response cache lookups by outcome.\n\
             # TYPE hls_response_cache_total counter\n\
             hls_response_cache_total{{outcome=\"hit\"}} {hits}\n\
             hls_response_cache_total{{outcome=\"miss\"}} {misses}"
        );
        let _ = writeln!(
            out,
            "# HELP hls_requests_shed_total Requests rejected with 503 at the accept queue.\n\
             # TYPE hls_requests_shed_total counter\n\
             hls_requests_shed_total {}",
            self.shed_total()
        );
        let _ = writeln!(
            out,
            "# HELP hls_serve_panics_total Panics caught by the request firewall.\n\
             # TYPE hls_serve_panics_total counter\n\
             hls_serve_panics_total {}",
            self.panics_total()
        );
        let _ = writeln!(
            out,
            "# HELP hls_requests_deadline_cancelled_total Requests cancelled by their deadline.\n\
             # TYPE hls_requests_deadline_cancelled_total counter\n\
             hls_requests_deadline_cancelled_total {}",
            self.deadline_cancelled.load(Ordering::Relaxed)
        );
        let (sched_s, alloc_s, rtl_s) = self.stage_seconds();
        let _ = writeln!(
            out,
            "# HELP hls_serve_stage_seconds_total Wall-clock time inside each synthesis pipeline stage.\n\
             # TYPE hls_serve_stage_seconds_total counter\n\
             hls_serve_stage_seconds_total{{stage=\"schedule\"}} {sched_s}\n\
             hls_serve_stage_seconds_total{{stage=\"alloc\"}} {alloc_s}\n\
             hls_serve_stage_seconds_total{{stage=\"rtl\"}} {rtl_s}"
        );
        {
            let deprecated = self.deprecated.lock().expect("metrics lock");
            out.push_str(
                "# HELP hls_serve_deprecated_requests_total Requests on legacy unversioned routes.\n\
                 # TYPE hls_serve_deprecated_requests_total counter\n",
            );
            for (endpoint, count) in deprecated.iter() {
                let _ = writeln!(
                    out,
                    "hls_serve_deprecated_requests_total{{endpoint=\"{endpoint}\"}} {count}"
                );
            }
        }
        {
            let shard = self.shard_requests.lock().expect("metrics lock");
            if !shard.is_empty() {
                out.push_str(
                    "# HELP hls_serve_shard_requests_total Requests routed to each shard worker.\n\
                     # TYPE hls_serve_shard_requests_total counter\n",
                );
                for (worker, count) in shard.iter() {
                    let _ = writeln!(
                        out,
                        "hls_serve_shard_requests_total{{worker=\"{worker}\"}} {count}"
                    );
                }
            }
        }
        let (bhit, bmiss, berr) = self.batch_point_totals();
        let _ = writeln!(
            out,
            "# HELP hls_serve_batch_points_total Batch grid points streamed, by outcome.\n\
             # TYPE hls_serve_batch_points_total counter\n\
             hls_serve_batch_points_total{{outcome=\"hit\"}} {bhit}\n\
             hls_serve_batch_points_total{{outcome=\"miss\"}} {bmiss}\n\
             hls_serve_batch_points_total{{outcome=\"error\"}} {berr}"
        );
        let _ = writeln!(
            out,
            "# HELP hls_serve_batch_cancelled_total Batches aborted before their summary line.\n\
             # TYPE hls_serve_batch_cancelled_total counter\n\
             hls_serve_batch_cancelled_total {}",
            self.batch_cancelled.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP hls_serve_points_pruned_total Exploration points skipped by the estimator's dominance pre-pass.\n\
             # TYPE hls_serve_points_pruned_total counter\n\
             hls_serve_points_pruned_total {}",
            self.points_pruned_total()
        );
        let _ = writeln!(
            out,
            "# HELP hls_queue_depth Queued plus in-flight requests.\n\
             # TYPE hls_queue_depth gauge\n\
             hls_queue_depth {}",
            self.queue_depth.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP hls_queue_depth_high_water Highest queue depth observed.\n\
             # TYPE hls_queue_depth_high_water gauge\n\
             hls_queue_depth_high_water {}",
            self.queue_high_water()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_histogram_render() {
        let m = Metrics::new();
        m.observe_request("synthesize", 200, Duration::from_millis(3));
        m.observe_request("synthesize", 200, Duration::from_millis(40));
        m.observe_request("explore", 422, Duration::from_millis(1));
        let text = m.render();
        assert!(text.contains(r#"hls_requests_total{endpoint="synthesize",status="200"} 2"#));
        assert!(text.contains(r#"hls_requests_total{endpoint="explore",status="422"} 1"#));
        // 3ms lands in le=0.005; cumulative buckets keep growing.
        assert!(text.contains(
            r#"hls_request_duration_seconds_bucket{endpoint="synthesize",le="0.005"} 1"#
        ));
        assert!(text
            .contains(r#"hls_request_duration_seconds_bucket{endpoint="synthesize",le="+Inf"} 2"#));
        assert!(text.contains(r#"hls_request_duration_seconds_count{endpoint="synthesize"} 2"#));
    }

    #[test]
    fn queue_high_water_is_monotone() {
        let m = Metrics::new();
        m.queue_entered(3);
        m.queue_entered(7);
        m.queue_left(1);
        m.queue_entered(2);
        assert_eq!(m.queue_high_water(), 7);
        let text = m.render();
        assert!(text.contains("hls_queue_depth 2"));
        assert!(text.contains("hls_queue_depth_high_water 7"));
    }

    #[test]
    fn cache_and_shed_counters() {
        let m = Metrics::new();
        m.cache_hit();
        m.cache_hit();
        m.cache_miss();
        m.shed();
        m.deadline_cancelled();
        m.panic();
        let text = m.render();
        assert!(text.contains(r#"hls_response_cache_total{outcome="hit"} 2"#));
        assert!(text.contains(r#"hls_response_cache_total{outcome="miss"} 1"#));
        assert!(text.contains("hls_requests_shed_total 1"));
        assert!(text.contains("hls_requests_deadline_cancelled_total 1"));
        assert!(text.contains("hls_serve_panics_total 1"));
        assert_eq!(m.panics_total(), 1);
    }

    #[test]
    fn stage_counters_accumulate_and_render() {
        let m = Metrics::new();
        m.observe_stages(hls_core::StageNanos {
            schedule: 2_000_000_000,
            allocate: 500_000_000,
            rtl: 250_000_000,
        });
        m.observe_stages(hls_core::StageNanos {
            schedule: 1_000_000_000,
            allocate: 0,
            rtl: 250_000_000,
        });
        let (s, a, r) = m.stage_seconds();
        assert_eq!((s, a, r), (3.0, 0.5, 0.5));
        let text = m.render();
        assert!(text.contains(r#"hls_serve_stage_seconds_total{stage="schedule"} 3"#));
        assert!(text.contains(r#"hls_serve_stage_seconds_total{stage="alloc"} 0.5"#));
        assert!(text.contains(r#"hls_serve_stage_seconds_total{stage="rtl"} 0.5"#));
    }

    #[test]
    fn deprecated_shard_and_batch_counters_render() {
        let m = Metrics::new();
        m.deprecated_request("synthesize");
        m.deprecated_request("synthesize");
        m.deprecated_request("metrics");
        m.shard_request("0");
        m.shard_request("1");
        m.shard_request("1");
        m.batch_point(BatchOutcome::Hit);
        m.batch_point(BatchOutcome::Miss);
        m.batch_point(BatchOutcome::Miss);
        m.batch_point(BatchOutcome::Error);
        m.batch_cancelled();
        m.points_pruned(3);
        m.points_pruned(2);
        m.observe_request("batch", 200, Duration::from_millis(3));
        let text = m.render();
        assert!(text.contains(r#"hls_serve_deprecated_requests_total{endpoint="synthesize"} 2"#));
        assert!(text.contains(r#"hls_serve_deprecated_requests_total{endpoint="metrics"} 1"#));
        assert!(text.contains(r#"hls_serve_shard_requests_total{worker="0"} 1"#));
        assert!(text.contains(r#"hls_serve_shard_requests_total{worker="1"} 2"#));
        assert!(text.contains(r#"hls_serve_batch_points_total{outcome="hit"} 1"#));
        assert!(text.contains(r#"hls_serve_batch_points_total{outcome="miss"} 2"#));
        assert!(text.contains(r#"hls_serve_batch_points_total{outcome="error"} 1"#));
        assert!(text.contains("hls_serve_batch_cancelled_total 1"));
        assert!(text.contains("hls_serve_points_pruned_total 5"));
        assert!(text.contains(r#"hls_request_duration_seconds_count{endpoint="batch"} 1"#));
        assert_eq!(m.batch_point_totals(), (1, 2, 1));
        assert_eq!(m.points_pruned_total(), 5);
    }

    #[test]
    fn shard_section_absent_on_plain_workers() {
        let m = Metrics::new();
        assert!(!m.render().contains("hls_serve_shard_requests_total"));
    }

    #[test]
    fn overflow_bucket_catches_slow_requests() {
        let m = Metrics::new();
        m.observe_request("explore", 200, Duration::from_secs(10));
        let text = m.render();
        assert!(
            text.contains(r#"hls_request_duration_seconds_bucket{endpoint="explore",le="2.5"} 0"#)
        );
        assert!(
            text.contains(r#"hls_request_duration_seconds_bucket{endpoint="explore",le="+Inf"} 1"#)
        );
    }
}
