//! The `hls-loadgen` binary: a concurrent closed-loop client for
//! `hls-serve`.
//!
//! ```text
//! hls-loadgen ADDR [REQUESTS] [CLIENTS] [--mix v1|legacy|mixed] [--batch-smoke]
//! ```
//!
//! `CLIENTS` workers each run a closed loop: take the next request index
//! from a shared counter, fire it, wait for the full response, repeat.
//! Requests rotate deterministically through a fixed template mix
//! (synthesize on three workloads × several configurations, plus
//! exploration grids), so every template repeats many times across the
//! run — and because the service contract says responses are pure
//! functions of requests, the tool fingerprints every response body per
//! template and fails loudly when two repeats ever disagree (whether
//! they were served from cache or freshly synthesized).
//!
//! `--mix` selects the traffic shape: `v1` hits only `/v1/*` paths,
//! `legacy` only the deprecated unversioned ones, and `mixed` (the
//! default) alternates — which doubles the template count, since v1 and
//! legacy bodies differ byte-wise (`cache_hit` field) and must be
//! fingerprinted separately.
//!
//! A `503` answer is back-off-and-retry, honoring `Retry-After-Ms`
//! when present (exact milliseconds), the v1 envelope's
//! `retry_after_ms`, or falling back to `Retry-After` seconds. Sheds
//! are reported separately from hard errors. Exit status is nonzero
//! when any hard error or byte mismatch occurred.
//!
//! `--batch-smoke` runs a different check instead of the closed loop:
//! it POSTs one `/v1/batch` sweep twice, verifies the NDJSON stream is
//! well-formed (every seq present exactly once, ascending, summary
//! last) and that the two response bodies are byte-identical.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One request template: an endpoint path and a fixed JSON body.
struct Template {
    path: String,
    body: String,
    label: String,
}

/// Which API surface the templates target.
#[derive(Clone, Copy, PartialEq)]
enum Mix {
    V1,
    Legacy,
    Mixed,
}

fn templates(mix: Mix) -> Vec<Template> {
    let prefixes: &[&str] = match mix {
        Mix::V1 => &["/v1"],
        Mix::Legacy => &[""],
        Mix::Mixed => &["/v1", ""],
    };
    let sqrt = hls_workloads::sources::SQRT;
    let diffeq = hls_workloads::sources::DIFFEQ;
    let gcd = hls_workloads::sources::GCD;
    let mut out = Vec::new();
    for prefix in prefixes {
        let tag = if prefix.is_empty() { "legacy" } else { "v1" };
        for (name, source, fus, algorithm) in [
            ("sqrt/1fu", sqrt, 1, "list/path"),
            ("sqrt/2fu", sqrt, 2, "list/path"),
            ("sqrt/asap", sqrt, 2, "asap"),
            ("diffeq/2fu", diffeq, 2, "list/path"),
            ("diffeq/3fu", diffeq, 3, "list/urgency"),
            ("gcd/2fu", gcd, 2, "list/path"),
        ] {
            out.push(Template {
                path: format!("{prefix}/synthesize"),
                body: format!(
                    r#"{{"source":{source:?},"config":{{"fus":{fus},"algorithm":{algorithm:?}}}}}"#
                ),
                label: format!("synthesize:{name}:{tag}"),
            });
        }
        for (name, source, max_fus) in [("sqrt", sqrt, 3), ("diffeq", diffeq, 2)] {
            let fus: Vec<String> = (1..=max_fus).map(|n| n.to_string()).collect();
            out.push(Template {
                path: format!("{prefix}/explore"),
                body: format!(
                    r#"{{"source":{source:?},"grid":{{"fus":[{}],"algorithms":["asap","list/path"]}}}}"#,
                    fus.join(",")
                ),
                label: format!("explore:{name}:{tag}"),
            });
        }
    }
    out
}

/// A parsed response: status, cache header, backoff hints, body.
struct Reply {
    status: u16,
    cache: Option<String>,
    retry_after_secs: Option<u64>,
    retry_after_ms: Option<u64>,
    body: Vec<u8>,
}

/// The backoff to sleep after a 503, in milliseconds. Prefers the exact
/// `Retry-After-Ms` header (or the v1 envelope's `retry_after_ms`,
/// passed in by the caller), falls back to `Retry-After` seconds, and
/// scales down so a loadgen run doesn't stall: the server's hint is for
/// polite clients, a load generator only needs to desynchronize.
fn backoff_ms(retry_after_ms: Option<u64>, retry_after_secs: Option<u64>) -> u64 {
    let hinted = retry_after_ms
        .or(retry_after_secs.map(|s| s * 1000))
        .unwrap_or(1000);
    // 1/20th of the hint, clamped to [10ms, 2s]: same shape the old
    // seconds-based sleep had (50ms per hinted second).
    (hinted / 20).clamp(10, 2000)
}

/// Pulls `retry_after_ms` out of a v1 error envelope body, if present.
fn envelope_retry_after_ms(body: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(body).ok()?;
    let key = "\"retry_after_ms\":";
    let at = text.find(key)? + key.len();
    let rest = &text[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Fires one request and reads the whole close-delimited response.
fn fire(addr: &str, path: &str, body: &str) -> Result<Reply, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: hls\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("no header terminator")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "non-utf8 head")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty head")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("bad status line")?;
    let mut cache = None;
    let mut retry_after_secs = None;
    let mut retry_after_ms = None;
    let mut chunked = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "x-hls-cache" => cache = Some(value.trim().to_string()),
                "retry-after" => retry_after_secs = value.trim().parse().ok(),
                "retry-after-ms" => retry_after_ms = value.trim().parse().ok(),
                "transfer-encoding" => {
                    chunked = value.trim().eq_ignore_ascii_case("chunked");
                }
                _ => {}
            }
        }
    }
    let mut body = raw[head_end + 4..].to_vec();
    if chunked {
        body = decode_chunked(&body)?;
    }
    Ok(Reply {
        status,
        cache,
        retry_after_secs,
        retry_after_ms,
        body,
    })
}

/// Decodes a complete chunked transfer-coding body.
fn decode_chunked(raw: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let mut at = 0usize;
    loop {
        let line_end = raw[at..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or("chunk size line unterminated")?;
        let size_text = std::str::from_utf8(&raw[at..at + line_end])
            .map_err(|_| "non-utf8 chunk size")?
            .trim();
        let size = usize::from_str_radix(size_text, 16).map_err(|_| "bad chunk size")?;
        at += line_end + 2;
        if size == 0 {
            return Ok(out);
        }
        if at + size + 2 > raw.len() {
            return Err("truncated chunk".into());
        }
        out.extend_from_slice(&raw[at..at + size]);
        at += size + 2;
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut w = hls_testkit::FnvWriter::new();
    w.update(bytes);
    w.finish()
}

/// Shared run statistics.
#[derive(Default)]
struct Stats {
    ok: AtomicU64,
    hard_errors: AtomicU64,
    sheds: AtomicU64,
    cache_hits: AtomicU64,
    mismatches: AtomicU64,
    /// Per-template digest of the first 200 response; later repeats must
    /// match it byte-for-byte.
    digests: Mutex<Vec<Option<u64>>>,
    /// Latencies in nanoseconds (collected per completed request).
    latencies: Mutex<Vec<u64>>,
}

fn percentile(sorted: &[u64], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Duration::from_nanos(sorted[idx])
}

/// `--batch-smoke`: one `/v1/batch` sweep, POSTed twice; checks NDJSON
/// shape and byte-identity of the two streams. Returns process exit
/// status.
fn batch_smoke(addr: &str) -> i32 {
    let source = hls_workloads::sources::SQRT;
    let body = format!(
        r#"{{"source":{source:?},"grid":{{"fus":[1,2,3,4],"algorithms":["asap","list/path"]}}}}"#
    );
    // Warm the worker caches first: the compared runs must both be
    // warm, since `cache_hit` flips between a cold and a warm run.
    if let Err(e) = fire(addr, "/v1/batch", &body) {
        eprintln!("batch-smoke (warmup): {e}");
        return 1;
    }
    let mut first: Option<Vec<u8>> = None;
    for round in 0..2 {
        let reply = match fire(addr, "/v1/batch", &body) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("batch-smoke: {e}");
                return 1;
            }
        };
        if reply.status != 200 {
            eprintln!(
                "batch-smoke: HTTP {} ({})",
                reply.status,
                String::from_utf8_lossy(&reply.body)
            );
            return 1;
        }
        let text = String::from_utf8_lossy(&reply.body).into_owned();
        let lines: Vec<&str> = text.lines().collect();
        let (records, summary) = match lines.split_last() {
            Some((last, init)) if last.contains("\"summary\"") => (init, *last),
            _ => {
                eprintln!("batch-smoke: stream does not end with a summary line");
                return 1;
            }
        };
        let mut seqs = Vec::new();
        for line in records {
            let Some(rest) = line.strip_prefix("{\"seq\":") else {
                eprintln!("batch-smoke: bad record line {line:?}");
                return 1;
            };
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            match digits.parse::<u64>() {
                Ok(s) => seqs.push(s),
                Err(_) => {
                    eprintln!("batch-smoke: bad seq in {line:?}");
                    return 1;
                }
            }
        }
        let expect: Vec<u64> = (0..seqs.len() as u64).collect();
        if seqs != expect {
            eprintln!("batch-smoke: seqs {seqs:?} not 0..{}", seqs.len());
            return 1;
        }
        eprintln!(
            "batch-smoke round {round}: {} records in seq order, summary {summary}",
            seqs.len()
        );
        match &first {
            None => first = Some(reply.body),
            Some(prev) if *prev != reply.body => {
                eprintln!("batch-smoke: second stream differs byte-wise from the first");
                return 1;
            }
            Some(_) => eprintln!("batch-smoke: streams byte-identical across runs"),
        }
    }
    0
}

fn main() {
    let mut addr = None;
    let mut positional: Vec<String> = Vec::new();
    let mut mix = Mix::Mixed;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                eprintln!(
                    "usage: hls-loadgen ADDR [REQUESTS] [CLIENTS] [--mix v1|legacy|mixed] [--batch-smoke]"
                );
                std::process::exit(2);
            }
            "--mix" => {
                mix = match args.next().as_deref() {
                    Some("v1") => Mix::V1,
                    Some("legacy") => Mix::Legacy,
                    Some("mixed") => Mix::Mixed,
                    other => {
                        eprintln!("bad --mix {other:?} (want v1|legacy|mixed)");
                        std::process::exit(2);
                    }
                };
            }
            "--batch-smoke" => smoke = true,
            other if addr.is_none() => addr = Some(other.to_string()),
            other => positional.push(other.to_string()),
        }
    }
    let Some(addr) = addr else {
        eprintln!(
            "usage: hls-loadgen ADDR [REQUESTS] [CLIENTS] [--mix v1|legacy|mixed] [--batch-smoke]"
        );
        std::process::exit(2);
    };
    if smoke {
        std::process::exit(batch_smoke(&addr));
    }
    let total: usize = positional
        .first()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let clients: usize = positional.get(1).and_then(|v| v.parse().ok()).unwrap_or(8);

    let templates = Arc::new(templates(mix));
    let stats = Arc::new(Stats {
        digests: Mutex::new(vec![None; templates.len()]),
        ..Stats::default()
    });
    let next = Arc::new(AtomicUsize::new(0));

    eprintln!(
        "hls-loadgen: {total} requests, {clients} clients, {} templates, target {addr}",
        templates.len()
    );
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let templates = Arc::clone(&templates);
            let stats = Arc::clone(&stats);
            let next = Arc::clone(&next);
            let addr = addr.clone();
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= total {
                    return;
                }
                let t = &templates[i % templates.len()];
                let req_started = Instant::now();
                let mut attempts = 0;
                let reply = loop {
                    match fire(&addr, &t.path, &t.body) {
                        Ok(r) if r.status == 503 && attempts < 10 => {
                            attempts += 1;
                            stats.sheds.fetch_add(1, Ordering::Relaxed);
                            let ms = backoff_ms(
                                r.retry_after_ms.or(envelope_retry_after_ms(&r.body)),
                                r.retry_after_secs,
                            );
                            std::thread::sleep(Duration::from_millis(ms));
                        }
                        other => break other,
                    }
                };
                match reply {
                    Ok(r) if r.status == 200 => {
                        stats.ok.fetch_add(1, Ordering::Relaxed);
                        let hit = r.cache.as_deref() == Some("hit");
                        if hit {
                            stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        }
                        // v1 bodies carry the hit flag inline too; a
                        // disagreement with the header is a bug.
                        if t.path.starts_with("/v1/") {
                            let text = String::from_utf8_lossy(&r.body);
                            let flagged = text.contains("\"cache_hit\":true");
                            if flagged != hit {
                                stats.mismatches.fetch_add(1, Ordering::Relaxed);
                                eprintln!(
                                    "CACHE FLAG MISMATCH on {}: header {hit}, body {flagged}",
                                    t.label
                                );
                            }
                        }
                        // The cache_hit field flips between first hit and
                        // later repeats; mask it out of the digest so the
                        // identity check sees only the payload.
                        let canon = String::from_utf8_lossy(&r.body)
                            .replace("\"cache_hit\":true", "\"cache_hit\":_")
                            .replace("\"cache_hit\":false", "\"cache_hit\":_");
                        let digest = fnv(canon.as_bytes());
                        let mut digests = stats.digests.lock().unwrap();
                        match digests[i % templates.len()] {
                            None => digests[i % templates.len()] = Some(digest),
                            Some(expect) if expect != digest => {
                                drop(digests);
                                stats.mismatches.fetch_add(1, Ordering::Relaxed);
                                eprintln!("BYTE MISMATCH on template {}", t.label);
                            }
                            Some(_) => {}
                        }
                        stats
                            .latencies
                            .lock()
                            .unwrap()
                            .push(req_started.elapsed().as_nanos() as u64);
                    }
                    Ok(r) => {
                        stats.hard_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "ERROR: {} -> HTTP {} ({})",
                            t.label,
                            r.status,
                            String::from_utf8_lossy(&r.body)
                        );
                    }
                    Err(e) => {
                        stats.hard_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("ERROR: {} -> {e}", t.label);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let elapsed = started.elapsed();

    let ok = stats.ok.load(Ordering::Relaxed);
    let errors = stats.hard_errors.load(Ordering::Relaxed);
    let sheds = stats.sheds.load(Ordering::Relaxed);
    let hits = stats.cache_hits.load(Ordering::Relaxed);
    let mismatches = stats.mismatches.load(Ordering::Relaxed);
    let mut lat = stats.latencies.lock().unwrap().clone();
    lat.sort_unstable();
    println!("requests    {ok} ok, {errors} errors, {sheds} 503-retries, {hits} cache hits");
    println!(
        "throughput  {:.0} req/s ({} in {:.2?})",
        ok as f64 / elapsed.as_secs_f64(),
        ok,
        elapsed
    );
    println!(
        "latency     p50 {:?}  p95 {:?}  p99 {:?}  max {:?}",
        percentile(&lat, 0.50),
        percentile(&lat, 0.95),
        percentile(&lat, 0.99),
        percentile(&lat, 1.0),
    );
    println!(
        "byte-identity  {} templates, {mismatches} mismatches",
        templates.len()
    );
    if errors > 0 || mismatches > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_prefers_exact_ms_over_seconds() {
        // Retry-After-Ms wins; Retry-After seconds is the fallback.
        assert_eq!(backoff_ms(Some(1000), Some(7)), 50);
        assert_eq!(backoff_ms(None, Some(1)), 50);
        // The old bug: treating seconds as milliseconds would give a
        // 1000× shorter sleep. Seconds scale through ×1000 first.
        assert_eq!(backoff_ms(None, Some(2)), 100);
        assert_eq!(backoff_ms(Some(2), None), 10); // clamped floor
        assert_eq!(backoff_ms(Some(600_000), None), 2000); // clamped ceiling
        assert_eq!(backoff_ms(None, None), 50); // default 1s hint
    }

    #[test]
    fn envelope_retry_after_ms_parses_v1_errors() {
        let body = br#"{"error":{"code":"overloaded","message":"x","retry_after_ms":1500}}"#;
        assert_eq!(envelope_retry_after_ms(body), Some(1500));
        assert_eq!(envelope_retry_after_ms(b"{}"), None);
    }

    #[test]
    fn chunked_decoder_reassembles_bodies() {
        let raw = b"4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n";
        assert_eq!(decode_chunked(raw).unwrap(), b"wikipedia");
        assert!(decode_chunked(b"zz\r\n").is_err());
    }

    #[test]
    fn traffic_mixes_shape_the_template_set() {
        let v1 = templates(Mix::V1);
        let legacy = templates(Mix::Legacy);
        let mixed = templates(Mix::Mixed);
        assert!(v1.iter().all(|t| t.path.starts_with("/v1/")));
        assert!(legacy.iter().all(|t| !t.path.starts_with("/v1/")));
        assert_eq!(mixed.len(), v1.len() + legacy.len());
    }
}
