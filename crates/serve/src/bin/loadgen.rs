//! The `hls-loadgen` binary: a concurrent closed-loop client for
//! `hls-serve`.
//!
//! ```text
//! hls-loadgen ADDR [REQUESTS] [CLIENTS]
//! ```
//!
//! `CLIENTS` workers each run a closed loop: take the next request index
//! from a shared counter, fire it, wait for the full response, repeat.
//! Requests rotate deterministically through a fixed template mix
//! (synthesize on three workloads × several configurations, plus
//! exploration grids), so every template repeats many times across the
//! run — and because the service contract says responses are pure
//! functions of requests, the tool fingerprints every response body per
//! template and fails loudly when two repeats ever disagree (whether
//! they were served from cache or freshly synthesized).
//!
//! A `503` answer is back-off-and-retry (honoring `Retry-After`), and is
//! reported separately from hard errors. Exit status is nonzero when any
//! hard error or byte mismatch occurred.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One request template: an endpoint path and a fixed JSON body.
struct Template {
    path: &'static str,
    body: String,
    label: String,
}

fn templates() -> Vec<Template> {
    let sqrt = hls_workloads::sources::SQRT;
    let diffeq = hls_workloads::sources::DIFFEQ;
    let gcd = hls_workloads::sources::GCD;
    let mut out = Vec::new();
    for (name, source, fus, algorithm) in [
        ("sqrt/1fu", sqrt, 1, "list/path"),
        ("sqrt/2fu", sqrt, 2, "list/path"),
        ("sqrt/asap", sqrt, 2, "asap"),
        ("diffeq/2fu", diffeq, 2, "list/path"),
        ("diffeq/3fu", diffeq, 3, "list/urgency"),
        ("gcd/2fu", gcd, 2, "list/path"),
    ] {
        out.push(Template {
            path: "/synthesize",
            body: format!(
                r#"{{"source":{source:?},"config":{{"fus":{fus},"algorithm":{algorithm:?}}}}}"#
            ),
            label: format!("synthesize:{name}"),
        });
    }
    for (name, source, max_fus) in [("sqrt", sqrt, 3), ("diffeq", diffeq, 2)] {
        let fus: Vec<String> = (1..=max_fus).map(|n| n.to_string()).collect();
        out.push(Template {
            path: "/explore",
            body: format!(
                r#"{{"source":{source:?},"grid":{{"fus":[{}],"algorithms":["asap","list/path"]}}}}"#,
                fus.join(",")
            ),
            label: format!("explore:{name}"),
        });
    }
    out
}

/// A parsed response: status, cache header, body.
struct Reply {
    status: u16,
    cache: Option<String>,
    retry_after: Option<u64>,
    body: Vec<u8>,
}

/// Fires one request and reads the whole close-delimited response.
fn fire(addr: &str, path: &str, body: &str) -> Result<Reply, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: hls\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("no header terminator")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "non-utf8 head")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty head")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("bad status line")?;
    let mut cache = None;
    let mut retry_after = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "x-hls-cache" => cache = Some(value.trim().to_string()),
                "retry-after" => retry_after = value.trim().parse().ok(),
                _ => {}
            }
        }
    }
    Ok(Reply {
        status,
        cache,
        retry_after,
        body: raw[head_end + 4..].to_vec(),
    })
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut w = hls_testkit::FnvWriter::new();
    w.update(bytes);
    w.finish()
}

/// Shared run statistics.
#[derive(Default)]
struct Stats {
    ok: AtomicU64,
    hard_errors: AtomicU64,
    sheds: AtomicU64,
    cache_hits: AtomicU64,
    mismatches: AtomicU64,
    /// Per-template digest of the first 200 response; later repeats must
    /// match it byte-for-byte.
    digests: Mutex<Vec<Option<u64>>>,
    /// Latencies in nanoseconds (collected per completed request).
    latencies: Mutex<Vec<u64>>,
}

fn percentile(sorted: &[u64], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Duration::from_nanos(sorted[idx])
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = match args.next() {
        Some(a) if a != "-h" && a != "--help" => a,
        _ => {
            eprintln!("usage: hls-loadgen ADDR [REQUESTS] [CLIENTS]");
            std::process::exit(2);
        }
    };
    let total: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(1000);
    let clients: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(8);

    let templates = Arc::new(templates());
    let stats = Arc::new(Stats {
        digests: Mutex::new(vec![None; templates.len()]),
        ..Stats::default()
    });
    let next = Arc::new(AtomicUsize::new(0));

    eprintln!(
        "hls-loadgen: {total} requests, {clients} clients, {} templates, target {addr}",
        templates.len()
    );
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let templates = Arc::clone(&templates);
            let stats = Arc::clone(&stats);
            let next = Arc::clone(&next);
            let addr = addr.clone();
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= total {
                    return;
                }
                let t = &templates[i % templates.len()];
                let req_started = Instant::now();
                let mut attempts = 0;
                let reply = loop {
                    match fire(&addr, t.path, &t.body) {
                        Ok(r) if r.status == 503 && attempts < 10 => {
                            attempts += 1;
                            stats.sheds.fetch_add(1, Ordering::Relaxed);
                            let secs = r.retry_after.unwrap_or(1);
                            std::thread::sleep(Duration::from_millis(50 * secs.max(1)));
                        }
                        other => break other,
                    }
                };
                match reply {
                    Ok(r) if r.status == 200 => {
                        stats.ok.fetch_add(1, Ordering::Relaxed);
                        if r.cache.as_deref() == Some("hit") {
                            stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        }
                        let digest = fnv(&r.body);
                        let mut digests = stats.digests.lock().unwrap();
                        match digests[i % templates.len()] {
                            None => digests[i % templates.len()] = Some(digest),
                            Some(expect) if expect != digest => {
                                drop(digests);
                                stats.mismatches.fetch_add(1, Ordering::Relaxed);
                                eprintln!("BYTE MISMATCH on template {}", t.label);
                            }
                            Some(_) => {}
                        }
                        stats
                            .latencies
                            .lock()
                            .unwrap()
                            .push(req_started.elapsed().as_nanos() as u64);
                    }
                    Ok(r) => {
                        stats.hard_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "ERROR: {} -> HTTP {} ({})",
                            t.label,
                            r.status,
                            String::from_utf8_lossy(&r.body)
                        );
                    }
                    Err(e) => {
                        stats.hard_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("ERROR: {} -> {e}", t.label);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let elapsed = started.elapsed();

    let ok = stats.ok.load(Ordering::Relaxed);
    let errors = stats.hard_errors.load(Ordering::Relaxed);
    let sheds = stats.sheds.load(Ordering::Relaxed);
    let hits = stats.cache_hits.load(Ordering::Relaxed);
    let mismatches = stats.mismatches.load(Ordering::Relaxed);
    let mut lat = stats.latencies.lock().unwrap().clone();
    lat.sort_unstable();
    println!("requests    {ok} ok, {errors} errors, {sheds} 503-retries, {hits} cache hits");
    println!(
        "throughput  {:.0} req/s ({} in {:.2?})",
        ok as f64 / elapsed.as_secs_f64(),
        ok,
        elapsed
    );
    println!(
        "latency     p50 {:?}  p95 {:?}  p99 {:?}  max {:?}",
        percentile(&lat, 0.50),
        percentile(&lat, 0.95),
        percentile(&lat, 0.99),
        percentile(&lat, 1.0),
    );
    println!(
        "byte-identity  {} templates, {mismatches} mismatches",
        templates.len()
    );
    if errors > 0 || mismatches > 0 {
        std::process::exit(1);
    }
}
