//! The `hls-serve` binary: synthesis as a service.
//!
//! ```text
//! hls-serve [ADDR]
//! ```
//!
//! Configuration comes from environment variables (see
//! [`hls_serve::ServerConfig::from_env`]): `HLS_SERVE_ADDR`,
//! `HLS_SERVE_THREADS`, `HLS_SERVE_QUEUE`, `HLS_SERVE_DEADLINE_MS`,
//! `HLS_SERVE_CACHE`. A positional `ADDR` argument overrides
//! `HLS_SERVE_ADDR`.
//!
//! Shutdown paths, all of them draining in-flight requests first:
//! SIGTERM or SIGINT (via the self-pipe in `hls_serve::signal`), or
//! end-of-file on stdin (portable fallback, also handy under a
//! supervisor that closes the child's stdin to stop it).

use std::io::Read;

use hls_serve::{signal, Server, ServerConfig};

fn main() -> std::io::Result<()> {
    let mut config = ServerConfig::from_env();
    if let Some(addr) = std::env::args().nth(1) {
        if addr == "-h" || addr == "--help" {
            eprintln!("usage: hls-serve [ADDR]");
            eprintln!("env: HLS_SERVE_ADDR HLS_SERVE_THREADS HLS_SERVE_QUEUE");
            eprintln!("     HLS_SERVE_DEADLINE_MS HLS_SERVE_CACHE");
            return Ok(());
        }
        config.addr = addr;
    }
    let server = Server::bind(config.clone())?;
    eprintln!(
        "hls-serve listening on {} ({} workers, queue {}, deadline {:?}, cache {})",
        server.local_addr(),
        config.threads,
        config.queue,
        config.deadline,
        config.cache_capacity,
    );

    let handle = server.handle();
    if signal::drain_on_termination(handle.clone()) {
        eprintln!("hls-serve: SIGTERM/SIGINT will drain and exit");
    }
    // Portable fallback: EOF on stdin also drains. Run the watcher on a
    // detached thread so the acceptor owns the main one.
    let stdin_handle = handle.clone();
    std::thread::Builder::new()
        .name("hls-serve-stdin".into())
        .spawn(move || {
            let mut sink = [0u8; 256];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            stdin_handle.shutdown();
        })
        .expect("spawn stdin watcher");

    server.run()?;
    eprintln!("hls-serve: drained, bye");
    Ok(())
}
