//! The `hls-serve` binary: synthesis as a service.
//!
//! ```text
//! hls-serve [ADDR]                          # single-process worker
//! hls-serve --front --workers N [ADDR]      # front + N spawned workers
//! hls-serve --front --worker-addrs A,B [ADDR]  # front over existing workers
//! ```
//!
//! Configuration comes from environment variables (see
//! [`hls_serve::ServerConfig::from_env`]): `HLS_SERVE_ADDR`,
//! `HLS_SERVE_THREADS`, `HLS_SERVE_QUEUE`, `HLS_SERVE_DEADLINE_MS`,
//! `HLS_SERVE_CACHE`, `HLS_SERVE_RETRY_AFTER_MS`. A positional `ADDR`
//! argument overrides `HLS_SERVE_ADDR`.
//!
//! In `--front` mode the process owns the public listener and routes
//! requests over the workers by consistent-hashing the cdfg×config
//! fingerprint (see [`hls_serve::shard`]). `--workers N` spawns N
//! worker children of this same binary on ephemeral ports;
//! `--worker-addrs` points at externally managed workers instead.
//!
//! Shutdown paths, all of them draining in-flight requests first:
//! SIGTERM or SIGINT (via the self-pipe in `hls_serve::signal`), or
//! end-of-file on stdin (portable fallback, also handy under a
//! supervisor that closes the child's stdin to stop it). A front that
//! spawned its own workers drains them the same way on exit.

use std::io::Read;

use hls_serve::shard::{self, Front, FrontConfig};
use hls_serve::{signal, Server, ServerConfig};

fn usage() {
    eprintln!("usage: hls-serve [--front (--workers N | --worker-addrs A,B,...)] [ADDR]");
    eprintln!("env: HLS_SERVE_ADDR HLS_SERVE_THREADS HLS_SERVE_QUEUE");
    eprintln!("     HLS_SERVE_DEADLINE_MS HLS_SERVE_CACHE HLS_SERVE_RETRY_AFTER_MS");
}

struct Args {
    front: bool,
    workers: usize,
    worker_addrs: Vec<String>,
    addr: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        front: false,
        workers: 0,
        worker_addrs: Vec::new(),
        addr: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                usage();
                std::process::exit(0);
            }
            "--front" => args.front = true,
            "--workers" => {
                let n = it.next().ok_or("--workers needs a count")?;
                args.workers = n.parse().map_err(|_| format!("bad worker count {n:?}"))?;
            }
            "--worker-addrs" => {
                let list = it.next().ok_or("--worker-addrs needs a list")?;
                args.worker_addrs = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            other if !other.starts_with('-') && args.addr.is_none() => {
                args.addr = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.front && args.workers == 0 && args.worker_addrs.is_empty() {
        return Err("--front needs --workers N or --worker-addrs".into());
    }
    if !args.front && (args.workers > 0 || !args.worker_addrs.is_empty()) {
        return Err("--workers/--worker-addrs only make sense with --front".into());
    }
    Ok(args)
}

/// Blocks the calling thread until stdin hits EOF, then shuts down.
fn shutdown_on_stdin_eof(shutdown: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .name("hls-serve-stdin".into())
        .spawn(move || {
            let mut sink = [0u8; 256];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            shutdown();
        })
        .expect("spawn stdin watcher");
}

fn run_front(args: Args, config: ServerConfig) -> std::io::Result<()> {
    // Workers inherit the env-derived knobs; spawned ones get their own
    // ephemeral ports via HLS_SERVE_ADDR set by `spawn_worker`.
    let mut spawned = Vec::new();
    let worker_addrs = if args.worker_addrs.is_empty() {
        let exe = std::env::current_exe()?;
        spawned = shard::spawn_workers(&exe, args.workers, &[])?;
        spawned.iter().map(|w| w.addr.clone()).collect()
    } else {
        args.worker_addrs
    };
    let front = Front::bind(FrontConfig::from_server(&config, worker_addrs.clone()))?;
    eprintln!(
        "hls-serve front listening on {} ({} shard workers: {})",
        front.local_addr(),
        worker_addrs.len(),
        worker_addrs.join(", "),
    );
    let handle = front.handle();
    let sig_handle = handle.clone();
    if signal::drain_on_termination_with(move || sig_handle.shutdown()) {
        eprintln!("hls-serve front: SIGTERM/SIGINT will drain and exit");
    }
    shutdown_on_stdin_eof(move || handle.shutdown());
    front.run()?;
    // Dropping the spawned workers closes their stdin → they drain too.
    drop(spawned);
    eprintln!("hls-serve front: drained, bye");
    Ok(())
}

fn run_worker(config: ServerConfig) -> std::io::Result<()> {
    let server = Server::bind(config.clone())?;
    eprintln!(
        "hls-serve listening on {} ({} workers, queue {}, deadline {:?}, cache {})",
        server.local_addr(),
        config.threads,
        config.queue,
        config.deadline,
        config.cache_capacity,
    );
    let handle = server.handle();
    if signal::drain_on_termination(handle.clone()) {
        eprintln!("hls-serve: SIGTERM/SIGINT will drain and exit");
    }
    shutdown_on_stdin_eof(move || handle.shutdown());
    server.run()?;
    eprintln!("hls-serve: drained, bye");
    Ok(())
}

fn main() -> std::io::Result<()> {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("hls-serve: {msg}");
            usage();
            std::process::exit(2);
        }
    };
    let mut config = ServerConfig::from_env();
    if let Some(addr) = &args.addr {
        config.addr = addr.clone();
    }
    if args.front {
        run_front(args, config)
    } else {
        run_worker(config)
    }
}
