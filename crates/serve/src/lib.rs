//! # hls-serve — synthesis as a service
//!
//! The first system layer of the reproduction: an HTTP/1.1 server,
//! built entirely on `std::net`, that puts the whole DAC'88 flow
//! (BSL → CDFG → schedule → allocate → control → RTL) behind a
//! programmatic request interface.
//!
//! | Endpoint               | Meaning                                          |
//! |------------------------|--------------------------------------------------|
//! | `POST /v1/synthesize`  | BSL source + config → design summary (+ Verilog) |
//! | `POST /v1/explore`     | grid sweep over FU count × algorithm × control   |
//! | `POST /v1/batch`       | sweep grid → NDJSON stream, one line per point   |
//! | `GET /v1/healthz`      | liveness probe                                   |
//! | `GET /v1/metrics`      | Prometheus text metrics                          |
//!
//! The unversioned legacy paths (`/synthesize`, …) still answer with
//! their original response shapes, marked with a `Deprecation: true`
//! header. v1 uses snake_case throughout, a single error envelope
//! `{"error":{"code","message","stage"?}}`, and a `cache_hit` body
//! field (see `DESIGN.md` §10 for the v0→v1 field map).
//!
//! For scale-out, the [`shard`] module adds a front process
//! (`hls-serve --front --workers N`) that consistent-hashes requests
//! over single-process workers — routing on the same cdfg×config
//! fingerprints the workers key their caches on, so cache affinity
//! falls out of the routing.
//!
//! The serving model is deliberately boring: a bounded admission count
//! in front of a work-stealing pool (reused from [`hls_core::par`]),
//! load shedding with `503` + `Retry-After` once the bound is hit,
//! per-request deadlines enforced by [`hls_core::CancelToken`] between
//! pipeline stages, and a graceful drain on shutdown. Responses are
//! deterministic functions of requests, so a content-addressed cache
//! (keyed on behavior × configuration fingerprints) serves byte-exact
//! repeats.
//!
//! ```no_run
//! use hls_serve::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServerConfig::default()
//! })?;
//! println!("listening on {}", server.local_addr());
//! let handle = server.handle(); // call handle.shutdown() to drain
//! server.run()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)] // one exception: the SIGTERM self-pipe in `signal`

pub mod api;
pub mod cache;
pub mod http;
pub mod json;
pub mod metrics;
mod server;
pub mod shard;
pub mod signal;

pub use server::{Server, ServerConfig, ServerHandle};
