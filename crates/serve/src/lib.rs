//! # hls-serve — synthesis as a service
//!
//! The first system layer of the reproduction: an HTTP/1.1 server,
//! built entirely on `std::net`, that puts the whole DAC'88 flow
//! (BSL → CDFG → schedule → allocate → control → RTL) behind a
//! programmatic request interface.
//!
//! | Endpoint            | Meaning                                          |
//! |---------------------|--------------------------------------------------|
//! | `POST /synthesize`  | BSL source + config → design summary (+ Verilog) |
//! | `POST /explore`     | grid sweep over FU count × algorithm × control   |
//! | `GET /healthz`      | liveness probe                                   |
//! | `GET /metrics`      | Prometheus text metrics                          |
//!
//! The serving model is deliberately boring: a bounded admission count
//! in front of a work-stealing pool (reused from [`hls_core::par`]),
//! load shedding with `503` + `Retry-After` once the bound is hit,
//! per-request deadlines enforced by [`hls_core::CancelToken`] between
//! pipeline stages, and a graceful drain on shutdown. Responses are
//! deterministic functions of requests, so a content-addressed cache
//! (keyed on behavior × configuration fingerprints) serves byte-exact
//! repeats.
//!
//! ```no_run
//! use hls_serve::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServerConfig::default()
//! })?;
//! println!("listening on {}", server.local_addr());
//! let handle = server.handle(); // call handle.shutdown() to drain
//! server.run()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)] // one exception: the SIGTERM self-pipe in `signal`

pub mod api;
pub mod cache;
pub mod http;
pub mod json;
pub mod metrics;
mod server;
pub mod signal;

pub use server::{Server, ServerConfig, ServerHandle};
