//! Request/response schema of the synthesis service.
//!
//! Both endpoints take a JSON body naming a BSL `source` plus
//! configuration and return a JSON summary of the synthesized design.
//! Everything in a response body is a deterministic function of the
//! request — cache state, timing, and thread interleaving never leak
//! into it — which is what lets the response cache serve byte-identical
//! bodies and the load generator assert on digests.

use hls_cdfg::SystemCdfg;
use hls_core::{
    cdfg_fingerprint, pareto_front, CancelToken, ControlReport, ControlStyle, DeadlockVerdict,
    DesignPoint, Explorer, GridPoint, GridSpec, ProcessSynthesis, PruneStats, PrunedSweep,
    SynthesisError, SynthesisResult, Synthesizer, SystemSynthesisResult,
};
use hls_ctrl::EncodingStyle;
use hls_sched::{Algorithm, Priority};

use crate::json::Json;

/// A semantic request error (maps to HTTP 422).
#[derive(Clone, Debug)]
pub struct ApiError(pub String);

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

fn err(msg: impl Into<String>) -> ApiError {
    ApiError(msg.into())
}

/// Parses an algorithm name (`asap`, `list/path`, `list/urgency`,
/// `list/mobility`, `force`, `force/N`, `hforce`, `hforce/N`,
/// `hforce/N/W`, `freedom`, `freedom/N`, `bb`, `transform`).
pub fn parse_algorithm(name: &str) -> Result<Algorithm, ApiError> {
    let (head, arg) = match name.split_once('/') {
        Some((h, a)) => (h, Some(a)),
        None => (name, None),
    };
    let slack = || -> Result<u32, ApiError> {
        match arg {
            None => Ok(0),
            Some(a) => a
                .parse()
                .map_err(|_| err(format!("invalid slack in algorithm {name:?}"))),
        }
    };
    match (head, arg) {
        ("asap", None) => Ok(Algorithm::Asap),
        ("alap", _) => Ok(Algorithm::Alap { slack: slack()? }),
        ("list", None | Some("path")) => Ok(Algorithm::List(Priority::PathLength)),
        ("list", Some("urgency")) => Ok(Algorithm::List(Priority::Urgency)),
        ("list", Some("mobility")) => Ok(Algorithm::List(Priority::Mobility)),
        ("force", _) => Ok(Algorithm::ForceDirected { slack: slack()? }),
        ("hforce", _) => {
            // `hforce`, `hforce/S`, or `hforce/S/W`.
            let (slack, window) = match arg {
                None => (0, hls_sched::DEFAULT_WINDOW as u32),
                Some(a) => {
                    let (s, w) = match a.split_once('/') {
                        None => (a, None),
                        Some((s, w)) => (s, Some(w)),
                    };
                    let slack = s
                        .parse()
                        .map_err(|_| err(format!("invalid slack in algorithm {name:?}")))?;
                    let window = match w {
                        None => hls_sched::DEFAULT_WINDOW as u32,
                        Some(w) => {
                            w.parse::<u32>().ok().filter(|&w| w > 0).ok_or_else(|| {
                                err(format!("invalid window in algorithm {name:?}"))
                            })?
                        }
                    };
                    (slack, window)
                }
            };
            Ok(Algorithm::HierForce { slack, window })
        }
        ("freedom", _) => Ok(Algorithm::FreedomBased { slack: slack()? }),
        ("bb", None) => Ok(Algorithm::BranchAndBound {
            node_budget: 4_000_000,
        }),
        ("transform", None) => Ok(Algorithm::Transformational),
        _ => Err(err(format!("unknown algorithm {name:?}"))),
    }
}

/// Renders an algorithm in the same notation [`parse_algorithm`] accepts.
pub fn algorithm_str(a: Algorithm) -> String {
    match a {
        Algorithm::Asap => "asap".into(),
        Algorithm::Alap { slack } => format!("alap/{slack}"),
        Algorithm::List(Priority::PathLength) => "list/path".into(),
        Algorithm::List(Priority::Urgency) => "list/urgency".into(),
        Algorithm::List(Priority::Mobility) => "list/mobility".into(),
        Algorithm::ForceDirected { slack } => format!("force/{slack}"),
        Algorithm::HierForce { slack, window } => format!("hforce/{slack}/{window}"),
        Algorithm::FreedomBased { slack } => format!("freedom/{slack}"),
        Algorithm::BranchAndBound { .. } => "bb".into(),
        Algorithm::Transformational => "transform".into(),
    }
}

/// Parses a control style (`hardwired/binary`, `hardwired/onehot`,
/// `hardwired/gray`, `microcode`).
pub fn parse_control(name: &str) -> Result<ControlStyle, ApiError> {
    match name {
        "hardwired" | "hardwired/binary" => Ok(ControlStyle::Hardwired(EncodingStyle::Binary)),
        "hardwired/onehot" => Ok(ControlStyle::Hardwired(EncodingStyle::OneHot)),
        "hardwired/gray" => Ok(ControlStyle::Hardwired(EncodingStyle::Gray)),
        "microcode" => Ok(ControlStyle::Microcode),
        _ => Err(err(format!("unknown control style {name:?}"))),
    }
}

/// Renders a control style in the notation [`parse_control`] accepts.
pub fn control_str(c: ControlStyle) -> String {
    match c {
        ControlStyle::Hardwired(EncodingStyle::Binary) => "hardwired/binary".into(),
        ControlStyle::Hardwired(EncodingStyle::OneHot) => "hardwired/onehot".into(),
        ControlStyle::Hardwired(EncodingStyle::Gray) => "hardwired/gray".into(),
        ControlStyle::Microcode => "microcode".into(),
    }
}

/// A fully parsed `/synthesize` request.
#[derive(Clone, Debug)]
pub struct SynthesizeRequest {
    /// BSL source text.
    pub source: String,
    /// The synthesizer the `config` object resolves to.
    pub synthesizer: Synthesizer,
    /// Include Verilog in the response.
    pub verilog: bool,
    /// Optional per-request deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Test-only artificial delay (honored only when the server enables
    /// it); lets integration tests saturate the queue deterministically.
    pub test_delay_ms: u64,
    /// Test-only injected panic (honored only when the server enables
    /// it); lets integration tests exercise the panic firewall.
    pub test_panic: bool,
}

/// Resolves a `config` JSON object into a [`Synthesizer`], using the
/// borrowed setters so the base stays shared.
fn build_synthesizer(config: Option<&Json>) -> Result<Synthesizer, ApiError> {
    let mut syn = Synthesizer::default();
    let Some(config) = config else {
        return Ok(syn);
    };
    let Json::Obj(members) = config else {
        return Err(err("config must be an object"));
    };
    for (key, value) in members {
        match key.as_str() {
            "fus" => {
                let n = value
                    .as_u64()
                    .filter(|&n| (1..=64).contains(&n))
                    .ok_or_else(|| err("config.fus must be an integer in 1..=64"))?;
                syn.set_universal_fus(n as usize);
            }
            "algorithm" => {
                let name = value
                    .as_str()
                    .ok_or_else(|| err("config.algorithm must be a string"))?;
                syn.set_algorithm(parse_algorithm(name)?);
            }
            "control" => {
                let name = value
                    .as_str()
                    .ok_or_else(|| err("config.control must be a string"))?;
                syn.set_control(parse_control(name)?);
            }
            "optimize" => {
                let b = value
                    .as_bool()
                    .ok_or_else(|| err("config.optimize must be a boolean"))?;
                syn.set_optimize(b);
            }
            "unroll" => {
                let b = value
                    .as_bool()
                    .ok_or_else(|| err("config.unroll must be a boolean"))?;
                syn.set_unrolling(b);
            }
            "if_convert" => {
                let b = value
                    .as_bool()
                    .ok_or_else(|| err("config.if_convert must be a boolean"))?;
                syn.set_if_conversion(b);
            }
            other => return Err(err(format!("unknown config key {other:?}"))),
        }
    }
    Ok(syn)
}

impl SynthesizeRequest {
    /// Parses and validates a request body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let source = body
            .get("source")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing required string field \"source\""))?
            .to_string();
        let synthesizer = build_synthesizer(body.get("config"))?;
        let verilog = match body.get("verilog") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| err("verilog must be a boolean"))?,
        };
        let deadline_ms = match body.get("deadline_ms") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .filter(|&ms| ms > 0)
                    .ok_or_else(|| err("deadline_ms must be a positive integer"))?,
            ),
        };
        let test_delay_ms = match body.get("test_delay_ms") {
            None => 0,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| err("test_delay_ms must be a non-negative integer"))?,
        };
        let test_panic = match body.get("test_panic") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| err("test_panic must be a boolean"))?,
        };
        Ok(SynthesizeRequest {
            source,
            synthesizer,
            verilog,
            deadline_ms,
            test_delay_ms,
            test_panic,
        })
    }
}

/// A fully parsed `/explore` request.
#[derive(Clone, Debug)]
pub struct ExploreRequest {
    /// BSL source text.
    pub source: String,
    /// Base synthesizer the grid perturbs.
    pub synthesizer: Synthesizer,
    /// The sweep grid.
    pub spec: GridSpec,
    /// Run the estimator's dominance pre-pass and skip grid points
    /// provably absent from the Pareto front.
    pub prune: bool,
    /// Optional per-request deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
}

/// Resolves a `grid` JSON object into a validated [`GridSpec`]; omitted
/// axes fall back to the base synthesizer's configuration (or `[1,2,3]`
/// functional units).
fn parse_grid(grid: &Json, base: &Synthesizer) -> Result<GridSpec, ApiError> {
    let fus = match grid.get("fus") {
        None => vec![1, 2, 3],
        Some(v) => v
            .as_arr()
            .ok_or_else(|| err("grid.fus must be an array"))?
            .iter()
            .map(|n| {
                n.as_u64()
                    .filter(|&n| (1..=64).contains(&n))
                    .map(|n| n as usize)
                    .ok_or_else(|| err("grid.fus entries must be integers in 1..=64"))
            })
            .collect::<Result<_, _>>()?,
    };
    let algorithms = match grid.get("algorithms") {
        None => vec![base.configured_algorithm()],
        Some(v) => v
            .as_arr()
            .ok_or_else(|| err("grid.algorithms must be an array"))?
            .iter()
            .map(|a| {
                a.as_str()
                    .ok_or_else(|| err("grid.algorithms entries must be strings"))
                    .and_then(parse_algorithm)
            })
            .collect::<Result<_, _>>()?,
    };
    let controls = match grid.get("controls") {
        None => vec![base.configured_control()],
        Some(v) => v
            .as_arr()
            .ok_or_else(|| err("grid.controls must be an array"))?
            .iter()
            .map(|c| {
                c.as_str()
                    .ok_or_else(|| err("grid.controls entries must be strings"))
                    .and_then(parse_control)
            })
            .collect::<Result<_, _>>()?,
    };
    let spec = GridSpec {
        fus,
        algorithms,
        controls,
    };
    if spec.is_empty() {
        return Err(err("grid has an empty axis"));
    }
    if spec.len() > 4096 {
        return Err(err("grid too large (more than 4096 points)"));
    }
    Ok(spec)
}

impl ExploreRequest {
    /// Parses and validates a request body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let source = body
            .get("source")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing required string field \"source\""))?
            .to_string();
        let synthesizer = build_synthesizer(body.get("config"))?;
        let grid = body.get("grid").ok_or_else(|| err("missing \"grid\""))?;
        let spec = parse_grid(grid, &synthesizer)?;
        let prune = match body.get("prune") {
            None => false,
            Some(v) => v.as_bool().ok_or_else(|| err("prune must be a boolean"))?,
        };
        let deadline_ms = match body.get("deadline_ms") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .filter(|&ms| ms > 0)
                    .ok_or_else(|| err("deadline_ms must be a positive integer"))?,
            ),
        };
        Ok(ExploreRequest {
            source,
            synthesizer,
            spec,
            prune,
            deadline_ms,
        })
    }
}

/// A fully parsed `/v1/batch` request: a sweep whose points stream back
/// as NDJSON records carrying caller-assigned sequence numbers.
#[derive(Clone, Debug)]
pub struct BatchRequest {
    /// BSL source text.
    pub source: String,
    /// Base synthesizer the grid points perturb.
    pub synthesizer: Synthesizer,
    /// The raw `config` object as sent, kept verbatim so a front
    /// process can re-render sub-batches for its workers without
    /// round-tripping through the typed form.
    pub config: Option<Json>,
    /// `(seq, point)` pairs in request order. Sequence numbers are
    /// unique but need not be contiguous: a front process carves one
    /// client batch into per-worker sub-batches with global seqs.
    pub points: Vec<(u64, GridPoint)>,
    /// Run the estimator's dominance pre-pass: pruned points stream
    /// back as `{"seq":k,"pruned":true,…}` records instead of results.
    pub prune: bool,
    /// Optional per-batch deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Test-only artificial delay per point (honored only when the
    /// server enables it).
    pub test_delay_ms: u64,
}

impl BatchRequest {
    /// Parses and validates a request body. Exactly one of `"grid"`
    /// (expanded front-side, seqs 0..n in grid order) or `"points"`
    /// (explicit `{"seq","fus","algorithm"?,"control"?}` records) must
    /// be present.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let source = body
            .get("source")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing required string field \"source\""))?
            .to_string();
        let config = body.get("config").cloned();
        let synthesizer = build_synthesizer(config.as_ref())?;
        let points = match (body.get("grid"), body.get("points")) {
            (Some(_), Some(_)) => {
                return Err(err("give either \"grid\" or \"points\", not both"));
            }
            (Some(grid), None) => parse_grid(grid, &synthesizer)?
                .expand()
                .into_iter()
                .enumerate()
                .map(|(i, p)| (i as u64, p))
                .collect::<Vec<_>>(),
            (None, Some(points)) => {
                let arr = points
                    .as_arr()
                    .ok_or_else(|| err("points must be an array"))?;
                if arr.len() > 4096 {
                    return Err(err("too many points (more than 4096)"));
                }
                arr.iter()
                    .map(|p| {
                        let seq = p
                            .get("seq")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| err("each point needs an integer \"seq\""))?;
                        let fus = p
                            .get("fus")
                            .and_then(Json::as_u64)
                            .filter(|&n| (1..=64).contains(&n))
                            .ok_or_else(|| err("each point needs \"fus\" in 1..=64"))?
                            as usize;
                        let algorithm = match p.get("algorithm") {
                            None => synthesizer.configured_algorithm(),
                            Some(a) => parse_algorithm(
                                a.as_str()
                                    .ok_or_else(|| err("point algorithm must be a string"))?,
                            )?,
                        };
                        let control = match p.get("control") {
                            None => synthesizer.configured_control(),
                            Some(c) => parse_control(
                                c.as_str()
                                    .ok_or_else(|| err("point control must be a string"))?,
                            )?,
                        };
                        Ok((
                            seq,
                            GridPoint {
                                fus,
                                algorithm,
                                control,
                            },
                        ))
                    })
                    .collect::<Result<Vec<_>, ApiError>>()?
            }
            (None, None) => return Err(err("missing \"grid\" or \"points\"")),
        };
        if points.is_empty() {
            return Err(err("batch has no points"));
        }
        let mut seqs: Vec<u64> = points.iter().map(|(s, _)| *s).collect();
        seqs.sort_unstable();
        if seqs.windows(2).any(|w| w[0] == w[1]) {
            return Err(err("duplicate seq in points"));
        }
        let prune = match body.get("prune") {
            None => false,
            Some(v) => v.as_bool().ok_or_else(|| err("prune must be a boolean"))?,
        };
        let deadline_ms = match body.get("deadline_ms") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .filter(|&ms| ms > 0)
                    .ok_or_else(|| err("deadline_ms must be a positive integer"))?,
            ),
        };
        let test_delay_ms = match body.get("test_delay_ms") {
            None => 0,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| err("test_delay_ms must be a non-negative integer"))?,
        };
        Ok(BatchRequest {
            source,
            synthesizer,
            config,
            points,
            prune,
            deadline_ms,
            test_delay_ms,
        })
    }
}

/// 16-hex-digit rendering of a fingerprint.
fn hex_fp(fp: u64) -> Json {
    Json::Str(format!("{fp:016x}"))
}

/// Builds the deterministic response body for one synthesis result.
pub fn synthesize_response(
    req: &SynthesizeRequest,
    behavior_fp: u64,
    result: &SynthesisResult,
) -> Json {
    let control = match &result.control_report {
        ControlReport::Hardwired(h) => Json::Obj(vec![
            (
                "style".into(),
                Json::Str(control_str(ControlStyle::Hardwired(h.style))),
            ),
            ("state_bits".into(), Json::Num(h.state_bits as f64)),
            ("outputs".into(), Json::Num(h.outputs as f64)),
            ("terms".into(), Json::Num(h.terms as f64)),
            ("literals".into(), Json::Num(h.literals as f64)),
        ]),
        ControlReport::Microcode {
            words,
            horizontal_bits,
            encoded_bits,
        } => Json::Obj(vec![
            ("style".into(), Json::Str("microcode".into())),
            ("words".into(), Json::Num(*words as f64)),
            ("horizontal_bits".into(), Json::Num(*horizontal_bits as f64)),
            ("encoded_bits".into(), Json::Num(*encoded_bits as f64)),
        ]),
    };
    let mut members = vec![
        ("latency".into(), Json::Num(result.latency as f64)),
        ("fus".into(), Json::Num(result.datapath.fu_count() as f64)),
        (
            "registers".into(),
            Json::Num(result.datapath.reg_count() as f64),
        ),
        (
            "mux_inputs".into(),
            Json::Num(result.datapath.mux_inputs as f64),
        ),
        ("area".into(), Json::Num(result.area.total())),
        ("clock_ns".into(), Json::Num(result.area.clock_ns)),
        ("fsm_states".into(), Json::Num(result.fsm.len() as f64)),
        ("control".into(), control),
        (
            "fingerprints".into(),
            Json::Obj(vec![
                ("cdfg".into(), hex_fp(behavior_fp)),
                ("config".into(), hex_fp(req.synthesizer.fingerprint())),
            ]),
        ),
    ];
    if req.verilog {
        members.push(("verilog".into(), Json::Str(result.to_verilog())));
    }
    Json::Obj(members)
}

/// Combined behavior fingerprint for a multi-process system: folds the
/// full channel declarations (name, width, **depth**, endpoint
/// topology), shared-variable declarations, and every process's CDFG
/// fingerprint, so a semantic change anywhere in the system changes the
/// cache key. Every variable-length field is NUL-terminated so adjacent
/// declarations cannot alias (`chan ab; chan c` vs `chan a; chan bc`),
/// and each section is tagged so reordering declarations *between*
/// sections cannot collide either.
pub fn system_fingerprint(sys: &SystemCdfg) -> u64 {
    let mut w = hls_testkit::FnvWriter::new();
    let str_field = |w: &mut hls_testkit::FnvWriter, s: &str| {
        w.update(s.as_bytes());
        w.update(&[0]);
    };
    // Option<usize> endpoint as a 1-based u64 (0 = unconnected).
    let endpoint = |e: Option<usize>| (e.map_or(0, |i| i as u64 + 1)).to_le_bytes();
    str_field(&mut w, &sys.name);
    w.update(b"io\0");
    for (name, width) in &sys.inputs {
        str_field(&mut w, name);
        w.update(&[*width]);
    }
    for (name, owner) in &sys.outputs {
        str_field(&mut w, name);
        w.update(&(*owner as u64).to_le_bytes());
    }
    w.update(b"chan\0");
    for c in &sys.channels {
        str_field(&mut w, &c.name);
        w.update(&[c.width]);
        w.update(&c.depth.to_le_bytes());
        w.update(&endpoint(c.sender));
        w.update(&endpoint(c.receiver));
    }
    w.update(b"shared\0");
    for s in &sys.shared {
        str_field(&mut w, &s.name);
        w.update(&[s.width]);
    }
    w.update(b"proc\0");
    for p in &sys.processes {
        str_field(&mut w, &p.name);
        w.update(&cdfg_fingerprint(&p.cdfg).to_le_bytes());
    }
    w.finish()
}

/// Renders a static deadlock-analysis verdict as a JSON object with a
/// discriminating `"verdict"` member (`"free"` / `"deadlock"` /
/// `"unknown"`).
fn deadlock_json(v: &DeadlockVerdict) -> Json {
    match v {
        DeadlockVerdict::Free => Json::Obj(vec![("verdict".into(), Json::Str("free".into()))]),
        DeadlockVerdict::Deadlock { blocked, cycle } => Json::Obj(vec![
            ("verdict".into(), Json::Str("deadlock".into())),
            (
                "blocked".into(),
                Json::Arr(
                    blocked
                        .iter()
                        .map(|(p, op)| {
                            Json::Obj(vec![
                                ("process".into(), Json::Str(p.clone())),
                                ("op".into(), Json::Str(op.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "cycle".into(),
                Json::Arr(cycle.iter().map(|p| Json::Str(p.clone())).collect()),
            ),
        ]),
        DeadlockVerdict::Unknown { reason } => Json::Obj(vec![
            ("verdict".into(), Json::Str("unknown".into())),
            ("reason".into(), Json::Str(reason.clone())),
        ]),
    }
}

/// Builds the deterministic response body for one system-synthesis
/// result: per-process metrics in declaration order, the interconnect
/// inventory, the static deadlock verdict, and (on request) the
/// elaborated top-level Verilog.
pub fn system_response(
    req: &SynthesizeRequest,
    behavior_fp: u64,
    result: &SystemSynthesisResult,
) -> Json {
    system_response_with(req, behavior_fp, result, false)
}

/// v1 variant of [`system_response`]: per-process objects carry the
/// same metric keys as single-process responses (`clock_ns` after
/// `area`); everything else is byte-identical to v0.
pub fn system_response_v1(
    req: &SynthesizeRequest,
    behavior_fp: u64,
    result: &SystemSynthesisResult,
) -> Json {
    system_response_with(req, behavior_fp, result, true)
}

fn system_response_with(
    req: &SynthesizeRequest,
    behavior_fp: u64,
    result: &SystemSynthesisResult,
    v1: bool,
) -> Json {
    let process_json = |p: &ProcessSynthesis| {
        let mut members = vec![
            ("name".into(), Json::Str(p.name.clone())),
            ("latency".into(), Json::Num(p.result.latency as f64)),
            ("fus".into(), Json::Num(p.result.datapath.fu_count() as f64)),
            (
                "registers".into(),
                Json::Num(p.result.datapath.reg_count() as f64),
            ),
            (
                "mux_inputs".into(),
                Json::Num(p.result.datapath.mux_inputs as f64),
            ),
            ("area".into(), Json::Num(p.result.area.total())),
        ];
        if v1 {
            members.push(("clock_ns".into(), Json::Num(p.result.area.clock_ns)));
        }
        members.push(("fsm_states".into(), Json::Num(p.result.fsm.len() as f64)));
        Json::Obj(members)
    };
    let names = |it: &[String]| Json::Arr(it.iter().map(|n| Json::Str(n.clone())).collect());
    let channels: Vec<String> = result
        .system
        .channels
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let shared: Vec<String> = result
        .system
        .shared
        .iter()
        .map(|s| s.name.clone())
        .collect();
    let mut members = vec![
        ("system".into(), Json::Str(result.system.name.clone())),
        (
            "processes".into(),
            Json::Arr(result.processes.iter().map(process_json).collect()),
        ),
        ("channels".into(), names(&channels)),
        ("shared".into(), names(&shared)),
        ("deadlock".into(), deadlock_json(&result.deadlock)),
        (
            "area".into(),
            Json::Num(result.processes.iter().map(|p| p.result.area.total()).sum()),
        ),
        (
            "fingerprints".into(),
            Json::Obj(vec![
                ("cdfg".into(), hex_fp(behavior_fp)),
                ("config".into(), hex_fp(req.synthesizer.fingerprint())),
            ]),
        ),
    ];
    if req.verilog {
        members.push(("verilog".into(), Json::Str(result.to_verilog())));
    }
    Json::Obj(members)
}

/// Flat design-point rendering shared by `/explore` bodies and batch
/// summary pareto fronts.
fn point_json(p: &DesignPoint) -> Json {
    Json::Obj(vec![
        ("fus".into(), Json::Num(p.fus as f64)),
        ("algorithm".into(), Json::Str(algorithm_str(p.algorithm))),
        ("control".into(), Json::Str(control_str(p.control))),
        ("latency".into(), Json::Num(p.latency as f64)),
        ("area".into(), Json::Num(p.area)),
        ("registers".into(), Json::Num(p.registers as f64)),
        ("mux_inputs".into(), Json::Num(p.mux_inputs as f64)),
    ])
}

/// Builds the deterministic response body for one exploration sweep.
pub fn explore_response(points: &[DesignPoint], behavior_fp: u64, config_fp: u64) -> Json {
    Json::Obj(vec![
        (
            "points".into(),
            Json::Arr(points.iter().map(point_json).collect()),
        ),
        (
            "pareto".into(),
            Json::Arr(pareto_front(points).iter().map(point_json).collect()),
        ),
        (
            "fingerprints".into(),
            Json::Obj(vec![
                ("cdfg".into(), hex_fp(behavior_fp)),
                ("config".into(), hex_fp(config_fp)),
            ]),
        ),
    ])
}

/// Renders estimator/pruning counters as a JSON object.
fn prune_stats_json(stats: &PruneStats) -> Json {
    Json::Obj(vec![
        ("estimated".into(), Json::Num(stats.estimated as f64)),
        ("pruned".into(), Json::Num(stats.pruned as f64)),
        ("synthesized".into(), Json::Num(stats.synthesized as f64)),
        ("agreement".into(), Json::Num(stats.agreement)),
    ])
}

/// Builds the deterministic response body for one *pruned* exploration
/// sweep: the synthesized (surviving) points, the Pareto front — by
/// construction identical to the exhaustive sweep's front — and the
/// estimator counters under `"prune_stats"`.
pub fn explore_response_pruned(sweep: &PrunedSweep, behavior_fp: u64, config_fp: u64) -> Json {
    Json::Obj(vec![
        (
            "points".into(),
            Json::Arr(sweep.points.iter().map(point_json).collect()),
        ),
        (
            "pareto".into(),
            Json::Arr(pareto_front(&sweep.points).iter().map(point_json).collect()),
        ),
        ("prune_stats".into(), prune_stats_json(&sweep.stats)),
        (
            "fingerprints".into(),
            Json::Obj(vec![
                ("cdfg".into(), hex_fp(behavior_fp)),
                ("config".into(), hex_fp(config_fp)),
            ]),
        ),
    ])
}

/// Renders a [`GridPoint`] as its three configuration axes.
pub fn grid_point_json(p: &GridPoint) -> Json {
    Json::Obj(vec![
        ("fus".into(), Json::Num(p.fus as f64)),
        ("algorithm".into(), Json::Str(algorithm_str(p.algorithm))),
        ("control".into(), Json::Str(control_str(p.control))),
    ])
}

/// One completed grid point as an NDJSON record:
/// `{"seq":k,"cache_hit":b,"point":{…},"result":{…}}`.
pub fn batch_point_record(seq: u64, cache_hit: bool, point: &GridPoint, d: &DesignPoint) -> Json {
    Json::Obj(vec![
        ("seq".into(), Json::Num(seq as f64)),
        ("cache_hit".into(), Json::Bool(cache_hit)),
        ("point".into(), grid_point_json(point)),
        (
            "result".into(),
            Json::Obj(vec![
                ("latency".into(), Json::Num(d.latency as f64)),
                ("area".into(), Json::Num(d.area)),
                ("registers".into(), Json::Num(d.registers as f64)),
                ("mux_inputs".into(), Json::Num(d.mux_inputs as f64)),
            ]),
        ),
    ])
}

/// One estimator-skipped grid point as an NDJSON record:
/// `{"seq":k,"pruned":true,"point":{…}}`. Pruned points are provably
/// absent from the exhaustive Pareto front, so no result is streamed.
pub fn batch_pruned_record(seq: u64, point: &GridPoint) -> Json {
    Json::Obj(vec![
        ("seq".into(), Json::Num(seq as f64)),
        ("pruned".into(), Json::Bool(true)),
        ("point".into(), grid_point_json(point)),
    ])
}

/// One failed grid point as an NDJSON record:
/// `{"seq":k,"error":{"code","message","stage"?}}`.
pub fn batch_error_record(seq: u64, code: &str, message: &str, stage: Option<&str>) -> Json {
    let mut inner = vec![
        ("code".into(), Json::Str(code.into())),
        ("message".into(), Json::Str(message.into())),
    ];
    if let Some(stage) = stage {
        inner.push(("stage".into(), Json::Str(stage.into())));
    }
    Json::Obj(vec![
        ("seq".into(), Json::Num(seq as f64)),
        ("error".into(), Json::Obj(inner)),
    ])
}

/// The terminal NDJSON summary line for a batch: counts plus the pareto
/// front over all completed points (given in seq order so the rendering
/// is deterministic regardless of completion order).
pub fn batch_summary(
    total: usize,
    ok: usize,
    errors: usize,
    cache_hits: usize,
    completed: &[DesignPoint],
) -> Json {
    batch_summary_with(total, ok, errors, cache_hits, None, completed)
}

/// [`batch_summary`] for a pruned batch: adds a `"pruned"` count after
/// `"cache_hits"`. Non-pruned summaries keep their exact v1 shape.
pub fn batch_summary_pruned(
    total: usize,
    ok: usize,
    errors: usize,
    cache_hits: usize,
    pruned: usize,
    completed: &[DesignPoint],
) -> Json {
    batch_summary_with(total, ok, errors, cache_hits, Some(pruned), completed)
}

fn batch_summary_with(
    total: usize,
    ok: usize,
    errors: usize,
    cache_hits: usize,
    pruned: Option<usize>,
    completed: &[DesignPoint],
) -> Json {
    let mut members = vec![
        ("points".into(), Json::Num(total as f64)),
        ("ok".into(), Json::Num(ok as f64)),
        ("errors".into(), Json::Num(errors as f64)),
        ("cache_hits".into(), Json::Num(cache_hits as f64)),
    ];
    if let Some(pruned) = pruned {
        members.push(("pruned".into(), Json::Num(pruned as f64)));
    }
    members.push((
        "pareto".into(),
        Json::Arr(pareto_front(completed).iter().map(point_json).collect()),
    ));
    Json::Obj(vec![("summary".into(), Json::Obj(members))])
}

/// Builds the v1 error envelope
/// `{"error":{"code","message","stage"?,"retry_after_ms"?}}`.
pub fn error_envelope(
    code: &str,
    message: &str,
    stage: Option<&str>,
    retry_after_ms: Option<u64>,
) -> Json {
    let mut inner = vec![
        ("code".into(), Json::Str(code.into())),
        ("message".into(), Json::Str(message.into())),
    ];
    if let Some(stage) = stage {
        inner.push(("stage".into(), Json::Str(stage.into())));
    }
    if let Some(ms) = retry_after_ms {
        inner.push(("retry_after_ms".into(), Json::Num(ms as f64)));
    }
    Json::Obj(vec![("error".into(), Json::Obj(inner))])
}

/// Splices `"cache_hit":b` in as the first member of a rendered JSON
/// object body. The cached rendering deliberately excludes the flag —
/// it is the one field that depends on cache state rather than the
/// request — so v1 handlers add it at serve time without re-rendering.
pub fn with_cache_hit(body: &[u8], hit: bool) -> Vec<u8> {
    debug_assert!(body.first() == Some(&b'{'), "body must be a JSON object");
    let flag = if hit {
        "{\"cache_hit\":true"
    } else {
        "{\"cache_hit\":false"
    };
    let mut out = Vec::with_capacity(flag.len() + body.len() + 1);
    out.extend_from_slice(flag.as_bytes());
    if body.get(1) != Some(&b'}') {
        out.push(b',');
    }
    out.extend_from_slice(&body[1..]);
    out
}

/// Runs a parsed `/synthesize` request to completion.
///
/// # Errors
///
/// Propagates synthesis errors (including cancellation) for the caller
/// to map onto HTTP statuses.
pub fn run_synthesize(
    req: &SynthesizeRequest,
    cancel: &CancelToken,
) -> Result<(u64, SynthesisResult), SynthesisError> {
    let cdfg = hls_lang::compile(&req.source)?;
    let behavior_fp = cdfg_fingerprint(&cdfg);
    let result = req.synthesizer.synthesize_cancellable(cdfg, cancel)?;
    Ok((behavior_fp, result))
}

/// Runs a parsed `/explore` request on the shared explorer.
///
/// # Errors
///
/// Propagates synthesis errors (including cancellation) for the caller
/// to map onto HTTP statuses.
pub fn run_explore(
    req: &ExploreRequest,
    explorer: &Explorer,
    cancel: &CancelToken,
) -> Result<(u64, Vec<DesignPoint>), SynthesisError> {
    let cdfg = hls_lang::compile(&req.source)?;
    let behavior_fp = cdfg_fingerprint(&cdfg);
    let points =
        explorer.sweep_grid_cdfg_cancellable(&req.synthesizer, &cdfg, &req.spec, cancel)?;
    Ok((behavior_fp, points))
}

/// Runs a parsed `/explore` request with the estimator's dominance
/// pre-pass on the shared explorer.
///
/// # Errors
///
/// Propagates synthesis errors (including cancellation) for the caller
/// to map onto HTTP statuses.
pub fn run_explore_pruned(
    req: &ExploreRequest,
    explorer: &Explorer,
    cancel: &CancelToken,
) -> Result<(u64, PrunedSweep), SynthesisError> {
    let cdfg = hls_lang::compile(&req.source)?;
    let behavior_fp = cdfg_fingerprint(&cdfg);
    let sweep =
        explorer.sweep_grid_cdfg_pruned_cancellable(&req.synthesizer, &cdfg, &req.spec, cancel)?;
    Ok((behavior_fp, sweep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn algorithm_names_roundtrip() {
        for name in [
            "asap",
            "alap/0",
            "alap/2",
            "list/path",
            "list/urgency",
            "list/mobility",
            "force/0",
            "force/2",
            "hforce/0/64",
            "hforce/2/8",
            "freedom/1",
            "bb",
            "transform",
        ] {
            let a = parse_algorithm(name).unwrap();
            assert_eq!(algorithm_str(a), name, "{name}");
        }
        assert!(parse_algorithm("quantum").is_err());
        assert!(parse_algorithm("force/x").is_err());
        // Shorthand forms normalize to the canonical slack/window string.
        assert_eq!(
            algorithm_str(parse_algorithm("hforce").unwrap()),
            format!("hforce/0/{}", hls_sched::DEFAULT_WINDOW)
        );
        assert_eq!(
            algorithm_str(parse_algorithm("hforce/3").unwrap()),
            format!("hforce/3/{}", hls_sched::DEFAULT_WINDOW)
        );
        assert!(parse_algorithm("hforce/1/0").is_err(), "window 0 rejected");
        assert!(parse_algorithm("hforce/x/4").is_err());
        assert!(parse_algorithm("hforce/1/y").is_err());
    }

    #[test]
    fn control_names_roundtrip() {
        for name in [
            "hardwired/binary",
            "hardwired/onehot",
            "hardwired/gray",
            "microcode",
        ] {
            let c = parse_control(name).unwrap();
            assert_eq!(control_str(c), name, "{name}");
        }
        assert!(parse_control("telepathy").is_err());
    }

    #[test]
    fn synthesize_request_parses_and_configures() {
        let body = parse(
            r#"{"source":"x","config":{"fus":3,"algorithm":"asap","control":"microcode","optimize":false},"verilog":true}"#,
        )
        .unwrap();
        let req = SynthesizeRequest::from_json(&body).unwrap();
        assert!(req.verilog);
        let expected = Synthesizer::new()
            .universal_fus(3)
            .algorithm(Algorithm::Asap)
            .control(ControlStyle::Microcode)
            .without_optimization();
        assert_eq!(req.synthesizer.fingerprint(), expected.fingerprint());
    }

    #[test]
    fn synthesize_request_rejects_unknown_keys() {
        let body = parse(r#"{"source":"x","config":{"fuss":3}}"#).unwrap();
        let e = SynthesizeRequest::from_json(&body).unwrap_err();
        assert!(e.0.contains("unknown config key"), "{e}");
    }

    #[test]
    fn explore_request_defaults_and_bounds() {
        let body = parse(r#"{"source":"x","grid":{}}"#).unwrap();
        let req = ExploreRequest::from_json(&body).unwrap();
        assert_eq!(req.spec.fus, vec![1, 2, 3]);
        assert_eq!(req.spec.algorithms.len(), 1);
        assert_eq!(req.spec.controls.len(), 1);

        let body = parse(r#"{"source":"x","grid":{"fus":[]}}"#).unwrap();
        assert!(ExploreRequest::from_json(&body).is_err());
    }

    #[test]
    fn prune_flag_parses_on_explore_and_batch() {
        let body = parse(r#"{"source":"x","grid":{}}"#).unwrap();
        assert!(!ExploreRequest::from_json(&body).unwrap().prune);
        let body = parse(r#"{"source":"x","grid":{},"prune":true}"#).unwrap();
        assert!(ExploreRequest::from_json(&body).unwrap().prune);
        let body = parse(r#"{"source":"x","grid":{},"prune":"yes"}"#).unwrap();
        assert!(ExploreRequest::from_json(&body).is_err());

        let body = parse(r#"{"source":"x","grid":{"fus":[1,2]},"prune":true}"#).unwrap();
        assert!(BatchRequest::from_json(&body).unwrap().prune);
        let body = parse(r#"{"source":"x","grid":{"fus":[1,2]}}"#).unwrap();
        assert!(!BatchRequest::from_json(&body).unwrap().prune);
    }

    #[test]
    fn pruned_records_and_summaries_render_stably() {
        let p = GridPoint {
            fus: 3,
            algorithm: Algorithm::Asap,
            control: ControlStyle::Microcode,
        };
        assert_eq!(
            batch_pruned_record(9, &p).render(),
            r#"{"seq":9,"pruned":true,"point":{"fus":3,"algorithm":"asap","control":"microcode"}}"#
        );
        let s = batch_summary_pruned(4, 2, 0, 1, 2, &[]).render();
        assert!(
            s.starts_with(r#"{"summary":{"points":4,"ok":2,"errors":0,"cache_hits":1,"pruned":2,"#),
            "{s}"
        );
        // The non-pruned summary keeps its exact v1 shape.
        assert!(!batch_summary(4, 4, 0, 1, &[]).render().contains("pruned"));
    }

    #[test]
    fn batch_request_expands_grid_and_accepts_explicit_points() {
        let body =
            parse(r#"{"source":"x","grid":{"fus":[1,2],"algorithms":["asap","list/path"]}}"#)
                .unwrap();
        let req = BatchRequest::from_json(&body).unwrap();
        assert_eq!(req.points.len(), 4);
        assert_eq!(req.points[0].0, 0);
        assert_eq!(req.points[3].0, 3);
        // Grid order: fus outermost, then algorithms.
        assert_eq!(req.points[0].1.fus, 1);
        assert_eq!(req.points[2].1.fus, 2);

        let body = parse(
            r#"{"source":"x","points":[{"seq":7,"fus":2,"algorithm":"asap"},{"seq":3,"fus":1}]}"#,
        )
        .unwrap();
        let req = BatchRequest::from_json(&body).unwrap();
        assert_eq!(req.points.len(), 2);
        assert_eq!(req.points[0].0, 7, "seqs kept verbatim, order preserved");
        assert_eq!(req.points[1].0, 3);
        assert_eq!(req.points[0].1.algorithm, Algorithm::Asap);

        for bad in [
            r#"{"source":"x"}"#,
            r#"{"source":"x","grid":{},"points":[]}"#,
            r#"{"source":"x","points":[]}"#,
            r#"{"source":"x","points":[{"seq":1,"fus":1},{"seq":1,"fus":2}]}"#,
            r#"{"source":"x","points":[{"fus":1}]}"#,
            r#"{"source":"x","points":[{"seq":0,"fus":99}]}"#,
        ] {
            let body = parse(bad).unwrap();
            assert!(BatchRequest::from_json(&body).is_err(), "{bad}");
        }
    }

    #[test]
    fn error_envelope_and_batch_records_render_stably() {
        assert_eq!(
            error_envelope("overloaded", "server overloaded", None, Some(1000)).render(),
            r#"{"error":{"code":"overloaded","message":"server overloaded","retry_after_ms":1000}}"#
        );
        assert_eq!(
            error_envelope("deadline_exceeded", "cancelled", Some("schedule"), None).render(),
            r#"{"error":{"code":"deadline_exceeded","message":"cancelled","stage":"schedule"}}"#
        );
        assert_eq!(
            batch_error_record(4, "deadline_exceeded", "cancelled", Some("none")).render(),
            r#"{"seq":4,"error":{"code":"deadline_exceeded","message":"cancelled","stage":"none"}}"#
        );
        let p = GridPoint {
            fus: 2,
            algorithm: Algorithm::Asap,
            control: ControlStyle::Hardwired(EncodingStyle::Binary),
        };
        let d = DesignPoint {
            fus: 2,
            algorithm: Algorithm::Asap,
            control: ControlStyle::Hardwired(EncodingStyle::Binary),
            latency: 10,
            area: 100.5,
            registers: 7,
            mux_inputs: 12,
        };
        assert_eq!(
            batch_point_record(3, true, &p, &d).render(),
            concat!(
                r#"{"seq":3,"cache_hit":true,"#,
                r#""point":{"fus":2,"algorithm":"asap","control":"hardwired/binary"},"#,
                r#""result":{"latency":10,"area":100.5,"registers":7,"mux_inputs":12}}"#
            )
        );
        let s = batch_summary(1, 1, 0, 1, &[d]).render();
        assert!(s.starts_with(r#"{"summary":{"points":1,"ok":1,"errors":0,"cache_hits":1,"#));
        assert!(s.contains(r#""pareto":[{"fus":2"#), "{s}");
    }

    #[test]
    fn cache_hit_splice_prepends_field() {
        assert_eq!(
            with_cache_hit(br#"{"latency":10}"#, false),
            br#"{"cache_hit":false,"latency":10}"#
        );
        assert_eq!(with_cache_hit(b"{}", true), br#"{"cache_hit":true}"#);
    }

    #[test]
    fn responses_are_deterministic() {
        let body = parse(
            format!(
                r#"{{"source":{:?},"config":{{"fus":2}}}}"#,
                hls_workloads::sources::SQRT
            )
            .as_str(),
        )
        .unwrap();
        let req = SynthesizeRequest::from_json(&body).unwrap();
        let tok = CancelToken::new();
        let (fp1, r1) = run_synthesize(&req, &tok).unwrap();
        let (fp2, r2) = run_synthesize(&req, &tok).unwrap();
        assert_eq!(fp1, fp2);
        assert_eq!(r1.latency, 10);
        let b1 = synthesize_response(&req, fp1, &r1).render();
        let b2 = synthesize_response(&req, fp2, &r2).render();
        assert_eq!(b1, b2, "identical requests must render identical bytes");
    }

    #[test]
    fn system_responses_are_deterministic() {
        let body = parse(
            format!(
                r#"{{"source":{:?},"verilog":true}}"#,
                hls_workloads::sources::PIPE3
            )
            .as_str(),
        )
        .unwrap();
        let req = SynthesizeRequest::from_json(&body).unwrap();
        let render = || {
            let sys = hls_lang::compile_system(&req.source).unwrap();
            let fp = system_fingerprint(&sys);
            let result = req.synthesizer.synthesize_system(sys).unwrap();
            system_response(&req, fp, &result).render()
        };
        let b1 = render();
        let b2 = render();
        assert_eq!(b1, b2, "identical requests must render identical bytes");
        assert!(b1.contains(r#""system":"pipe3""#), "{b1}");
        assert_eq!(b1.matches(r#""fsm_states""#).count(), 3, "{b1}");
        assert!(b1.contains(r#""channels":["c1","c2"]"#), "{b1}");
        assert!(b1.contains("module pipe3"), "{b1}");
        // PIPE3 is an acyclic pipeline: the static analysis proves it.
        assert!(b1.contains(r#""deadlock":{"verdict":"free"}"#), "{b1}");
    }

    #[test]
    fn system_fingerprint_sees_channel_depth_and_declarations() {
        let fp = |src: &str| system_fingerprint(&hls_lang::compile_system(src).unwrap());
        let base = "system s; input X; output Y; chan c;
             process a; begin send c, X; end;
             process b; var v; begin recv c, v; Y := v; end;
             end.";
        // Same processes, but the channel gains a buffer: different
        // semantics (never deadlocks on crossed patterns), so it must be
        // a different cache key.
        let buffered = base.replace("chan c;", "chan c : fix[2];");
        assert_ne!(fp(base), fp(&buffered), "depth must change the key");
        assert_ne!(
            fp(&buffered),
            fp(&base.replace("chan c;", "chan c : fix[3];")),
            "distinct depths must differ"
        );
        // Adjacent declarations must not alias through concatenation:
        // the channel names fold as "ab"+"c" vs "a"+"bc" here.
        let two_a = fp("system s; output Y; chan ab; chan c;
             process p; begin send ab, 1; send c, 2; Y := 0; end;
             process q; var v; begin recv ab, v; recv c, v; end;
             end.");
        let two_b = fp("system s; output Y; chan a; chan bc;
             process p; begin send a, 1; send bc, 2; Y := 0; end;
             process q; var v; begin recv a, v; recv bc, v; end;
             end.");
        assert_ne!(two_a, two_b, "declaration splits must differ");
    }
}
