//! The shard front: consistent-hash routing over worker processes.
//!
//! A front process (`hls-serve --front --workers N`) owns the public
//! listener and fans requests out to N single-process workers. Requests
//! are routed by consistent-hashing the same cdfg×config fingerprint
//! pair the workers use for their response and memo caches, so a given
//! behavior+configuration always lands on the same worker and cache
//! affinity falls out of the routing for free.
//!
//! - **Single requests** (`/synthesize`, `/explore`, v1 or legacy) are
//!   proxied verbatim: one upstream connection per request, the worker's
//!   response forwarded unchanged. A worker that fails mid-proxy is
//!   marked dead and the request re-hashes to the next live worker on
//!   the ring; with no live worker left the front sheds with 503.
//! - **Batches** (`POST /v1/batch`) are expanded front-side: every grid
//!   point gets a global `seq`, points are grouped by their routed
//!   worker, and per-worker sub-batches stream back concurrently. The
//!   front re-emits records to the client in *seq order* (a reorder
//!   buffer), so a batch response body is a deterministic function of
//!   the request even across differently-paced workers. Points stranded
//!   by a worker death are re-hashed onto the survivors; points no live
//!   worker can take become `upstream_unavailable` error records.
//! - `/healthz` probes every worker and aggregates liveness;
//!   `/metrics` exposes the front's own registry, including
//!   `hls_serve_shard_requests_total{worker=…}`.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hls_core::par::ThreadPool;
use hls_core::{cdfg_fingerprint, DesignPoint, GridPoint, Synthesizer};

use crate::api;
use crate::http::{
    finish_chunked, read_request, start_chunked, write_chunk, ChunkedLineReader, ClientResponse,
    ReadError, Request, Response,
};
use crate::json::{self, Json};
use crate::metrics::{BatchOutcome, Metrics};
use crate::server::{error_response, parse_route, ServerConfig};

/// Virtual nodes per worker on the hash ring: enough that removing one
/// worker spreads its keyspace evenly over the survivors.
const VNODES: usize = 64;

/// FNV-1a over a pair of fingerprints: the shard routing key.
pub fn shard_key(behavior_fp: u64, config_fp: u64) -> u64 {
    let mut w = hls_testkit::FnvWriter::new();
    w.update(&behavior_fp.to_le_bytes());
    w.update(&config_fp.to_le_bytes());
    w.finish()
}

/// The per-point routing key of one batch grid point: the same
/// cdfg×config pair a worker's exploration memo cache folds, so
/// repeating a batch re-routes every point to the worker that already
/// holds it.
pub fn point_key(behavior_fp: u64, base: &Synthesizer, p: &GridPoint) -> u64 {
    let mut cfg = base.clone();
    cfg.set_universal_fus(p.fus);
    cfg.set_algorithm(p.algorithm);
    cfg.set_control(p.control);
    shard_key(behavior_fp, cfg.fingerprint())
}

/// A consistent-hash ring over worker indices.
///
/// Each worker contributes [`VNODES`] points; a key routes to the first
/// vnode at or after its hash (wrapping), skipping workers the liveness
/// predicate rejects — which *is* the re-hash on worker death.
pub struct Ring {
    /// Sorted `(hash, worker)` vnode points.
    points: Vec<(u64, usize)>,
    workers: usize,
}

impl Ring {
    /// A ring over `workers` indices.
    pub fn new(workers: usize) -> Self {
        let mut points = Vec::with_capacity(workers * VNODES);
        for w in 0..workers {
            for v in 0..VNODES {
                let mut h = hls_testkit::FnvWriter::new();
                h.update(format!("worker-{w}-vnode-{v}").as_bytes());
                points.push((h.finish(), w));
            }
        }
        points.sort_unstable();
        Ring { points, workers }
    }

    /// The first live worker at or after `key` on the ring, or `None`
    /// when every worker is dead.
    pub fn route(&self, key: u64, alive: impl Fn(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(h, _)| h < key);
        let mut seen = vec![false; self.workers];
        let mut checked = 0;
        for i in 0..self.points.len() {
            let (_, w) = self.points[(start + i) % self.points.len()];
            if seen[w] {
                continue;
            }
            seen[w] = true;
            if alive(w) {
                return Some(w);
            }
            checked += 1;
            if checked == self.workers {
                break;
            }
        }
        None
    }
}

/// Front configuration: the server knobs plus the worker addresses.
#[derive(Clone, Debug)]
pub struct FrontConfig {
    /// Listen address.
    pub addr: String,
    /// Worker `host:port` addresses, index = shard id.
    pub workers: Vec<String>,
    /// Front pool threads (request concurrency).
    pub threads: usize,
    /// Admission bound, as in [`ServerConfig::queue`].
    pub queue: usize,
    /// Upstream read deadline headroom over the per-request deadline.
    pub deadline: Duration,
    /// 503 backoff, milliseconds (rendered like the worker's).
    pub retry_after_ms: u64,
}

impl FrontConfig {
    /// Derives a front configuration from the worker-level knobs.
    pub fn from_server(cfg: &ServerConfig, workers: Vec<String>) -> Self {
        FrontConfig {
            addr: cfg.addr.clone(),
            workers,
            threads: cfg.threads,
            queue: cfg.queue,
            deadline: cfg.deadline,
            retry_after_ms: cfg.retry_after_ms,
        }
    }
}

/// Shared front state.
struct FrontCtx {
    config: FrontConfig,
    ring: Ring,
    /// Last-known liveness per worker; proxy failures clear a flag,
    /// `/healthz` probes refresh all of them.
    alive: Vec<AtomicBool>,
    metrics: Arc<Metrics>,
    inflight: AtomicUsize,
    shutdown: AtomicBool,
    idle: Mutex<()>,
    idle_cv: Condvar,
}

impl FrontCtx {
    fn request_done(&self) {
        let before = self.inflight.fetch_sub(1, Ordering::SeqCst);
        self.metrics.queue_left(before.saturating_sub(1));
        if before == 1 {
            let _guard = self.idle.lock().expect("idle lock");
            self.idle_cv.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut guard = self.idle.lock().expect("idle lock");
        while self.inflight.load(Ordering::SeqCst) > 0 {
            guard = self.idle_cv.wait(guard).expect("idle wait");
        }
    }

    fn is_alive(&self, w: usize) -> bool {
        self.alive[w].load(Ordering::SeqCst)
    }

    fn mark_dead(&self, w: usize) {
        self.alive[w].store(false, Ordering::SeqCst);
    }

    fn retry_after_secs(&self) -> u64 {
        self.config.retry_after_ms.div_ceil(1000).max(1)
    }
}

/// The running front process.
pub struct Front {
    listener: TcpListener,
    addr: SocketAddr,
    ctx: Arc<FrontCtx>,
    pool: ThreadPool,
}

/// A cloneable handle for shutting the front down and reading metrics.
#[derive(Clone)]
pub struct FrontHandle {
    addr: SocketAddr,
    ctx: Arc<FrontCtx>,
}

impl FrontHandle {
    /// The address the front is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The front's metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.ctx.metrics)
    }

    /// Requests a graceful shutdown (drain, then return from
    /// [`Front::run`]). Idempotent. Workers are not stopped here — the
    /// caller owns their lifecycle (see [`SpawnedWorker`]).
    pub fn shutdown(&self) {
        if !self.ctx.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

impl Front {
    /// Binds the front listener.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or no workers were given.
    pub fn bind(config: FrontConfig) -> io::Result<Self> {
        if config.workers.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "front needs at least one worker",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let pool = ThreadPool::new(config.threads);
        let ctx = Arc::new(FrontCtx {
            ring: Ring::new(config.workers.len()),
            alive: config
                .workers
                .iter()
                .map(|_| AtomicBool::new(true))
                .collect(),
            metrics: Arc::new(Metrics::new()),
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
            config,
        });
        Ok(Front {
            listener,
            addr,
            ctx,
            pool,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for shutdown and metrics.
    pub fn handle(&self) -> FrontHandle {
        FrontHandle {
            addr: self.addr,
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// Runs the accept loop until [`FrontHandle::shutdown`], then drains.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors.
    pub fn run(self) -> io::Result<()> {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.ctx.shutdown.load(Ordering::SeqCst) {
                drop(stream);
                break;
            }
            let depth = self.ctx.inflight.fetch_add(1, Ordering::SeqCst) + 1;
            self.ctx.metrics.queue_entered(depth);
            if depth > self.ctx.config.queue {
                self.ctx.metrics.shed();
                let ctx = Arc::clone(&self.ctx);
                std::thread::spawn(move || {
                    shed_front(stream, &ctx);
                    ctx.request_done();
                });
                continue;
            }
            let ctx = Arc::clone(&self.ctx);
            self.pool.execute(move || {
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_front_connection(stream, &ctx);
                }));
                if caught.is_err() {
                    ctx.metrics.panic();
                }
                ctx.request_done();
            });
        }
        self.ctx.wait_idle();
        drop(self.pool);
        Ok(())
    }
}

/// Answers one over-capacity front connection with 503.
fn shed_front(mut stream: TcpStream, ctx: &FrontCtx) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1000)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(1000)));
    let (endpoint, v1) = match read_request(&mut stream) {
        Ok(req) => parse_route(&req),
        Err(_) => ("unknown", false),
    };
    let ms = ctx.config.retry_after_ms;
    let body = if v1 {
        api::error_envelope("overloaded", "server overloaded", None, Some(ms))
    } else {
        Json::Obj(vec![
            ("error".into(), Json::Str("server overloaded".into())),
            (
                "retry_after_secs".into(),
                Json::Num(ctx.retry_after_secs() as f64),
            ),
        ])
    };
    let resp = Response::json(503, body.render().into_bytes())
        .with_header("Retry-After", ctx.retry_after_secs().to_string())
        .with_header("Retry-After-Ms", ms.to_string());
    let _ = resp.write_to(&mut stream);
    ctx.metrics
        .observe_request(endpoint, 503, started.elapsed());
}

/// Reads, routes, answers, and records one front connection.
fn handle_front_connection(mut stream: TcpStream, ctx: &FrontCtx) {
    let started = Instant::now();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(5000)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(5000)));
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(ReadError::Closed | ReadError::Io(_)) => return,
        Err(ReadError::TooLarge) => {
            let _ = error_response(413, "request too large", false).write_to(&mut stream);
            ctx.metrics
                .observe_request("unknown", 413, started.elapsed());
            return;
        }
        Err(ReadError::Malformed(why)) => {
            let _ = error_response(400, why, false).write_to(&mut stream);
            ctx.metrics
                .observe_request("unknown", 400, started.elapsed());
            return;
        }
    };
    let (endpoint, v1) = parse_route(&req);
    if !v1 && endpoint != "unknown" {
        ctx.metrics.deprecated_request(endpoint);
    }
    if endpoint == "batch" && req.method == "POST" {
        let status = front_batch(&req, &mut stream, ctx);
        ctx.metrics
            .observe_request(endpoint, status, started.elapsed());
        return;
    }
    let resp = match (endpoint, req.method.as_str()) {
        // Front-local endpoints answer here; legacy paths get the
        // Deprecation header from the front itself.
        ("healthz", "GET") => deprecate(healthz(ctx), v1),
        ("metrics", "GET") => deprecate(Response::text(200, ctx.metrics.render().into_bytes()), v1),
        // Proxied endpoints keep the worker's response verbatim — it
        // already carries the Deprecation header on legacy paths.
        ("synthesize" | "explore", "POST") => proxy(&req, ctx, v1),
        ("healthz" | "metrics" | "synthesize" | "explore" | "batch", _) => {
            deprecate(error_response(405, "method not allowed", v1), v1)
        }
        _ => error_response(404, "no such endpoint", v1),
    };
    let status = resp.status;
    let _ = resp.write_to(&mut stream);
    ctx.metrics
        .observe_request(endpoint, status, started.elapsed());
}

/// Adds the `Deprecation` header to a front-local legacy response.
fn deprecate(resp: Response, v1: bool) -> Response {
    if v1 {
        resp
    } else {
        resp.with_header("Deprecation", "true".into())
    }
}

/// `GET /healthz`: probes every worker, refreshes the liveness flags,
/// and aggregates. All alive → `ok`, some → `degraded` (both 200), none
/// → `down` with 503.
fn healthz(ctx: &FrontCtx) -> Response {
    let mut workers = Vec::with_capacity(ctx.config.workers.len());
    let mut up = 0usize;
    for (i, addr) in ctx.config.workers.iter().enumerate() {
        let ok = probe_worker(addr);
        ctx.alive[i].store(ok, Ordering::SeqCst);
        up += usize::from(ok);
        workers.push(Json::Obj(vec![
            ("worker".into(), Json::Num(i as f64)),
            ("alive".into(), Json::Bool(ok)),
        ]));
    }
    let (status, word) = if up == ctx.config.workers.len() {
        (200, "ok")
    } else if up > 0 {
        (200, "degraded")
    } else {
        (503, "down")
    };
    let body = Json::Obj(vec![
        ("status".into(), Json::Str(word.into())),
        ("workers".into(), Json::Arr(workers)),
    ]);
    Response::json(status, body.render().into_bytes())
}

/// One liveness probe: `GET /v1/healthz` with short timeouts.
fn probe_worker(addr: &str) -> bool {
    let Ok(sock) = addr.parse::<SocketAddr>() else {
        return false;
    };
    let Ok(mut s) = TcpStream::connect_timeout(&sock, Duration::from_millis(500)) else {
        return false;
    };
    let _ = s.set_read_timeout(Some(Duration::from_millis(1000)));
    let _ = s.set_write_timeout(Some(Duration::from_millis(1000)));
    let head = format!("GET /v1/healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    if s.write_all(head.as_bytes()).is_err() {
        return false;
    }
    matches!(crate::http::read_response(&mut s), Ok(r) if r.status == 200)
}

/// Opens one upstream connection and writes a request; the caller reads
/// the response (buffered or streaming).
fn send_upstream(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    read_timeout: Duration,
) -> io::Result<TcpStream> {
    let sock: SocketAddr = addr
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "bad worker address"))?;
    let mut s = TcpStream::connect_timeout(&sock, Duration::from_millis(1000))?;
    let _ = s.set_nodelay(true);
    s.set_read_timeout(Some(read_timeout))?;
    s.set_write_timeout(Some(Duration::from_millis(5000)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes())?;
    s.write_all(body)?;
    s.flush()?;
    Ok(s)
}

/// The routing key for a single synthesize/explore request: the same
/// cdfg×config fingerprints the workers key their caches on. Bodies the
/// front cannot interpret still route deterministically (by raw-body
/// hash) and let the owning worker produce the authoritative error.
fn request_key(req: &Request) -> u64 {
    let fallback = || {
        let mut w = hls_testkit::FnvWriter::new();
        w.update(&req.body);
        w.finish()
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return fallback();
    };
    let Ok(body) = json::parse(text) else {
        return fallback();
    };
    let Ok(parsed) = api::SynthesizeRequest::from_json(&body) else {
        return fallback();
    };
    let behavior_fp = if hls_lang::is_system_source(&parsed.source) {
        match hls_lang::compile_system(&parsed.source) {
            Ok(sys) => api::system_fingerprint(&sys),
            Err(_) => return fallback(),
        }
    } else {
        match hls_lang::compile(&parsed.source) {
            Ok(cdfg) => cdfg_fingerprint(&cdfg),
            Err(_) => return fallback(),
        }
    };
    shard_key(behavior_fp, parsed.synthesizer.fingerprint())
}

/// Proxies one single-shot request to its routed worker, re-hashing past
/// dead workers; 503 once the ring is empty.
fn proxy(req: &Request, ctx: &FrontCtx, v1: bool) -> Response {
    let key = request_key(req);
    let read_timeout = ctx.config.deadline + Duration::from_millis(5000);
    for _ in 0..ctx.config.workers.len() {
        let Some(w) = ctx.ring.route(key, |i| ctx.is_alive(i)) else {
            break;
        };
        match forward(req, &ctx.config.workers[w], read_timeout) {
            Ok(resp) => {
                ctx.metrics.shard_request(&w.to_string());
                return resp;
            }
            Err(_) => ctx.mark_dead(w),
        }
    }
    let ms = ctx.config.retry_after_ms;
    let body = if v1 {
        api::error_envelope("overloaded", "no live worker", None, Some(ms))
    } else {
        Json::Obj(vec![
            ("error".into(), Json::Str("no live worker".into())),
            (
                "retry_after_secs".into(),
                Json::Num(ctx.retry_after_secs() as f64),
            ),
        ])
    };
    Response::json(503, body.render().into_bytes())
        .with_header("Retry-After", ctx.retry_after_secs().to_string())
        .with_header("Retry-After-Ms", ms.to_string())
}

/// One proxy attempt: send, read the whole response, rebuild it for the
/// client (minus the per-connection headers `write_to` re-adds).
fn forward(req: &Request, addr: &str, read_timeout: Duration) -> io::Result<Response> {
    let mut s = send_upstream(addr, &req.method, &req.path, &req.body, read_timeout)?;
    let upstream: ClientResponse = crate::http::read_response(&mut s)?;
    let headers = upstream
        .headers
        .iter()
        .filter(|(k, _)| k != "content-length" && k != "connection" && k != "transfer-encoding")
        .cloned()
        .collect();
    Ok(Response {
        status: upstream.status,
        headers,
        body: upstream.body,
    })
}

/// Serializes front batch records to the client strictly in global seq
/// order, whatever order workers deliver them in — this is what makes a
/// front batch response byte-deterministic.
struct SeqEmitter {
    inner: Mutex<SeqEmitterInner>,
}

struct SeqEmitterInner {
    stream: TcpStream,
    /// Rank (position in the sorted seq list) of the next line to write.
    next: usize,
    pending: BTreeMap<usize, Vec<u8>>,
    failed: bool,
}

impl SeqEmitter {
    fn new(stream: TcpStream) -> Self {
        SeqEmitter {
            inner: Mutex::new(SeqEmitterInner {
                stream,
                next: 0,
                pending: BTreeMap::new(),
                failed: false,
            }),
        }
    }

    fn push(&self, rank: usize, mut line: Vec<u8>) {
        line.push(b'\n');
        let mut g = self.inner.lock().expect("emitter lock");
        if g.failed {
            return;
        }
        g.pending.insert(rank, line);
        loop {
            let next = g.next;
            let Some(line) = g.pending.remove(&next) else {
                break;
            };
            if write_chunk(&mut g.stream, &line).is_err() {
                g.failed = true;
                g.pending.clear();
                return;
            }
            g.next += 1;
        }
    }

    fn finish(&self, terminal: &[u8]) -> bool {
        let mut g = self.inner.lock().expect("emitter lock");
        if g.failed {
            return false;
        }
        let mut line = terminal.to_vec();
        line.push(b'\n');
        if write_chunk(&mut g.stream, &line).is_err() || finish_chunked(&mut g.stream).is_err() {
            g.failed = true;
            return false;
        }
        true
    }

    fn has_failed(&self) -> bool {
        self.inner.lock().expect("emitter lock").failed
    }
}

/// A worker batch record the front parsed off a sub-batch stream.
struct ParsedRecord {
    seq: u64,
    outcome: RecordOutcome,
}

/// How one worker batch record resolved.
enum RecordOutcome {
    /// A completed point plus its cache-hit flag.
    Point(DesignPoint, bool),
    /// Skipped by the worker's estimator pre-pass (pruned batches only).
    Pruned,
    /// An error record.
    Error,
}

/// Parses one worker NDJSON line; `None` for summary/terminal lines
/// (absorbed by the front, which emits its own aggregate summary).
fn parse_record(line: &str) -> Option<ParsedRecord> {
    let v = json::parse(line).ok()?;
    let seq = v.get("seq").and_then(Json::as_u64)?;
    if v.get("error").is_some() {
        return Some(ParsedRecord {
            seq,
            outcome: RecordOutcome::Error,
        });
    }
    if v.get("pruned").and_then(Json::as_bool) == Some(true) {
        return Some(ParsedRecord {
            seq,
            outcome: RecordOutcome::Pruned,
        });
    }
    let p = v.get("point")?;
    let r = v.get("result")?;
    let hit = v.get("cache_hit").and_then(Json::as_bool)?;
    let point = DesignPoint {
        fus: p.get("fus")?.as_u64()? as usize,
        algorithm: api::parse_algorithm(p.get("algorithm")?.as_str()?).ok()?,
        control: api::parse_control(p.get("control")?.as_str()?).ok()?,
        latency: r.get("latency")?.as_u64()?,
        area: r.get("area")?.as_f64()?,
        registers: r.get("registers")?.as_u64()? as usize,
        mux_inputs: r.get("mux_inputs")?.as_u64()? as usize,
    };
    Some(ParsedRecord {
        seq,
        outcome: RecordOutcome::Point(point, hit),
    })
}

/// Renders the sub-batch request body for one worker's points.
fn sub_batch_body(req: &api::BatchRequest, pts: &[(u64, GridPoint)]) -> Vec<u8> {
    let mut members = vec![("source".into(), Json::Str(req.source.clone()))];
    if let Some(cfg) = &req.config {
        members.push(("config".into(), cfg.clone()));
    }
    members.push((
        "points".into(),
        Json::Arr(
            pts.iter()
                .map(|(seq, p)| {
                    Json::Obj(vec![
                        ("seq".into(), Json::Num(*seq as f64)),
                        ("fus".into(), Json::Num(p.fus as f64)),
                        (
                            "algorithm".into(),
                            Json::Str(api::algorithm_str(p.algorithm)),
                        ),
                        ("control".into(), Json::Str(api::control_str(p.control))),
                    ])
                })
                .collect(),
        ),
    ));
    if req.prune {
        members.push(("prune".into(), Json::Bool(true)));
    }
    if let Some(ms) = req.deadline_ms {
        members.push(("deadline_ms".into(), Json::Num(ms as f64)));
    }
    if req.test_delay_ms > 0 {
        members.push(("test_delay_ms".into(), Json::Num(req.test_delay_ms as f64)));
    }
    Json::Obj(members).render().into_bytes()
}

/// Shared accumulator for one front batch.
struct BatchProgress {
    /// Completed `(seq, point, cache_hit)` records, any order.
    completed: Mutex<Vec<(u64, DesignPoint, bool)>>,
    /// Count of error records forwarded.
    errors: AtomicUsize,
    /// Count of pruned records forwarded (pruned batches only).
    pruned: AtomicUsize,
}

/// Streams one worker sub-batch, forwarding records to the client
/// emitter; returns the points that were *not* delivered (for
/// re-dispatch after a worker death).
#[allow(clippy::too_many_arguments)]
fn dispatch_sub_batch(
    ctx: &FrontCtx,
    worker: usize,
    req: &api::BatchRequest,
    pts: Vec<(u64, GridPoint)>,
    emitter: &SeqEmitter,
    progress: &BatchProgress,
    rank: &BTreeMap<u64, usize>,
    read_timeout: Duration,
) -> Vec<(u64, GridPoint)> {
    ctx.metrics.shard_request(&worker.to_string());
    let body = sub_batch_body(req, &pts);
    let addr = &ctx.config.workers[worker];
    let stream = match send_upstream(addr, "POST", "/v1/batch", &body, read_timeout) {
        Ok(s) => s,
        Err(_) => {
            ctx.mark_dead(worker);
            return pts;
        }
    };
    let mut reader = match ChunkedLineReader::start(stream) {
        Ok(r) => r,
        Err(_) => {
            ctx.mark_dead(worker);
            return pts;
        }
    };
    if reader.head.0 != 200 {
        // The worker rejected a sub-batch the front already validated:
        // a front/worker version skew, not a dead worker. Surface it as
        // error records rather than retrying forever.
        for (seq, _) in &pts {
            ctx.metrics.batch_point(BatchOutcome::Error);
            progress.errors.fetch_add(1, Ordering::SeqCst);
            let line = api::batch_error_record(
                *seq,
                "internal",
                &format!("worker answered {}", reader.head.0),
                None,
            );
            emitter.push(rank[seq], line.render().into_bytes());
        }
        return Vec::new();
    }
    let mut delivered = std::collections::HashSet::new();
    loop {
        match reader.next_line() {
            Ok(Some(line)) => {
                let Some(record) = parse_record(&line) else {
                    continue; // worker summary / terminal line: absorbed
                };
                delivered.insert(record.seq);
                match record.outcome {
                    RecordOutcome::Point(dp, hit) => {
                        ctx.metrics.batch_point(if hit {
                            BatchOutcome::Hit
                        } else {
                            BatchOutcome::Miss
                        });
                        progress
                            .completed
                            .lock()
                            .expect("progress lock")
                            .push((record.seq, dp, hit));
                    }
                    RecordOutcome::Pruned => {
                        ctx.metrics.points_pruned(1);
                        progress.pruned.fetch_add(1, Ordering::SeqCst);
                    }
                    RecordOutcome::Error => {
                        ctx.metrics.batch_point(BatchOutcome::Error);
                        progress.errors.fetch_add(1, Ordering::SeqCst);
                    }
                }
                emitter.push(rank[&record.seq], line.into_bytes());
                if emitter.has_failed() {
                    // Client gone: dropping the reader closes the worker
                    // connection, which cancels the worker-side batch.
                    return Vec::new();
                }
            }
            Ok(None) => break,
            Err(_) => {
                // Worker died mid-stream: whatever it did not deliver
                // re-hashes onto the survivors.
                ctx.mark_dead(worker);
                return pts
                    .into_iter()
                    .filter(|(seq, _)| !delivered.contains(seq))
                    .collect();
            }
        }
    }
    // Clean end-of-stream: every point should have a record; anything
    // missing is treated like a death for re-dispatch purposes.
    pts.into_iter()
        .filter(|(seq, _)| !delivered.contains(seq))
        .collect()
}

/// `POST /v1/batch` on the front: expand, assign, fan out, merge.
/// Returns the status for the metrics label (499 = client gone).
fn front_batch(req: &Request, stream: &mut TcpStream, ctx: &FrontCtx) -> u16 {
    let fail = |stream: &mut TcpStream, status: u16, msg: &str| {
        let _ = error_response(status, msg, true).write_to(stream);
        status
    };
    let body = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not utf-8".to_string())
        .and_then(|text| json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(msg) => return fail(stream, 400, &msg),
    };
    let parsed = match api::BatchRequest::from_json(&body) {
        Ok(p) => p,
        Err(e) => return fail(stream, 422, &e.0),
    };
    if hls_lang::is_system_source(&parsed.source) {
        return fail(stream, 422, "batch does not accept system sources");
    }
    let behavior_fp = match hls_lang::compile(&parsed.source) {
        Ok(cdfg) => cdfg_fingerprint(&cdfg),
        Err(e) => return fail(stream, 422, &format!("parse: {e}")),
    };
    let Ok(out) = stream.try_clone() else {
        return fail(stream, 500, "connection unavailable");
    };
    if start_chunked(stream, 200, "application/x-ndjson", &[]).is_err() {
        return 499;
    }
    let n = parsed.points.len();
    // Rank = position of a seq in the sorted seq list; the emitter
    // releases lines in rank order.
    let rank: BTreeMap<u64, usize> = {
        let mut seqs: Vec<u64> = parsed.points.iter().map(|(s, _)| *s).collect();
        seqs.sort_unstable();
        seqs.into_iter().enumerate().map(|(i, s)| (s, i)).collect()
    };
    let emitter = SeqEmitter::new(out);
    let progress = BatchProgress {
        completed: Mutex::new(Vec::new()),
        errors: AtomicUsize::new(0),
        pruned: AtomicUsize::new(0),
    };
    let read_timeout = parsed
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(ctx.config.deadline)
        + Duration::from_millis(10_000);
    let mut todo: Vec<(u64, GridPoint)> = parsed.points.clone();
    // Dispatch rounds: one per worker death at worst, plus the first.
    for _ in 0..=ctx.config.workers.len() {
        if todo.is_empty() || emitter.has_failed() {
            break;
        }
        let mut groups: BTreeMap<usize, Vec<(u64, GridPoint)>> = BTreeMap::new();
        let mut unroutable = Vec::new();
        for (seq, p) in todo.drain(..) {
            match ctx
                .ring
                .route(point_key(behavior_fp, &parsed.synthesizer, &p), |i| {
                    ctx.is_alive(i)
                }) {
                Some(w) => groups.entry(w).or_default().push((seq, p)),
                None => unroutable.push((seq, p)),
            }
        }
        if groups.is_empty() {
            todo = unroutable;
            break;
        }
        let undelivered: Vec<Vec<(u64, GridPoint)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|(w, pts)| {
                    let emitter = &emitter;
                    let progress = &progress;
                    let rank = &rank;
                    let parsed = &parsed;
                    scope.spawn(move || {
                        dispatch_sub_batch(
                            ctx,
                            w,
                            parsed,
                            pts,
                            emitter,
                            progress,
                            rank,
                            read_timeout,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_default())
                .collect()
        });
        todo = unroutable;
        todo.extend(undelivered.into_iter().flatten());
    }
    // Whatever no live worker could take becomes an error record, so
    // every seq is accounted for and the stream stays well-formed.
    for (seq, _) in &todo {
        ctx.metrics.batch_point(BatchOutcome::Error);
        progress.errors.fetch_add(1, Ordering::SeqCst);
        let line = api::batch_error_record(*seq, "upstream_unavailable", "no live worker", None);
        emitter.push(rank[seq], line.render().into_bytes());
    }
    if emitter.has_failed() {
        ctx.metrics.batch_cancelled();
        return 499;
    }
    let mut completed = progress.completed.into_inner().expect("progress lock");
    completed.sort_by_key(|(seq, _, _)| *seq);
    let ok = completed.len();
    let hits = completed.iter().filter(|(_, _, hit)| *hit).count();
    let pts: Vec<DesignPoint> = completed.into_iter().map(|(_, dp, _)| dp).collect();
    let summary = if parsed.prune {
        let pruned = progress.pruned.load(Ordering::SeqCst);
        let errors = n.saturating_sub(ok).saturating_sub(pruned);
        api::batch_summary_pruned(n, ok, errors, hits, pruned, &pts)
    } else {
        api::batch_summary(n, ok, n - ok, hits, &pts)
    }
    .render()
    .into_bytes();
    if !emitter.finish(&summary) {
        ctx.metrics.batch_cancelled();
        return 499;
    }
    200
}

/// A worker child process spawned by the front (or a test harness).
///
/// Holds the child's piped stdin: dropping the handle closes it, which
/// the worker treats as a graceful-drain signal; [`Drop`] then waits
/// briefly before escalating to a kill.
pub struct SpawnedWorker {
    /// The worker's bound `host:port` (parsed from its startup line).
    pub addr: String,
    child: Child,
    stdin: Option<ChildStdin>,
}

impl SpawnedWorker {
    /// Kills the worker immediately (simulating a crash).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for SpawnedWorker {
    fn drop(&mut self) {
        // Close stdin → the worker drains and exits on its own.
        drop(self.stdin.take());
        for _ in 0..50 {
            if matches!(self.child.try_wait(), Ok(Some(_))) {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns one worker process on an ephemeral port and waits for its
/// "listening on" line. `extra_env` overrides `HLS_SERVE_*` knobs.
///
/// # Errors
///
/// Fails when the process cannot start or exits before binding.
pub fn spawn_worker(exe: &Path, extra_env: &[(String, String)]) -> io::Result<SpawnedWorker> {
    let mut cmd = Command::new(exe);
    cmd.arg("127.0.0.1:0")
        .env("HLS_SERVE_ADDR", "127.0.0.1:0")
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn()?;
    let stdin = child.stdin.take();
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "worker exited before binding",
            ));
        }
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .unwrap_or("")
                .trim_end_matches(|c: char| !c.is_ascii_alphanumeric())
                .to_string();
        }
    };
    // Keep draining the worker's stderr so it never blocks on a full
    // pipe; its diagnostics pass through to ours.
    std::thread::spawn(move || {
        let mut sink = [0u8; 4096];
        loop {
            match reader.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    let _ = std::io::stderr().write_all(&sink[..n]);
                }
            }
        }
    });
    Ok(SpawnedWorker { addr, child, stdin })
}

/// Spawns `n` workers (see [`spawn_worker`]).
///
/// # Errors
///
/// Fails when any worker cannot start; already-started workers are
/// dropped (drained) on the way out.
pub fn spawn_workers(
    exe: &Path,
    n: usize,
    extra_env: &[(String, String)],
) -> io::Result<Vec<SpawnedWorker>> {
    let mut workers = Vec::with_capacity(n);
    for _ in 0..n {
        workers.push(spawn_worker(exe, extra_env)?);
    }
    Ok(workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_core::ControlStyle;
    use hls_ctrl::EncodingStyle;
    use hls_sched::Algorithm;

    #[test]
    fn ring_routes_deterministically_and_covers_all_workers() {
        let ring = Ring::new(4);
        let mut hit = [0usize; 4];
        for key in 0..1000u64 {
            let w = ring
                .route(key.wrapping_mul(0x9E3779B97F4A7C15), |_| true)
                .unwrap();
            hit[w] += 1;
            // Same key, same worker.
            assert_eq!(
                ring.route(key.wrapping_mul(0x9E3779B97F4A7C15), |_| true),
                Some(w)
            );
        }
        assert!(
            hit.iter().all(|&c| c > 0),
            "every worker takes load: {hit:?}"
        );
    }

    #[test]
    fn ring_rehashes_past_dead_workers_only_as_needed() {
        let ring = Ring::new(3);
        let key = 0xDEAD_BEEF_u64;
        let primary = ring.route(key, |_| true).unwrap();
        // Killing a different worker must not move this key.
        let other = (primary + 1) % 3;
        assert_eq!(ring.route(key, |w| w != other), Some(primary));
        // Killing the primary moves it to a live worker.
        let fallback = ring.route(key, |w| w != primary).unwrap();
        assert_ne!(fallback, primary);
        // No live workers: no route.
        assert_eq!(ring.route(key, |_| false), None);
    }

    #[test]
    fn point_key_matches_repeat_routing() {
        let base = Synthesizer::new();
        let cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        let fp = cdfg_fingerprint(&cdfg);
        let p = GridPoint {
            fus: 2,
            algorithm: Algorithm::Asap,
            control: ControlStyle::Hardwired(EncodingStyle::Binary),
        };
        assert_eq!(point_key(fp, &base, &p), point_key(fp, &base, &p));
        let q = GridPoint { fus: 3, ..p };
        assert_ne!(point_key(fp, &base, &p), point_key(fp, &base, &q));
    }

    #[test]
    fn worker_batch_records_parse_back() {
        let line = r#"{"seq":5,"cache_hit":true,"point":{"fus":2,"algorithm":"asap","control":"hardwired/binary"},"result":{"latency":10,"area":950.5,"registers":7,"mux_inputs":12}}"#;
        let rec = parse_record(line).unwrap();
        assert_eq!(rec.seq, 5);
        let RecordOutcome::Point(dp, hit) = rec.outcome else {
            panic!("expected a completed point");
        };
        assert!(hit);
        assert_eq!(dp.fus, 2);
        assert_eq!(dp.latency, 10);
        assert_eq!(dp.area, 950.5);

        let err = parse_record(r#"{"seq":3,"error":{"code":"internal","message":"x"}}"#).unwrap();
        assert_eq!(err.seq, 3);
        assert!(matches!(err.outcome, RecordOutcome::Error));

        // A pruned record counts as delivered — otherwise the front
        // would re-dispatch its seq forever.
        let pruned = parse_record(
            r#"{"seq":8,"pruned":true,"point":{"fus":1,"algorithm":"asap","control":"microcode"}}"#,
        )
        .unwrap();
        assert_eq!(pruned.seq, 8);
        assert!(matches!(pruned.outcome, RecordOutcome::Pruned));

        assert!(parse_record(r#"{"summary":{"points":2}}"#).is_none());
    }

    #[test]
    fn sub_batch_bodies_reparse_to_the_same_points() {
        let body = json::parse(
            r#"{"source":"x","config":{"optimize":false},"grid":{"fus":[1,2]},"deadline_ms":5000}"#,
        )
        .unwrap();
        let req = api::BatchRequest::from_json(&body).unwrap();
        let rendered = sub_batch_body(&req, &req.points);
        let reparsed = api::BatchRequest::from_json(
            &json::parse(std::str::from_utf8(&rendered).unwrap()).unwrap(),
        )
        .unwrap();
        assert_eq!(reparsed.points, req.points);
        assert_eq!(reparsed.deadline_ms, Some(5000));
        assert_eq!(
            reparsed.synthesizer.fingerprint(),
            req.synthesizer.fingerprint()
        );
        assert!(!reparsed.prune);
    }

    #[test]
    fn sub_batch_bodies_carry_the_prune_flag() {
        let body = json::parse(r#"{"source":"x","grid":{"fus":[1,2]},"prune":true}"#).unwrap();
        let req = api::BatchRequest::from_json(&body).unwrap();
        let rendered = sub_batch_body(&req, &req.points);
        let reparsed = api::BatchRequest::from_json(
            &json::parse(std::str::from_utf8(&rendered).unwrap()).unwrap(),
        )
        .unwrap();
        assert!(reparsed.prune, "workers must see the front's prune flag");
    }
}
