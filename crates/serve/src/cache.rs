//! Content-addressed response cache.
//!
//! Keyed on the pair already used by the exploration memo cache —
//! [`hls_core::cdfg_fingerprint`] of the compiled behavior ×
//! [`Synthesizer::fingerprint`] of the fully resolved configuration —
//! plus the request's output flags (whether Verilog was asked for). The
//! cached value is the *rendered response body*, so a hit serves bytes
//! identical to what the miss produced, by construction.
//!
//! The cache is bounded: at capacity, an insert evicts the least
//! recently inserted entry (FIFO). Synthesis is deterministic, so
//! eviction only costs latency, never correctness.
//!
//! [`Synthesizer::fingerprint`]: hls_core::Synthesizer::fingerprint

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// A bounded FIFO map from content key to rendered response body.
#[derive(Debug)]
pub struct ResponseCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Arc<Vec<u8>>>,
    order: VecDeque<u64>,
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses (0 disables it).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Looks up a body by key.
    pub fn get(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        self.inner
            .lock()
            .expect("cache lock")
            .map
            .get(&key)
            .cloned()
    }

    /// Inserts a body, evicting the oldest entry at capacity.
    pub fn insert(&self, key: u64, body: Arc<Vec<u8>>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.map.contains_key(&key) {
            return; // deterministic bodies: first insert is as good as any
        }
        while inner.map.len() >= self.capacity {
            match inner.order.pop_front() {
                Some(old) => {
                    inner.map.remove(&old);
                }
                None => break,
            }
        }
        inner.map.insert(key, body);
        inner.order.push_back(key);
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Combines an endpoint tag, the two fingerprints, and endpoint-specific
/// flags into one cache key (FNV-1a over the digests, same construction
/// as the exploration memo key). The tag keeps `/synthesize` and
/// `/explore` entries for the same behavior+config pair apart.
pub fn response_key(tag: &str, behavior_fp: u64, config_fp: u64, flags: u64) -> u64 {
    let mut w = hls_testkit::FnvWriter::new();
    w.update(tag.as_bytes());
    w.update(&behavior_fp.to_le_bytes());
    w.update(&config_fp.to_le_bytes());
    w.update(&flags.to_le_bytes());
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_inserted_body() {
        let c = ResponseCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, Arc::new(b"body".to_vec()));
        assert_eq!(c.get(1).unwrap().as_slice(), b"body");
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let c = ResponseCache::new(2);
        c.insert(1, Arc::new(vec![1]));
        c.insert(2, Arc::new(vec![2]));
        c.insert(3, Arc::new(vec![3]));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none(), "oldest evicted");
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_inserts() {
        let c = ResponseCache::new(0);
        c.insert(1, Arc::new(vec![1]));
        assert!(c.is_empty());
    }

    #[test]
    fn keys_separate_flags_and_endpoints() {
        let a = response_key("synthesize", 10, 20, 0);
        let b = response_key("synthesize", 10, 20, 1);
        let c = response_key("explore", 10, 20, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
