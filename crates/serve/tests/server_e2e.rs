//! End-to-end tests for `hls-serve`: a real listener on an ephemeral
//! port, real TCP clients, and the full synthesis pipeline behind it.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use hls_serve::{Server, ServerConfig, ServerHandle};

/// A running test server plus the thread driving its accept loop.
struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    runner: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(mut config: ServerConfig) -> Self {
        config.addr = "127.0.0.1:0".into();
        let server = Server::bind(config).expect("bind ephemeral port");
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            runner: Some(runner),
        }
    }

    /// Shuts down and asserts the accept loop exited cleanly.
    fn stop(mut self) {
        self.handle.shutdown();
        self.runner
            .take()
            .expect("runner present")
            .join()
            .expect("server thread")
            .expect("server run");
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(runner) = self.runner.take() {
            self.handle.shutdown();
            let _ = runner.join();
        }
    }
}

struct Reply {
    status: u16,
    headers: BTreeMap<String, String>,
    body: String,
}

fn roundtrip(addr: SocketAddr, raw_request: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    stream
        .write_all(raw_request.as_bytes())
        .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let mut lines = head.split("\r\n");
    let status = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Reply {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> Reply {
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

/// Repeats a request while the server sheds it (503), as a client
/// honoring `Retry-After` would; gives up after a few seconds.
fn retry_until_ok(mut req: impl FnMut() -> Reply) -> Reply {
    for _ in 0..50 {
        let reply = req();
        if reply.status != 503 {
            return reply;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("server kept shedding for 5 seconds");
}

fn synthesize_body(source: &str, fus: u32) -> String {
    format!(r#"{{"source":{source:?},"config":{{"fus":{fus},"algorithm":"list/path"}}}}"#)
}

#[test]
fn golden_synthesize_with_cache_roundtrip() {
    let server = TestServer::start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let body = synthesize_body(hls_workloads::sources::SQRT, 2);

    let first = post(server.addr, "/synthesize", &body);
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert_eq!(
        first.headers.get("x-hls-cache").map(String::as_str),
        Some("miss")
    );
    // The paper's optimized SQRT schedule: 10 control steps on 2 FUs.
    assert!(
        first.body.contains("\"latency\":10"),
        "expected 10 control steps, got: {}",
        first.body
    );
    assert!(first.body.contains("\"fingerprints\":"), "{}", first.body);

    let second = post(server.addr, "/synthesize", &body);
    assert_eq!(second.status, 200);
    assert_eq!(
        second.headers.get("x-hls-cache").map(String::as_str),
        Some("hit")
    );
    assert_eq!(
        first.body, second.body,
        "cache must serve byte-exact repeats"
    );

    // The miss ran the real pipeline, so every stage counter is nonzero;
    // timings live only in /metrics, never in response bodies.
    let metrics = get(server.addr, "/metrics");
    for stage in ["schedule", "alloc", "rtl"] {
        let needle = format!("hls_serve_stage_seconds_total{{stage=\"{stage}\"}} ");
        let seconds: f64 = metrics
            .body
            .lines()
            .find_map(|l| l.strip_prefix(&needle))
            .unwrap_or_else(|| panic!("missing {needle} in: {}", metrics.body))
            .trim()
            .parse()
            .expect("stage counter value");
        assert!(seconds > 0.0, "stage {stage} counter stayed zero");
    }
    assert!(!first.body.contains("stage"), "timings leaked into body");
    server.stop();
}

#[test]
fn concurrent_clients_get_byte_identical_responses() {
    // Cache off: every response is freshly synthesized, so identical
    // bytes here prove pipeline determinism, not cache behavior.
    let server = TestServer::start(ServerConfig {
        threads: 4,
        cache_capacity: 0,
        ..ServerConfig::default()
    });
    let body = synthesize_body(hls_workloads::sources::DIFFEQ, 2);
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let addr = server.addr;
            let body = body.clone();
            std::thread::spawn(move || post(addr, "/synthesize", &body))
        })
        .collect();
    let replies: Vec<Reply> = clients
        .into_iter()
        .map(|c| c.join().expect("client"))
        .collect();
    for reply in &replies {
        assert_eq!(reply.status, 200, "body: {}", reply.body);
        assert_eq!(
            reply.headers.get("x-hls-cache").map(String::as_str),
            Some("miss")
        );
        assert_eq!(
            reply.body, replies[0].body,
            "all clients must agree byte-for-byte"
        );
    }
    server.stop();
}

#[test]
fn explore_sweeps_the_grid_and_caches() {
    let server = TestServer::start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let body = format!(
        r#"{{"source":{:?},"grid":{{"fus":[1,2],"algorithms":["asap","list/path"]}}}}"#,
        hls_workloads::sources::SQRT
    );
    let first = post(server.addr, "/explore", &body);
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert!(first.body.contains("\"points\":"), "{}", first.body);
    assert!(first.body.contains("\"pareto\":"), "{}", first.body);
    let second = post(server.addr, "/explore", &body);
    assert_eq!(
        second.headers.get("x-hls-cache").map(String::as_str),
        Some("hit")
    );
    assert_eq!(first.body, second.body);
    server.stop();
}

#[test]
fn saturated_queue_sheds_with_503_and_retry_after() {
    // One worker, admission bound 1: while the slow request executes,
    // every further connection must be shed, not queued.
    let server = TestServer::start(ServerConfig {
        threads: 1,
        queue: 1,
        allow_test_delay: true,
        ..ServerConfig::default()
    });
    let slow_body = format!(
        r#"{{"source":{:?},"config":{{"fus":2}},"test_delay_ms":600}}"#,
        hls_workloads::sources::SQRT
    );
    let addr = server.addr;
    let slow = std::thread::spawn(move || post(addr, "/synthesize", &slow_body));
    // Give the slow request time to be admitted.
    std::thread::sleep(Duration::from_millis(150));

    let shed = post(
        server.addr,
        "/synthesize",
        &synthesize_body(hls_workloads::sources::GCD, 2),
    );
    assert_eq!(
        shed.status, 503,
        "expected load shedding, got: {}",
        shed.body
    );
    assert_eq!(
        shed.headers.get("retry-after").map(String::as_str),
        Some("1")
    );
    assert!(shed.body.contains("overloaded"), "{}", shed.body);

    let slow_reply = slow.join().expect("slow client");
    assert_eq!(slow_reply.status, 200, "admitted request must still finish");

    // Capacity returns once the slow request's slot is released; the
    // release happens shortly *after* its client sees the response, so
    // honor Retry-After like a well-behaved client would.
    let retry = retry_until_ok(|| {
        post(
            server.addr,
            "/synthesize",
            &synthesize_body(hls_workloads::sources::GCD, 2),
        )
    });
    assert_eq!(retry.status, 200, "body: {}", retry.body);

    let metrics = retry_until_ok(|| get(server.addr, "/metrics"));
    let shed_count: u64 = metrics
        .body
        .lines()
        .find_map(|l| l.strip_prefix("hls_requests_shed_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("shed counter present");
    assert!(shed_count >= 1, "metrics: {}", metrics.body);
    server.stop();
}

#[test]
fn shutdown_drains_inflight_requests() {
    let server = TestServer::start(ServerConfig {
        threads: 1,
        allow_test_delay: true,
        ..ServerConfig::default()
    });
    let body = format!(
        r#"{{"source":{:?},"config":{{"fus":2}},"test_delay_ms":400}}"#,
        hls_workloads::sources::DIFFEQ
    );
    let addr = server.addr;
    let inflight = std::thread::spawn(move || post(addr, "/synthesize", &body));
    std::thread::sleep(Duration::from_millis(100));

    // stop() returns only after run() does, and run() returns only after
    // the drain; the in-flight request must have completed with 200.
    server.stop();
    let reply = inflight.join().expect("inflight client");
    assert_eq!(
        reply.status, 200,
        "drain must finish admitted work: {}",
        reply.body
    );
}

#[test]
fn request_deadline_yields_504_with_partial_progress() {
    // The test hold runs after the deadline clock starts, so a 1 ms
    // deadline is deterministically blown before the pipeline begins.
    let server = TestServer::start(ServerConfig {
        threads: 1,
        cache_capacity: 0,
        allow_test_delay: true,
        ..ServerConfig::default()
    });
    let body = format!(
        r#"{{"source":{:?},"config":{{"fus":2}},"deadline_ms":1,"test_delay_ms":50}}"#,
        hls_workloads::sources::SQRT
    );
    let reply = post(server.addr, "/synthesize", &body);
    assert_eq!(reply.status, 504, "body: {}", reply.body);
    assert!(reply.body.contains("deadline exceeded"), "{}", reply.body);
    assert!(reply.body.contains("completed_stage"), "{}", reply.body);
    server.stop();
}

#[test]
fn injected_panic_yields_500_and_server_survives() {
    // One worker so the panicking request and the follow-up request run
    // on the *same* thread: if the panic killed the worker, the second
    // request would hang or be reset rather than answer 200.
    let server = TestServer::start(ServerConfig {
        threads: 1,
        cache_capacity: 0,
        allow_test_delay: true,
        ..ServerConfig::default()
    });
    let body = format!(
        r#"{{"source":{:?},"config":{{"fus":2}},"test_panic":true}}"#,
        hls_workloads::sources::SQRT
    );
    let reply = post(server.addr, "/synthesize", &body);
    assert_eq!(reply.status, 500, "body: {}", reply.body);
    assert!(reply.body.contains("internal error"), "{}", reply.body);
    assert!(reply.body.contains("test-injected"), "{}", reply.body);

    // The worker is alive and the in-flight slot was released.
    let after = post(
        server.addr,
        "/synthesize",
        &synthesize_body(hls_workloads::sources::GCD, 2),
    );
    assert_eq!(
        after.status, 200,
        "server must keep serving after a panic: {}",
        after.body
    );

    let metrics = get(server.addr, "/metrics");
    let panics: u64 = metrics
        .body
        .lines()
        .find_map(|l| l.strip_prefix("hls_serve_panics_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("panic counter present");
    assert_eq!(panics, 1, "metrics: {}", metrics.body);
    assert_eq!(server.handle.metrics().panics_total(), 1);

    // Without allow_test_delay the field is parsed but ignored.
    server.stop();
    let hardened = TestServer::start(ServerConfig {
        threads: 1,
        cache_capacity: 0,
        ..ServerConfig::default()
    });
    let reply = post(hardened.addr, "/synthesize", &body);
    assert_eq!(
        reply.status, 200,
        "test_panic must be inert in production config: {}",
        reply.body
    );
    hardened.stop();
}

#[test]
fn error_paths_have_correct_statuses() {
    let server = TestServer::start(ServerConfig::default());
    assert_eq!(get(server.addr, "/healthz").status, 200);
    assert_eq!(get(server.addr, "/no-such-endpoint").status, 404);
    assert_eq!(get(server.addr, "/synthesize").status, 405);
    assert_eq!(post(server.addr, "/synthesize", "{not json").status, 400);
    assert_eq!(
        post(server.addr, "/synthesize", r#"{"config":{}}"#).status,
        422,
        "missing source must be a semantic error"
    );
    assert_eq!(
        post(
            server.addr,
            "/synthesize",
            r#"{"source":"x = 1;","config":{"fus":2,"wat":true}}"#
        )
        .status,
        422,
        "unknown config keys must be rejected"
    );

    let metrics = get(server.addr, "/metrics");
    assert_eq!(metrics.status, 200);
    for needle in [
        "hls_requests_total{endpoint=\"healthz\",status=\"200\"}",
        "hls_requests_total{endpoint=\"unknown\",status=\"404\"}",
        "hls_request_duration_seconds_bucket",
        "hls_queue_depth_high_water",
    ] {
        assert!(
            metrics.body.contains(needle),
            "missing {needle} in: {}",
            metrics.body
        );
    }
    server.stop();
}

#[test]
fn system_source_synthesizes_processes_and_interconnect() {
    let server = TestServer::start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let body = format!(
        r#"{{"source":{:?},"verilog":true}}"#,
        hls_workloads::sources::PIPE3
    );

    let first = post(server.addr, "/synthesize", &body);
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert_eq!(
        first.headers.get("x-hls-cache").map(String::as_str),
        Some("miss")
    );
    assert!(first.body.contains(r#""system":"pipe3""#), "{}", first.body);
    // One metrics block per process, plus the elaborated top module and
    // its rendezvous interconnect in the returned Verilog.
    assert_eq!(first.body.matches(r#""fsm_states""#).count(), 3);
    assert!(first.body.contains("module pipe3"), "{}", first.body);
    assert!(first.body.contains("hs_channel"), "{}", first.body);

    let second = post(server.addr, "/synthesize", &body);
    assert_eq!(second.status, 200);
    assert_eq!(
        second.headers.get("x-hls-cache").map(String::as_str),
        Some("hit")
    );
    assert_eq!(
        first.body, second.body,
        "cached body must be byte-identical"
    );

    let explore = post(
        server.addr,
        "/explore",
        &format!(
            r#"{{"source":{:?},"grid":{{}}}}"#,
            hls_workloads::sources::PIPE3
        ),
    );
    assert_eq!(explore.status, 422, "{}", explore.body);
    server.stop();
}

#[test]
fn system_cache_distinguishes_channel_depth_and_reports_deadlock_verdict() {
    let server = TestServer::start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let src = |chan_decl: &str| {
        format!(
            "system s; input X; output Y; {chan_decl}
             process a; begin send c, X + 1; end;
             process b; var v; begin recv c, v; Y := v; end;
             end."
        )
    };
    let body = |chan_decl: &str| format!(r#"{{"source":{:?}}}"#, src(chan_decl));

    let rendezvous = post(server.addr, "/synthesize", &body("chan c;"));
    assert_eq!(rendezvous.status, 200, "body: {}", rendezvous.body);
    assert_eq!(
        rendezvous.headers.get("x-hls-cache").map(String::as_str),
        Some("miss")
    );
    // The acyclic two-stage pipeline is statically proven live.
    assert!(
        rendezvous.body.contains(r#""deadlock":{"verdict":"free"}"#),
        "{}",
        rendezvous.body
    );

    // Same system, but the channel is now a depth-2 FIFO. The response
    // must be freshly synthesized, not served from the rendezvous entry.
    let buffered = post(server.addr, "/synthesize", &body("chan c : fix[2];"));
    assert_eq!(buffered.status, 200, "body: {}", buffered.body);
    assert_eq!(
        buffered.headers.get("x-hls-cache").map(String::as_str),
        Some("miss"),
        "depth-2 FIFO system must not hit the rendezvous cache entry"
    );

    // And the original still hits its own entry afterwards.
    let again = post(server.addr, "/synthesize", &body("chan c;"));
    assert_eq!(
        again.headers.get("x-hls-cache").map(String::as_str),
        Some("hit")
    );
    assert_eq!(rendezvous.body, again.body);
    server.stop();
}

// ---------------------------------------------------------------------------
// v1 API surface
// ---------------------------------------------------------------------------

/// POSTs to a streaming endpoint and collects the NDJSON lines.
fn post_ndjson(
    addr: SocketAddr,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, Vec<String>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write request");
    let mut reader = hls_serve::http::ChunkedLineReader::start(stream).expect("response head");
    let (status, headers) = reader.head.clone();
    let mut lines = Vec::new();
    while let Some(line) = reader.next_line().expect("stream line") {
        lines.push(line);
    }
    (status, headers, lines)
}

fn batch_body(source: &str) -> String {
    format!(r#"{{"source":{source:?},"grid":{{"fus":[1,2],"algorithms":["asap","list/path"]}}}}"#)
}

/// Strips the volatile `cache_hit` flag so warm/cold bodies compare.
fn mask_cache_hit(s: &str) -> String {
    s.replace("\"cache_hit\":true", "\"cache_hit\":_")
        .replace("\"cache_hit\":false", "\"cache_hit\":_")
}

#[test]
fn v1_synthesize_carries_cache_hit_and_no_deprecation() {
    let server = TestServer::start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let body = synthesize_body(hls_workloads::sources::SQRT, 2);

    let legacy = post(server.addr, "/synthesize", &body);
    assert_eq!(legacy.status, 200, "body: {}", legacy.body);
    assert_eq!(
        legacy.headers.get("deprecation").map(String::as_str),
        Some("true"),
        "legacy path must be marked deprecated"
    );
    assert!(
        !legacy.body.contains("cache_hit"),
        "legacy body shape must not change: {}",
        legacy.body
    );

    let v1 = post(server.addr, "/v1/synthesize", &body);
    assert_eq!(v1.status, 200, "body: {}", v1.body);
    assert!(
        !v1.headers.contains_key("deprecation"),
        "v1 must not carry Deprecation"
    );
    assert!(
        v1.body.starts_with("{\"cache_hit\":"),
        "v1 body leads with the hit flag: {}",
        v1.body
    );
    // Same request was already cached by the legacy call: v1 and legacy
    // share the synthesis cache (the flag is spliced per-surface).
    assert!(v1.body.starts_with("{\"cache_hit\":true,"), "{}", v1.body);
    assert_eq!(
        format!("{{\"cache_hit\":true,{}", &legacy.body[1..]),
        v1.body,
        "v1 body = legacy body + spliced flag"
    );

    // Golden byte-identity: two v1 repeats agree exactly.
    let again = post(server.addr, "/v1/synthesize", &body);
    assert_eq!(again.body, v1.body);

    // The deprecated counter saw the legacy call only.
    let metrics = get(server.addr, "/v1/metrics");
    assert!(
        metrics
            .body
            .contains("hls_serve_deprecated_requests_total{endpoint=\"synthesize\"} 1"),
        "metrics: {}",
        metrics.body
    );
    server.stop();
}

#[test]
fn v1_errors_use_the_envelope() {
    let server = TestServer::start(ServerConfig {
        threads: 1,
        cache_capacity: 0,
        allow_test_delay: true,
        ..ServerConfig::default()
    });
    let bad = post(server.addr, "/v1/synthesize", "{not json");
    assert_eq!(bad.status, 400);
    assert!(
        bad.body.starts_with(r#"{"error":{"code":"bad_request""#),
        "{}",
        bad.body
    );

    let missing = post(server.addr, "/v1/synthesize", r#"{"config":{}}"#);
    assert_eq!(missing.status, 422);
    assert!(
        missing
            .body
            .starts_with(r#"{"error":{"code":"unprocessable""#),
        "{}",
        missing.body
    );

    let nowhere = get(server.addr, "/v1/nowhere");
    assert_eq!(nowhere.status, 404);
    assert!(
        nowhere.body.starts_with(r#"{"error":{"code":"not_found""#),
        "{}",
        nowhere.body
    );

    let wrong_method = get(server.addr, "/v1/synthesize");
    assert_eq!(wrong_method.status, 405);
    assert!(
        wrong_method
            .body
            .starts_with(r#"{"error":{"code":"method_not_allowed""#),
        "{}",
        wrong_method.body
    );

    // 504 carries the partial-progress stage inside the envelope.
    let late = post(
        server.addr,
        "/v1/synthesize",
        &format!(
            r#"{{"source":{:?},"config":{{"fus":2}},"deadline_ms":1,"test_delay_ms":50}}"#,
            hls_workloads::sources::SQRT
        ),
    );
    assert_eq!(late.status, 504, "body: {}", late.body);
    assert!(
        late.body
            .starts_with(r#"{"error":{"code":"deadline_exceeded""#),
        "{}",
        late.body
    );
    assert!(late.body.contains(r#""stage":"#), "{}", late.body);
    server.stop();
}

#[test]
fn v1_shed_reports_retry_after_in_both_units() {
    let server = TestServer::start(ServerConfig {
        threads: 1,
        queue: 1,
        retry_after_ms: 2500,
        allow_test_delay: true,
        ..ServerConfig::default()
    });
    let slow_body = format!(
        r#"{{"source":{:?},"config":{{"fus":2}},"test_delay_ms":600}}"#,
        hls_workloads::sources::SQRT
    );
    let addr = server.addr;
    let slow = std::thread::spawn(move || post(addr, "/synthesize", &slow_body));
    std::thread::sleep(Duration::from_millis(150));

    let shed = post(
        server.addr,
        "/v1/synthesize",
        &synthesize_body(hls_workloads::sources::GCD, 2),
    );
    assert_eq!(shed.status, 503, "body: {}", shed.body);
    // Seconds header is the ceiling of the millisecond value — the two
    // must agree in *unit*, not just both exist.
    assert_eq!(
        shed.headers.get("retry-after").map(String::as_str),
        Some("3")
    );
    assert_eq!(
        shed.headers.get("retry-after-ms").map(String::as_str),
        Some("2500")
    );
    assert!(
        shed.body.contains(r#""retry_after_ms":2500"#),
        "{}",
        shed.body
    );
    assert!(
        shed.body.starts_with(r#"{"error":{"code":"overloaded""#),
        "{}",
        shed.body
    );
    slow.join().expect("slow client");
    server.stop();
}

#[test]
fn batch_streams_records_in_seq_order_with_summary() {
    let server = TestServer::start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let body = batch_body(hls_workloads::sources::SQRT);

    let (status, headers, lines) = post_ndjson(server.addr, "/v1/batch", &body);
    assert_eq!(status, 200, "lines: {lines:?}");
    assert!(
        headers
            .iter()
            .any(|(k, v)| k == "content-type" && v == "application/x-ndjson"),
        "headers: {headers:?}"
    );
    assert_eq!(lines.len(), 5, "4 grid points + summary: {lines:?}");
    for (i, line) in lines[..4].iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"seq\":{i},\"cache_hit\":")),
            "record {i} out of order: {line}"
        );
        assert!(line.contains(r#""point":"#), "{line}");
        assert!(line.contains(r#""result":"#), "{line}");
        assert!(line.contains(r#""latency":"#), "{line}");
    }
    let summary = &lines[4];
    assert!(
        summary.starts_with(r#"{"summary":{"points":4,"ok":4,"errors":0,"cache_hits":0"#),
        "{summary}"
    );
    assert!(summary.contains(r#""pareto":"#), "{summary}");

    // A repeat of the same batch is all cache hits and otherwise
    // byte-identical, line for line.
    let (_, _, warm) = post_ndjson(server.addr, "/v1/batch", &body);
    assert_eq!(warm.len(), 5);
    for (cold_line, warm_line) in lines[..4].iter().zip(&warm[..4]) {
        assert!(
            warm_line.contains("\"cache_hit\":true"),
            "repeat batch must hit: {warm_line}"
        );
        assert_eq!(mask_cache_hit(cold_line), mask_cache_hit(warm_line));
    }
    assert!(
        warm[4].starts_with(r#"{"summary":{"points":4,"ok":4,"errors":0,"cache_hits":4"#),
        "{}",
        warm[4]
    );

    // And a second warm run is byte-identical to the first, whole-stream.
    let (_, _, warm2) = post_ndjson(server.addr, "/v1/batch", &body);
    assert_eq!(warm, warm2, "warm batch streams must be byte-stable");
    server.stop();
}

#[test]
fn batch_with_blown_deadline_yields_error_records() {
    let server = TestServer::start(ServerConfig {
        threads: 1,
        cache_capacity: 0,
        allow_test_delay: true,
        ..ServerConfig::default()
    });
    let body = format!(
        r#"{{"source":{:?},"grid":{{"fus":[1,2]}},"deadline_ms":1,"test_delay_ms":50}}"#,
        hls_workloads::sources::SQRT
    );
    let (status, _, lines) = post_ndjson(server.addr, "/v1/batch", &body);
    assert_eq!(status, 200, "stream already started: {lines:?}");
    assert_eq!(lines.len(), 3, "{lines:?}");
    for line in &lines[..2] {
        assert!(
            line.contains(r#""error":{"code":"deadline_exceeded""#),
            "{line}"
        );
    }
    assert!(
        lines[2].starts_with(r#"{"summary":{"points":2,"ok":0,"errors":2"#),
        "{}",
        lines[2]
    );
    server.stop();
}

#[test]
fn batch_survives_a_slow_reader() {
    let server = TestServer::start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let body = batch_body(hls_workloads::sources::DIFFEQ);
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
        .write_all(
            format!(
                "POST /v1/batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write request");
    let mut reader = hls_serve::http::ChunkedLineReader::start(stream).expect("head");
    assert_eq!(reader.head.0, 200);
    let mut lines = Vec::new();
    while let Some(line) = reader.next_line().expect("line") {
        lines.push(line);
        // Dawdle between reads: the server must keep the stream alive
        // and deliver every record regardless of client pacing.
        std::thread::sleep(Duration::from_millis(100));
    }
    assert_eq!(lines.len(), 5, "{lines:?}");
    assert!(lines[4].contains("\"summary\""), "{}", lines[4]);
    server.stop();
}

#[test]
fn batch_client_disconnect_cancels_the_batch() {
    let server = TestServer::start(ServerConfig {
        threads: 2,
        cache_capacity: 0,
        allow_test_delay: true,
        ..ServerConfig::default()
    });
    let body = format!(
        r#"{{"source":{:?},"grid":{{"fus":[1,2,3],"algorithms":["asap","list/path"]}},"test_delay_ms":200}}"#,
        hls_workloads::sources::SQRT
    );
    {
        let mut stream = TcpStream::connect(server.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        stream
            .write_all(
                format!(
                    "POST /v1/batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("write request");
        let mut reader = hls_serve::http::ChunkedLineReader::start(stream).expect("head");
        assert_eq!(reader.head.0, 200);
        // Read one record, then vanish mid-stream.
        let first = reader.next_line().expect("first line");
        assert!(first.is_some());
    } // drop = disconnect (unread data pending → RST on next write)

    // The server notices on its next emit, cancels the remaining points,
    // and counts the cancellation.
    let mut cancelled = 0u64;
    for _ in 0..100 {
        let metrics = get(server.addr, "/metrics");
        cancelled = metrics
            .body
            .lines()
            .find_map(|l| l.strip_prefix("hls_serve_batch_cancelled_total "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        if cancelled >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert_eq!(cancelled, 1, "disconnect must cancel the batch");

    // The server still serves normally afterwards.
    let after = post(
        server.addr,
        "/v1/synthesize",
        &synthesize_body(hls_workloads::sources::GCD, 2),
    );
    assert_eq!(after.status, 200, "{}", after.body);
    server.stop();
}

#[test]
fn batch_rejects_bad_requests_before_streaming() {
    let server = TestServer::start(ServerConfig::default());
    let no_points = post(
        server.addr,
        "/v1/batch",
        r#"{"source":"x = 1;","points":[]}"#,
    );
    assert_eq!(no_points.status, 422, "{}", no_points.body);
    assert!(
        no_points
            .body
            .starts_with(r#"{"error":{"code":"unprocessable""#),
        "{}",
        no_points.body
    );

    let dup = post(
        server.addr,
        "/v1/batch",
        r#"{"source":"x = 1;","points":[{"seq":1,"fus":2},{"seq":1,"fus":3}]}"#,
    );
    assert_eq!(dup.status, 422, "duplicate seqs: {}", dup.body);

    let legacy = post(server.addr, "/batch", r#"{}"#);
    assert_eq!(legacy.status, 404, "batch is v1-only: {}", legacy.body);
    server.stop();
}

/// `/v1/explore` with `"prune":true`: the pruned sweep's pareto front is
/// byte-identical to the exhaustive sweep's, the response carries
/// `prune_stats` with full agreement, and the pruned-point counter moves.
#[test]
fn pruned_explore_matches_exhaustive_pareto_and_reports_stats() {
    let server = TestServer::start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let grid = r#"{"fus":[1,2,3,4],"algorithms":["asap","list/path","list/urgency"],"controls":["hardwired/binary","microcode"]}"#;
    let exhaustive = post(
        server.addr,
        "/v1/explore",
        &format!(
            r#"{{"source":{:?},"grid":{grid}}}"#,
            hls_workloads::sources::SQRT
        ),
    );
    assert_eq!(exhaustive.status, 200, "{}", exhaustive.body);
    let pruned = post(
        server.addr,
        "/v1/explore",
        &format!(
            r#"{{"source":{:?},"grid":{grid},"prune":true}}"#,
            hls_workloads::sources::SQRT
        ),
    );
    assert_eq!(pruned.status, 200, "{}", pruned.body);

    // Both bodies render the front under the same `"pareto":[…]` key.
    let front = |body: &str| {
        let start = body.find("\"pareto\":[").expect("pareto member");
        let rest = &body[start..];
        let end = rest.find("],").expect("pareto end");
        rest[..=end].to_string()
    };
    assert_eq!(
        front(&exhaustive.body),
        front(&pruned.body),
        "pruned front must equal the exhaustive front byte-for-byte"
    );
    assert!(
        pruned.body.contains("\"prune_stats\":{\"estimated\":24,"),
        "{}",
        pruned.body
    );
    assert!(
        pruned.body.contains("\"agreement\":1"),
        "estimator self-check must hold: {}",
        pruned.body
    );
    assert!(
        !exhaustive.body.contains("prune_stats"),
        "exhaustive body shape must not change: {}",
        exhaustive.body
    );

    // Pruned and exhaustive responses cache under different keys.
    let again = post(
        server.addr,
        "/v1/explore",
        &format!(
            r#"{{"source":{:?},"grid":{grid},"prune":true}}"#,
            hls_workloads::sources::SQRT
        ),
    );
    assert!(
        again.body.starts_with("{\"cache_hit\":true,"),
        "{}",
        again.body
    );
    assert_eq!(
        mask_cache_hit(&again.body),
        mask_cache_hit(&pruned.body),
        "warm pruned response must be byte-stable"
    );

    let metrics = get(server.addr, "/v1/metrics");
    let total: u64 = metrics
        .body
        .lines()
        .find_map(|l| l.strip_prefix("hls_serve_points_pruned_total "))
        .expect("pruned counter")
        .trim()
        .parse()
        .expect("counter value");
    assert!(total > 0, "control-collapsed grid must prune: {total}");
    server.stop();
}

/// `/v1/batch` with `"prune":true`: pruned seqs stream back as
/// `{"seq":k,"pruned":true,…}` records, the summary carries the pruned
/// count, and every seq is accounted for exactly once.
#[test]
fn pruned_batch_streams_pruned_records_and_summary() {
    let server = TestServer::start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let body = format!(
        r#"{{"source":{:?},"grid":{{"fus":[1,2],"algorithms":["asap","list/path"],"controls":["hardwired/binary","microcode"]}},"prune":true}}"#,
        hls_workloads::sources::SQRT
    );
    let (status, _, lines) = post_ndjson(server.addr, "/v1/batch", &body);
    assert_eq!(status, 200);
    assert_eq!(lines.len(), 9, "8 records + summary: {lines:?}");
    let pruned = lines
        .iter()
        .filter(|l| l.contains("\"pruned\":true"))
        .count();
    let ok = lines.iter().filter(|l| l.contains("\"result\":")).count();
    assert!(pruned > 0, "control-collapsed grid must prune: {lines:?}");
    assert_eq!(ok + pruned, 8, "every seq resolves once: {lines:?}");
    let summary = lines.last().expect("summary line");
    assert!(
        summary.contains(&format!(
            "\"ok\":{ok},\"errors\":0,\"cache_hits\":0,\"pruned\":{pruned}"
        )),
        "{summary}"
    );
    assert!(summary.contains("\"pareto\":["), "{summary}");

    // Same grid without pruning: the summary pareto front is identical.
    let exhaustive_body = format!(
        r#"{{"source":{:?},"grid":{{"fus":[1,2],"algorithms":["asap","list/path"],"controls":["hardwired/binary","microcode"]}}}}"#,
        hls_workloads::sources::SQRT
    );
    let (_, _, exhaustive) = post_ndjson(server.addr, "/v1/batch", &exhaustive_body);
    let pareto = |line: &str| {
        let start = line.find("\"pareto\":[").expect("pareto member");
        line[start..].to_string()
    };
    assert_eq!(
        pareto(summary),
        pareto(exhaustive.last().expect("summary")),
        "pruned batch front must equal the exhaustive front"
    );
    server.stop();
}
