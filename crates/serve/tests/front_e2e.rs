//! End-to-end tests for the shard front: a real front listener over
//! real workers — in-process [`hls_serve::Server`] instances for the
//! routing/affinity tests, and actual `hls-serve` child processes for
//! the worker-kill test (only a killed *process* exercises the
//! dead-worker re-hash the way production does).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::Duration;

use hls_serve::shard::{self, Front, FrontConfig};
use hls_serve::{Server, ServerConfig, ServerHandle};

/// A front over in-process workers, all driven by test threads.
struct Cluster {
    front_addr: SocketAddr,
    front: hls_serve::shard::FrontHandle,
    workers: Vec<ServerHandle>,
    runners: Vec<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Cluster {
    fn start(n: usize, worker_config: ServerConfig) -> Self {
        let mut workers = Vec::new();
        let mut runners = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..n {
            let mut config = worker_config.clone();
            config.addr = "127.0.0.1:0".into();
            let server = Server::bind(config).expect("bind worker");
            addrs.push(server.local_addr().to_string());
            workers.push(server.handle());
            runners.push(std::thread::spawn(move || server.run()));
        }
        let front = Front::bind(FrontConfig {
            addr: "127.0.0.1:0".into(),
            workers: addrs,
            threads: 2,
            queue: 32,
            deadline: Duration::from_secs(30),
            retry_after_ms: 1000,
        })
        .expect("bind front");
        let front_addr = front.local_addr();
        let handle = front.handle();
        runners.push(std::thread::spawn(move || front.run()));
        Cluster {
            front_addr,
            front: handle,
            workers,
            runners,
        }
    }

    fn stop(mut self) {
        self.front.shutdown();
        for w in &self.workers {
            w.shutdown();
        }
        for r in self.runners.drain(..) {
            r.join().expect("runner thread").expect("runner result");
        }
    }
}

struct Reply {
    status: u16,
    headers: BTreeMap<String, String>,
    body: String,
}

fn roundtrip(addr: SocketAddr, raw_request: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
        .write_all(raw_request.as_bytes())
        .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let mut lines = head.split("\r\n");
    let status = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Reply {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> Reply {
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

/// Streams a `/v1/batch` POST through the front, returning the lines.
fn post_ndjson(addr: SocketAddr, body: &str) -> (u16, Vec<String>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    stream
        .write_all(
            format!(
                "POST /v1/batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write request");
    let mut reader = hls_serve::http::ChunkedLineReader::start(stream).expect("head");
    let status = reader.head.0;
    let mut lines = Vec::new();
    while let Some(line) = reader.next_line().expect("line") {
        lines.push(line);
    }
    (status, lines)
}

fn synthesize_body(source: &str, fus: u32) -> String {
    format!(r#"{{"source":{source:?},"config":{{"fus":{fus},"algorithm":"list/path"}}}}"#)
}

#[test]
fn front_proxies_routes_and_aggregates_health() {
    let cluster = Cluster::start(2, ServerConfig::default());

    // A synthesize request proxied through the front behaves exactly
    // like one against a worker, v1 and legacy alike.
    let body = synthesize_body(hls_workloads::sources::SQRT, 2);
    let v1 = post(cluster.front_addr, "/v1/synthesize", &body);
    assert_eq!(v1.status, 200, "body: {}", v1.body);
    assert!(v1.body.starts_with("{\"cache_hit\":false,"), "{}", v1.body);
    assert!(
        !v1.headers.contains_key("deprecation"),
        "v1 proxied response must not be deprecated"
    );

    // Cache affinity: the repeat routes to the same worker and hits.
    let again = post(cluster.front_addr, "/v1/synthesize", &body);
    assert!(
        again.body.starts_with("{\"cache_hit\":true,"),
        "repeat must hit the owning worker's cache: {}",
        again.body
    );

    // The legacy path keeps the worker's Deprecation marker end-to-end.
    let legacy = post(cluster.front_addr, "/synthesize", &body);
    assert_eq!(legacy.status, 200);
    assert_eq!(
        legacy.headers.get("deprecation").map(String::as_str),
        Some("true")
    );
    assert_eq!(
        legacy.headers.get("x-hls-cache").map(String::as_str),
        Some("hit"),
        "legacy and v1 share the worker cache"
    );

    // Health aggregation across both workers.
    let health = get(cluster.front_addr, "/v1/healthz");
    assert_eq!(health.status, 200, "{}", health.body);
    assert!(health.body.contains(r#""status":"ok""#), "{}", health.body);
    assert_eq!(health.body.matches(r#""alive":true"#).count(), 2);

    // The front's own metrics carry the per-worker routing counter.
    let metrics = get(cluster.front_addr, "/v1/metrics");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics
            .body
            .contains("hls_serve_shard_requests_total{worker="),
        "metrics: {}",
        metrics.body
    );
    let routed: u64 = metrics
        .body
        .lines()
        .filter_map(|l| l.strip_prefix("hls_serve_shard_requests_total{worker="))
        .filter_map(|l| l.split("} ").nth(1))
        .filter_map(|v| v.trim().parse::<u64>().ok())
        .sum();
    assert_eq!(routed, 3, "three proxied requests: {}", metrics.body);

    assert_eq!(get(cluster.front_addr, "/v1/nowhere").status, 404);
    cluster.stop();
}

#[test]
fn front_batch_has_cache_affinity_and_no_duplicate_synthesis() {
    let cluster = Cluster::start(2, ServerConfig::default());
    let body = format!(
        r#"{{"source":{:?},"grid":{{"fus":[1,2,3,4],"algorithms":["asap","list/path"]}}}}"#,
        hls_workloads::sources::SQRT
    );

    // Cold batch: 8 points, all misses, records in seq order.
    let (status, cold) = post_ndjson(cluster.front_addr, &body);
    assert_eq!(status, 200, "{cold:?}");
    assert_eq!(cold.len(), 9, "8 records + summary: {cold:?}");
    for (i, line) in cold[..8].iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"seq\":{i},\"cache_hit\":false,")),
            "cold record {i}: {line}"
        );
    }
    assert!(
        cold[8].starts_with(r#"{"summary":{"points":8,"ok":8,"errors":0,"cache_hits":0"#),
        "{}",
        cold[8]
    );

    // Every point was synthesized exactly once *across the cluster*:
    // per-worker miss counters sum to 8 — no cross-worker duplicates —
    // and both workers did some of the work.
    let mut misses = Vec::new();
    for w in &cluster.workers {
        let (_, miss, _) = w.metrics().batch_point_totals();
        misses.push(miss);
    }
    assert_eq!(
        misses.iter().sum::<u64>(),
        8,
        "per-worker misses {misses:?}"
    );
    assert!(
        misses.iter().all(|&m| m > 0),
        "both workers must take part of the grid: {misses:?}"
    );

    // Warm batch: same grid, every point hits the cache of the worker
    // that owns it (affinity), zero fresh synthesis anywhere.
    let (_, warm) = post_ndjson(cluster.front_addr, &body);
    assert_eq!(warm.len(), 9);
    for line in &warm[..8] {
        assert!(
            line.contains("\"cache_hit\":true"),
            "warm batch must be all hits: {line}"
        );
    }
    assert!(
        warm[8].starts_with(r#"{"summary":{"points":8,"ok":8,"errors":0,"cache_hits":8"#),
        "{}",
        warm[8]
    );
    let after: u64 = cluster
        .workers
        .iter()
        .map(|w| w.metrics().batch_point_totals().1)
        .sum();
    assert_eq!(after, 8, "warm batch must not re-synthesize anywhere");

    // Two warm runs are byte-identical, line for line.
    let (_, warm2) = post_ndjson(cluster.front_addr, &body);
    assert_eq!(warm, warm2, "front batch streams must be byte-stable");
    cluster.stop();
}

#[test]
fn front_batch_accepts_explicit_points_and_rejects_junk() {
    let cluster = Cluster::start(2, ServerConfig::default());
    let body = format!(
        r#"{{"source":{:?},"points":[{{"seq":7,"fus":2}},{{"seq":3,"fus":1}}]}}"#,
        hls_workloads::sources::GCD
    );
    let (status, lines) = post_ndjson(cluster.front_addr, &body);
    assert_eq!(status, 200, "{lines:?}");
    assert_eq!(lines.len(), 3, "{lines:?}");
    // Explicit seqs stream in ascending seq order regardless of the
    // order they were given or which worker computed them.
    assert!(lines[0].starts_with("{\"seq\":3,"), "{}", lines[0]);
    assert!(lines[1].starts_with("{\"seq\":7,"), "{}", lines[1]);
    assert!(lines[2].contains("\"summary\""), "{}", lines[2]);

    let bad = post(cluster.front_addr, "/v1/batch", r#"{"source":"x = 1;"}"#);
    assert_eq!(bad.status, 422, "{}", bad.body);
    assert!(
        bad.body.starts_with(r#"{"error":{"code":"unprocessable""#),
        "{}",
        bad.body
    );
    cluster.stop();
}

/// Spawns real `hls-serve` worker processes for the kill test.
fn spawn_real_workers(n: usize) -> Vec<shard::SpawnedWorker> {
    let exe = Path::new(env!("CARGO_BIN_EXE_hls-serve"));
    shard::spawn_workers(exe, n, &[("HLS_SERVE_ALLOW_TEST_DELAY".into(), "1".into())])
        .expect("spawn workers")
}

#[test]
fn front_rehashes_batch_when_a_worker_dies_midstream() {
    let mut workers = spawn_real_workers(2);
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let front = Front::bind(FrontConfig {
        addr: "127.0.0.1:0".into(),
        workers: addrs,
        threads: 2,
        queue: 32,
        deadline: Duration::from_secs(60),
        retry_after_ms: 1000,
    })
    .expect("bind front");
    let front_addr = front.local_addr();
    let handle = front.handle();
    let runner = std::thread::spawn(move || front.run());

    // A 12-point batch paced at 150 ms/point: slow enough that killing a
    // worker half a second in strands points mid-flight.
    let body = format!(
        r#"{{"source":{:?},"grid":{{"fus":[1,2,3],"algorithms":["asap","list/path"],"controls":["hardwired/binary","microcode"]}},"test_delay_ms":150}}"#,
        hls_workloads::sources::SQRT
    );
    let killer = {
        let mut victim = workers.remove(0);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(500));
            victim.kill();
        })
    };
    let (status, lines) = post_ndjson(front_addr, &body);
    killer.join().expect("killer thread");
    assert_eq!(status, 200, "{lines:?}");
    assert_eq!(lines.len(), 13, "12 records + summary: {lines:?}");
    // Every seq is accounted for, in order, and none was abandoned as
    // upstream_unavailable — the survivor absorbed the stranded points.
    for (i, line) in lines[..12].iter().enumerate() {
        assert!(line.starts_with(&format!("{{\"seq\":{i},")), "{line}");
        assert!(
            !line.contains("upstream_unavailable"),
            "point {i} must re-hash to the survivor, not be dropped: {line}"
        );
    }
    assert!(
        lines[12].contains(r#""errors":0"#),
        "all points must complete on the survivor: {}",
        lines[12]
    );

    // Health now reports the dead worker.
    let health = get(front_addr, "/v1/healthz");
    assert!(
        health.body.contains(r#""status":"degraded""#),
        "{}",
        health.body
    );
    assert_eq!(health.body.matches(r#""alive":false"#).count(), 1);

    // Kill the survivor too: single requests now shed with 503.
    for w in &mut workers {
        w.kill();
    }
    let down = post(
        front_addr,
        "/v1/synthesize",
        &synthesize_body(hls_workloads::sources::GCD, 2),
    );
    assert_eq!(down.status, 503, "{}", down.body);
    assert!(
        down.body.starts_with(r#"{"error":{"code":"overloaded""#),
        "{}",
        down.body
    );
    assert!(down.body.contains("retry_after_ms"), "{}", down.body);

    handle.shutdown();
    runner.join().expect("front thread").expect("front run");
}

/// A pruned batch through the front: the prune flag reaches the workers,
/// pruned records stream back in seq order and count as delivered (no
/// re-dispatch), and the front summary carries the pruned count.
#[test]
fn front_batch_passes_the_prune_flag_through() {
    let cluster = Cluster::start(2, ServerConfig::default());
    let body = format!(
        r#"{{"source":{:?},"grid":{{"fus":[1,2],"algorithms":["asap","list/path"],"controls":["hardwired/binary","microcode"]}},"prune":true}}"#,
        hls_workloads::sources::SQRT
    );
    let (status, lines) = post_ndjson(cluster.front_addr, &body);
    assert_eq!(status, 200, "{lines:?}");
    assert_eq!(lines.len(), 9, "8 records + summary: {lines:?}");
    let pruned = lines
        .iter()
        .filter(|l| l.contains("\"pruned\":true"))
        .count();
    let ok = lines.iter().filter(|l| l.contains("\"result\":")).count();
    assert!(pruned > 0, "control-collapsed grid must prune: {lines:?}");
    assert_eq!(ok + pruned, 8, "every seq resolves once: {lines:?}");
    for (i, line) in lines[..8].iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"seq\":{i},")),
            "records stream in seq order: {line}"
        );
    }
    assert!(
        lines[8].contains(&format!(
            "\"errors\":0,\"cache_hits\":0,\"pruned\":{pruned}"
        )),
        "{}",
        lines[8]
    );
    cluster.stop();
}
