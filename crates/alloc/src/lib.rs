//! # hls-alloc — data-path allocation
//!
//! Every allocation technique of §3.2 of the DAC'88 tutorial:
//!
//! * [`value_intervals`] / [`max_live`] — value lifetime analysis.
//! * [`left_edge`] (REAL) and [`color_registers`] — register allocation.
//! * [`greedy_allocation`] — iterative/constructive, interconnect-aware FU
//!   binding (Fig. 6).
//! * [`clique_allocation`] over [`CompatGraph`]s with exact Bron–Kerbosch
//!   ([`max_clique`]) or Tseng/Siewiorek merging (Fig. 7).
//! * [`exhaustive_binding`] — Hafer-style optimal search (ground truth).
//! * [`connections`] / [`bus_allocation`] — multiplexer vs bus
//!   interconnect.
//! * [`build_datapath`] — whole-behavior datapath assembly feeding the
//!   controller generator, the RTL simulator, and netlist export.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clique;
mod datapath;
mod error;
mod fu;
mod ilp;
mod interconnect;
mod lifetime;
mod registers;

pub use clique::{max_clique, partition_max_clique, partition_tseng, CompatGraph};
pub use datapath::{
    build_datapath, cell_class_for, global_source, memory_names, variable_widths, BlockBinding,
    Datapath, FuDesc, FuStrategy, OutputWrite, RegDesc, RegKind,
};
pub use error::AllocError;
pub use fu::{
    clique_allocation, fu_lower_bound, greedy_allocation, CliqueMethod, FuAllocation, FuInstance,
};
pub use ilp::{binding_cost, exhaustive_binding, OptimalBinding, FU_WEIGHT};
pub use interconnect::{bus_allocation, connections, source_of, BusReport, Connections, Source};
pub use lifetime::{max_live, render_gantt, value_intervals, Interval};
pub use registers::{color_registers, left_edge, minimum_registers, RegisterAllocation};
