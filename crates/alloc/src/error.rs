//! Allocation errors.

use std::error::Error;
use std::fmt;

/// A problem while assembling a datapath.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocError {
    /// A block lacks a schedule.
    MissingSchedule {
        /// The block name.
        block: String,
    },
    /// A value needing storage received no register.
    UnboundValue {
        /// Debug rendering of the value id.
        value: String,
    },
    /// An operation was left without a functional unit.
    UnboundOp {
        /// Debug rendering of the op id.
        op: String,
    },
    /// The library lacks a cell class required by the datapath.
    MissingCell {
        /// The class name.
        class: String,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::MissingSchedule { block } => {
                write!(f, "block `{block}` has no schedule")
            }
            AllocError::UnboundValue { value } => {
                write!(f, "value {value} needs storage but has no register")
            }
            AllocError::UnboundOp { op } => write!(f, "operation {op} has no functional unit"),
            AllocError::MissingCell { class } => {
                write!(f, "library lacks a cell for class `{class}`")
            }
        }
    }
}

impl Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = AllocError::MissingSchedule {
            block: "body".into(),
        };
        assert!(e.to_string().contains("body"));
        fn assert_err<E: Error + Send + Sync>() {}
        assert_err::<AllocError>();
    }
}
