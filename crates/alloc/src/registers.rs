//! Register allocation: the left-edge algorithm (REAL — tutorial
//! reference [15]) and graph coloring.

use std::collections::HashMap;

use hls_cdfg::ValueId;

use crate::lifetime::{max_live, Interval};

/// The result of register allocation over one block's intervals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegisterAllocation {
    /// Register index per value.
    pub assignment: HashMap<ValueId, usize>,
    /// Number of registers used.
    pub count: usize,
}

impl RegisterAllocation {
    /// The register holding `value`, if stored.
    pub fn register_of(&self, value: ValueId) -> Option<usize> {
        self.assignment.get(&value).copied()
    }

    /// Checks that no two values sharing a register overlap.
    pub fn is_valid(&self, intervals: &[Interval]) -> bool {
        for (i, a) in intervals.iter().enumerate() {
            for b in &intervals[i + 1..] {
                if self.assignment.get(&a.value) == self.assignment.get(&b.value) && a.overlaps(b) {
                    return false;
                }
            }
        }
        intervals
            .iter()
            .all(|i| self.assignment.contains_key(&i.value))
    }
}

/// REAL's left-edge algorithm: sort by start ("the earliest value to
/// assign at each step"), pack each value into the lowest-numbered
/// register free at its start.
///
/// Provably uses exactly [`max_live`] registers — the minimum.
pub fn left_edge(intervals: &[Interval]) -> RegisterAllocation {
    let mut sorted: Vec<&Interval> = intervals.iter().collect();
    sorted.sort_by_key(|i| (i.start, i.end, i.value));
    let mut reg_free_at: Vec<u32> = Vec::new(); // first step each register is free again
    let mut assignment = HashMap::new();
    for iv in sorted {
        let slot = reg_free_at.iter().position(|&free| free <= iv.start);
        let reg = match slot {
            Some(r) => r,
            None => {
                reg_free_at.push(0);
                reg_free_at.len() - 1
            }
        };
        reg_free_at[reg] = iv.end + 1;
        assignment.insert(iv.value, reg);
    }
    RegisterAllocation {
        count: reg_free_at.len(),
        assignment,
    }
}

/// Greedy graph coloring on the interference graph, highest-degree first.
///
/// Interval interference graphs are, in fact, interval graphs, so both
/// methods reach the optimum; coloring is here as the general technique
/// (and for the comparison in experiment E10).
pub fn color_registers(intervals: &[Interval]) -> RegisterAllocation {
    let n = intervals.len();
    let mut degree: Vec<usize> = vec![0; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && intervals[i].overlaps(&intervals[j]) {
                degree[i] += 1;
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(degree[i]), intervals[i].value));
    let mut color: Vec<Option<usize>> = vec![None; n];
    let mut count = 0;
    for &i in &order {
        let mut used: Vec<bool> = vec![false; count + 1];
        for j in 0..n {
            if j != i && intervals[i].overlaps(&intervals[j]) {
                if let Some(c) = color[j] {
                    if c < used.len() {
                        used[c] = true;
                    }
                }
            }
        }
        // There is always a free color in 0..=used.len(): either a gap in
        // the used set or the fresh color past its end.
        let c = (0..used.len()).find(|&c| !used[c]).unwrap_or(used.len());
        color[i] = Some(c);
        count = count.max(c + 1);
    }
    // The loop above colored every index; filter_map keeps this total
    // without a panicking path.
    let assignment = intervals
        .iter()
        .enumerate()
        .filter_map(|(i, iv)| color[i].map(|c| (iv.value, c)))
        .collect();
    RegisterAllocation { assignment, count }
}

/// The provable minimum register count for these intervals.
pub fn minimum_registers(intervals: &[Interval]) -> usize {
    max_live(intervals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_cdfg::Id;

    fn iv(raw: u32, start: u32, end: u32) -> Interval {
        Interval {
            value: Id::from_raw(raw),
            start,
            end,
        }
    }

    #[test]
    fn left_edge_reaches_max_live() {
        // Three overlapping then one reusable.
        let ivs = vec![iv(0, 0, 2), iv(1, 1, 3), iv(2, 2, 2), iv(3, 3, 5)];
        let a = left_edge(&ivs);
        assert!(a.is_valid(&ivs));
        assert_eq!(a.count, minimum_registers(&ivs));
        assert_eq!(a.count, 3);
        // Value 3 (starts at 3) reuses a register freed by value 0 or 2.
        assert!(a.register_of(Id::from_raw(3)).unwrap() < 3);
    }

    #[test]
    fn coloring_matches_left_edge_on_interval_graphs() {
        let ivs = vec![
            iv(0, 0, 4),
            iv(1, 0, 1),
            iv(2, 2, 3),
            iv(3, 1, 2),
            iv(4, 4, 6),
            iv(5, 5, 6),
        ];
        let le = left_edge(&ivs);
        let gc = color_registers(&ivs);
        assert!(le.is_valid(&ivs));
        assert!(gc.is_valid(&ivs));
        assert_eq!(le.count, gc.count);
        assert_eq!(le.count, minimum_registers(&ivs));
    }

    #[test]
    fn disjoint_intervals_share_one_register() {
        let ivs = vec![iv(0, 0, 0), iv(1, 1, 1), iv(2, 2, 2)];
        let a = left_edge(&ivs);
        assert_eq!(a.count, 1);
        assert!(a.is_valid(&ivs));
    }

    #[test]
    fn empty_input() {
        let a = left_edge(&[]);
        assert_eq!(a.count, 0);
        assert!(a.is_valid(&[]));
    }

    fn gen_spans(rng: &mut hls_testkit::SplitMix64) -> Vec<(u32, u32)> {
        rng.vec(1, 40, |r| (r.u32_in(0, 20), r.u32_in(0, 8)))
    }

    fn to_intervals(spans: &[(u32, u32)]) -> Vec<Interval> {
        spans
            .iter()
            .enumerate()
            .map(|(i, &(s, l))| iv(i as u32, s, s + l))
            .collect()
    }

    /// Left-edge is always valid and always hits the max-live bound.
    #[test]
    fn left_edge_optimal_on_random_intervals() {
        hls_testkit::forall(&hls_testkit::Config::default(), gen_spans, |spans| {
            let ivs = to_intervals(spans);
            let a = left_edge(&ivs);
            assert!(a.is_valid(&ivs));
            assert_eq!(a.count, minimum_registers(&ivs));
        });
    }

    /// Coloring is always valid and never beats the lower bound.
    #[test]
    fn coloring_valid_on_random_intervals() {
        hls_testkit::forall(&hls_testkit::Config::default(), gen_spans, |spans| {
            let ivs = to_intervals(spans);
            let a = color_registers(&ivs);
            assert!(a.is_valid(&ivs));
            assert!(a.count >= minimum_registers(&ivs));
        });
    }
}
