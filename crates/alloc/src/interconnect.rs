//! Interconnect modeling: sources, multiplexer cost, and bus allocation.
//!
//! "Communication paths, including buses and multiplexers, must be chosen
//! so that the functional units and registers are connected as necessary
//! ... The most simple type of communication path allocation is based only
//! on multiplexers. Buses, which can be seen as distributed multiplexers,
//! offer the advantage of requiring less wiring, but they may be slower"
//! (§2).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use hls_cdfg::{DataFlowGraph, OpId, OpKind, ValueDef, ValueId};
use hls_sched::{OpClassifier, Schedule};

use crate::fu::FuAllocation;
use crate::registers::RegisterAllocation;

/// Where a datapath operand comes from. Two equal sources share a wire;
/// distinct sources into the same port need a multiplexer input each.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Source {
    /// A wired constant (raw Q16.16 bits).
    Const(i64),
    /// A register.
    Reg(usize),
    /// A combinational path, canonically described (e.g. the output of FU
    /// 2 through a wired right-shift): `"fu2>>1"`.
    Wire(String),
}

impl std::fmt::Display for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Source::Const(c) => write!(f, "#{}", hls_cdfg::Fx::from_raw(*c)),
            Source::Reg(r) => write!(f, "r{r}"),
            Source::Wire(w) => f.write_str(w),
        }
    }
}

/// Resolves the source feeding `value` when read by an op in `step`.
///
/// Values stored in registers read from their register; values produced in
/// the same step arrive combinationally from the producing FU (through any
/// wired free ops).
pub fn source_of(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
    schedule: &Schedule,
    regs: &RegisterAllocation,
    fu_of: &HashMap<OpId, usize>,
    value: ValueId,
    step: u32,
) -> Source {
    match dfg.value(value).def {
        ValueDef::BlockInput(ref name) => match regs.register_of(value) {
            Some(r) => Source::Reg(r),
            None => Source::Wire(format!("in:{name}")),
        },
        ValueDef::Op(p) => {
            if dfg.op(p).kind == OpKind::Const {
                return Source::Const(dfg.op(p).constant.unwrap_or_default().raw());
            }
            let def_step = schedule.step(p).unwrap_or(0);
            if def_step < step {
                // Registered at the def boundary; read from the register.
                match regs.register_of(value) {
                    Some(r) => Source::Reg(r),
                    None => Source::Wire(format!("v{}", value.index())),
                }
            } else if classifier.is_free(dfg, p) {
                // Chained free op: describe the path through it.
                let inner = source_of(
                    dfg,
                    classifier,
                    schedule,
                    regs,
                    fu_of,
                    dfg.op(p).operands[0],
                    step,
                );
                let suffix = match dfg.op(p).kind {
                    OpKind::Shr => ">>",
                    OpKind::Shl => "<<",
                    k => k.symbol(),
                };
                let amount = dfg
                    .op(p)
                    .operands
                    .get(1)
                    .and_then(|&a| match dfg.value(a).def {
                        ValueDef::Op(c) if dfg.op(c).kind == OpKind::Const => {
                            dfg.op(c).constant.map(|f| f.to_i64())
                        }
                        _ => None,
                    })
                    .unwrap_or(0);
                Source::Wire(format!("{inner}{suffix}{amount}"))
            } else {
                // Same-step step-taking producer: its FU output.
                match fu_of.get(&p) {
                    Some(f) => Source::Wire(format!("fu{f}")),
                    None => Source::Wire(format!("op{}", p.index())),
                }
            }
        }
    }
}

/// The full connection map of a bound datapath block.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Connections {
    /// Per FU, per input port: the set of distinct sources.
    pub fu_ports: Vec<Vec<BTreeSet<Source>>>,
    /// Per register: the set of distinct sources driving its input.
    pub reg_inputs: BTreeMap<usize, BTreeSet<Source>>,
}

impl Connections {
    /// Total multiplexer inputs: each port/register with `k > 1` sources
    /// needs a `k`-way mux, costed as `k - 1` two-way muxes.
    pub fn mux_inputs(&self) -> usize {
        let fu: usize = self
            .fu_ports
            .iter()
            .flat_map(|ports| ports.iter())
            .map(|s| s.len().saturating_sub(1))
            .sum();
        let regs: usize = self
            .reg_inputs
            .values()
            .map(|s| s.len().saturating_sub(1))
            .sum();
        fu + regs
    }

    /// Total point-to-point connections (wire count for mux-based
    /// interconnect).
    pub fn wire_count(&self) -> usize {
        let fu: usize = self
            .fu_ports
            .iter()
            .flat_map(|p| p.iter())
            .map(BTreeSet::len)
            .sum();
        let regs: usize = self.reg_inputs.values().map(BTreeSet::len).sum();
        fu + regs
    }
}

/// Computes the connections implied by a schedule, register allocation,
/// and FU binding.
pub fn connections(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
    schedule: &Schedule,
    regs: &RegisterAllocation,
    fus: &FuAllocation,
) -> Connections {
    let mut conn = Connections {
        fu_ports: fus
            .fus
            .iter()
            .map(|f| vec![BTreeSet::new(); f.ports])
            .collect(),
        reg_inputs: BTreeMap::new(),
    };
    for op in dfg.op_ids() {
        let Some(&f) = fus.binding.get(&op) else {
            continue;
        };
        let step = schedule.step(op).unwrap_or(0);
        let operands = fus.port_order(dfg, op);
        for (port, v) in operands.iter().enumerate() {
            let src = source_of(dfg, classifier, schedule, regs, &fus.binding, *v, step);
            if port < conn.fu_ports[f].len() {
                conn.fu_ports[f][port].insert(src);
            }
        }
        // Result into its register, if stored.
        if let Some(res) = dfg.result(op) {
            if let Some(r) = regs.register_of(res) {
                conn.reg_inputs
                    .entry(r)
                    .or_default()
                    .insert(Source::Wire(format!("fu{f}")));
            }
        }
    }
    // Registered results of chained free ops: driven by the combinational
    // path from their producer's FU.
    for op in dfg.op_ids() {
        if !classifier.is_free(dfg, op) || hls_sched::precedence::is_wired(dfg, op) {
            continue;
        }
        if let Some(res) = dfg.result(op) {
            if let Some(r) = regs.register_of(res) {
                let step = schedule.step(op).unwrap_or(0);
                // Describe the combinational path driving the register.
                let drive = source_of(
                    dfg,
                    classifier,
                    schedule,
                    regs,
                    &fus.binding,
                    dfg.op(op).operands[0],
                    step,
                );
                let suffix = dfg.op(op).kind.symbol();
                conn.reg_inputs
                    .entry(r)
                    .or_default()
                    .insert(Source::Wire(format!("{drive}{suffix}")));
            }
        }
    }
    conn
}

/// A bus-based interconnect estimate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BusReport {
    /// Number of buses: the peak number of simultaneous transfers in any
    /// control step.
    pub buses: usize,
    /// Tri-state drivers: one per distinct source that must reach a bus.
    pub drivers: usize,
    /// Receiver taps: one per distinct sink.
    pub taps: usize,
}

impl BusReport {
    /// Wire-count analogue for comparing against
    /// [`Connections::wire_count`]: each bus is one shared wire plus its
    /// drivers and taps.
    pub fn wire_count(&self) -> usize {
        self.buses + self.drivers + self.taps
    }
}

/// Allocates buses for the given binding: the bus count is the maximum
/// number of simultaneous register/FU transfers in any step.
pub fn bus_allocation(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
    schedule: &Schedule,
    regs: &RegisterAllocation,
    fus: &FuAllocation,
) -> BusReport {
    let mut per_step: HashMap<u32, BTreeSet<Source>> = HashMap::new();
    let mut sources: BTreeSet<Source> = BTreeSet::new();
    let mut sinks: BTreeSet<String> = BTreeSet::new();
    for op in dfg.op_ids() {
        let Some(&f) = fus.binding.get(&op) else {
            continue;
        };
        let step = schedule.step(op).unwrap_or(0);
        for (port, v) in fus.port_order(dfg, op).iter().enumerate() {
            let src = source_of(dfg, classifier, schedule, regs, &fus.binding, *v, step);
            if matches!(src, Source::Const(_)) {
                continue; // constants are wired, not bused
            }
            per_step.entry(step).or_default().insert(src.clone());
            sources.insert(src);
            sinks.insert(format!("fu{f}.p{port}"));
        }
        if let Some(res) = dfg.result(op) {
            if let Some(r) = regs.register_of(res) {
                let src = Source::Wire(format!("fu{f}"));
                per_step.entry(step).or_default().insert(src.clone());
                sources.insert(src);
                sinks.insert(format!("r{r}"));
            }
        }
    }
    BusReport {
        buses: per_step.values().map(BTreeSet::len).max().unwrap_or(0),
        drivers: sources.len(),
        taps: sinks.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::greedy_allocation;
    use crate::lifetime::value_intervals;
    use crate::registers::left_edge;
    use hls_sched::{asap_schedule, OpClassifier, ResourceLimits};
    use hls_workloads::figures::fig6_graph;

    fn setup() -> (
        DataFlowGraph,
        Schedule,
        OpClassifier,
        RegisterAllocation,
        FuAllocation,
    ) {
        let (g, _) = fig6_graph();
        let cls = OpClassifier::typed();
        let s = asap_schedule(&g, &cls, &ResourceLimits::unlimited()).unwrap();
        let regs = left_edge(&value_intervals(&g, &s));
        let fus = greedy_allocation(&g, &cls, &s, &regs, true);
        (g, s, cls, regs, fus)
    }

    #[test]
    fn connections_count_mux_inputs() {
        let (g, s, cls, regs, fus) = setup();
        let conn = connections(&g, &cls, &s, &regs, &fus);
        assert!(conn.wire_count() > 0);
        assert!(conn.mux_inputs() <= conn.wire_count());
    }

    #[test]
    fn bus_count_is_peak_transfers() {
        let (g, s, cls, regs, fus) = setup();
        let bus = bus_allocation(&g, &cls, &s, &regs, &fus);
        // Step 2 runs m1, m2, a3 simultaneously: at least 6 operand reads
        // plus 3 result writes, some shared.
        assert!(bus.buses >= 4, "{bus:?}");
        assert!(bus.drivers > 0 && bus.taps > 0);
    }

    #[test]
    fn buses_use_fewer_wires_than_point_to_point() {
        // The paper's claim: "buses ... offer the advantage of requiring
        // less wiring".
        let (g, s, cls, regs, fus) = setup();
        let conn = connections(&g, &cls, &s, &regs, &fus);
        let bus = bus_allocation(&g, &cls, &s, &regs, &fus);
        assert!(
            bus.buses < conn.wire_count(),
            "shared buses ({}) vs point-to-point wires ({})",
            bus.buses,
            conn.wire_count()
        );
    }
}
