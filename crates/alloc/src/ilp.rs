//! Exhaustive optimal binding ("mathematical programming" — Hafer,
//! tutorial reference [9]).
//!
//! "Formulation of allocation as a mathematical programming problem
//! involves creating a variable for each possible assignment of an
//! operation ... Finding an optimal solution requires exhaustive search,
//! which is very expensive" (§3.2.2). This module does exactly that — a
//! branch-and-bound over op→unit assignments minimizing a weighted sum of
//! unit count and multiplexer inputs — and serves as the ground truth the
//! greedy and clique heuristics are measured against (experiment E11).

use std::collections::{BTreeSet, HashMap};

use hls_cdfg::{DataFlowGraph, OpId};
use hls_sched::{FuClass, OpClassifier, Schedule};

use crate::fu::{FuAllocation, FuInstance};
use crate::interconnect::{source_of, Source};
use crate::registers::RegisterAllocation;

/// Cost of one functional unit, in multiplexer-input equivalents.
pub const FU_WEIGHT: usize = 10;

/// An optimal (or best-found) binding.
#[derive(Clone, Debug)]
pub struct OptimalBinding {
    /// The binding.
    pub alloc: FuAllocation,
    /// Its cost: `FU_WEIGHT · units + mux_inputs`.
    pub cost: usize,
    /// `true` when the search completed within budget (provably optimal
    /// under this cost model).
    pub optimal: bool,
    /// Search nodes explored.
    pub nodes: u64,
}

/// Scores an existing allocation under the same cost model.
pub fn binding_cost(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
    schedule: &Schedule,
    regs: &RegisterAllocation,
    alloc: &FuAllocation,
) -> usize {
    let conn = crate::interconnect::connections(dfg, classifier, schedule, regs, alloc);
    FU_WEIGHT * alloc.count() + conn.mux_inputs()
}

/// Exhaustively finds the minimum-cost binding, class by class.
///
/// Each class is independent under this cost model, so the search is run
/// per class and the results concatenated. `node_budget` bounds the total
/// nodes; when exceeded the best binding found so far is returned with
/// `optimal == false`.
pub fn exhaustive_binding(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
    schedule: &Schedule,
    regs: &RegisterAllocation,
    node_budget: u64,
) -> OptimalBinding {
    let mut classes: Vec<FuClass> = dfg
        .op_ids()
        .filter_map(|op| classifier.classify(dfg, op))
        .collect();
    classes.sort();
    classes.dedup();

    let mut alloc = FuAllocation::default();
    let mut total_cost = 0;
    let mut optimal = true;
    let mut nodes_used = 0u64;
    for class in classes {
        let ops: Vec<OpId> = {
            let mut v: Vec<OpId> = dfg
                .op_ids()
                .filter(|&op| classifier.classify(dfg, op) == Some(class))
                .collect();
            v.sort_by_key(|&op| (schedule.step(op), op));
            v
        };
        let mut search = Search {
            dfg,
            classifier,
            schedule,
            regs,
            ops: &ops,
            class,
            best: None,
            best_cost: usize::MAX,
            nodes: 0,
            // Guarantee at least one complete depth-first descent per class
            // so a (possibly non-optimal) binding always exists.
            budget: node_budget
                .saturating_sub(nodes_used)
                .max(ops.len() as u64 + 2),
        };
        let mut units: Vec<Unit> = Vec::new();
        search.dfs(0, 0, &mut units);
        nodes_used += search.nodes;
        optimal &= search.nodes < search.budget;
        total_cost += search.best_cost;
        // The budget floor above guarantees one full descent, so `best`
        // is populated; fall back to one-unit-per-op rather than rely on
        // that invariant with a panic.
        let best = search.best.unwrap_or_else(|| {
            ops.iter()
                .map(|&op| Unit {
                    ops: vec![op],
                    steps: schedule.step(op).into_iter().collect(),
                    ports: Vec::new(),
                })
                .collect()
        });
        let base = alloc.fus.len();
        for (i, unit) in best.iter().enumerate() {
            for &op in &unit.ops {
                alloc.binding.insert(op, base + i);
            }
            alloc.fus.push(FuInstance {
                class,
                ops: unit.ops.clone(),
                ports: unit
                    .ops
                    .iter()
                    .map(|&o| dfg.op(o).kind.arity())
                    .max()
                    .unwrap_or(2),
            });
        }
    }
    OptimalBinding {
        alloc,
        cost: total_cost,
        optimal,
        nodes: nodes_used,
    }
}

#[derive(Clone, Debug)]
struct Unit {
    ops: Vec<OpId>,
    steps: BTreeSet<u32>,
    ports: Vec<BTreeSet<Source>>,
}

struct Search<'a> {
    dfg: &'a DataFlowGraph,
    classifier: &'a OpClassifier,
    schedule: &'a Schedule,
    regs: &'a RegisterAllocation,
    ops: &'a [OpId],
    class: FuClass,
    best: Option<Vec<Unit>>,
    best_cost: usize,
    nodes: u64,
    budget: u64,
}

impl Search<'_> {
    fn dfs(&mut self, idx: usize, cost: usize, units: &mut Vec<Unit>) {
        if self.nodes >= self.budget {
            return;
        }
        self.nodes += 1;
        if cost >= self.best_cost {
            return;
        }
        if idx == self.ops.len() {
            self.best_cost = cost;
            self.best = Some(units.clone());
            return;
        }
        let op = self.ops[idx];
        let step = self.schedule.step(op).unwrap_or(0);
        let binding = HashMap::new(); // same-step producers impossible here
        let sources: Vec<Source> = self
            .dfg
            .op(op)
            .operands
            .iter()
            .map(|&v| {
                source_of(
                    self.dfg,
                    self.classifier,
                    self.schedule,
                    self.regs,
                    &binding,
                    v,
                    step,
                )
            })
            .collect();
        let _ = self.class;

        for u in 0..units.len() {
            if units[u].steps.contains(&step) {
                continue;
            }
            let mut added = 0;
            for (port, src) in sources.iter().enumerate() {
                if port < units[u].ports.len() {
                    let set = &units[u].ports[port];
                    if !set.is_empty() && !set.contains(src) {
                        added += 1;
                    }
                }
            }
            // Commit.
            units[u].ops.push(op);
            units[u].steps.insert(step);
            let inserted: Vec<bool> = sources
                .iter()
                .enumerate()
                .map(|(port, src)| {
                    port < units[u].ports.len() && units[u].ports[port].insert(src.clone())
                })
                .collect();
            self.dfs(idx + 1, cost + added, units);
            // Undo.
            for (port, src) in sources.iter().enumerate() {
                if inserted[port] {
                    units[u].ports[port].remove(src);
                }
            }
            units[u].steps.remove(&step);
            units[u].ops.pop();
        }

        // New unit (symmetry-broken: only ever append one new unit).
        let arity = self.dfg.op(op).kind.arity().max(1);
        let mut unit = Unit {
            ops: vec![op],
            steps: BTreeSet::from([step]),
            ports: vec![BTreeSet::new(); arity],
        };
        for (port, src) in sources.iter().enumerate() {
            if port < unit.ports.len() {
                unit.ports[port].insert(src.clone());
            }
        }
        units.push(unit);
        self.dfs(idx + 1, cost + FU_WEIGHT, units);
        units.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::greedy_allocation;
    use crate::lifetime::value_intervals;
    use crate::registers::left_edge;
    use hls_sched::{asap_schedule, ResourceLimits};
    use hls_workloads::figures::fig6_graph;

    #[test]
    fn optimal_never_worse_than_greedy_on_fig6() {
        let (g, _) = fig6_graph();
        let cls = OpClassifier::typed();
        let s = asap_schedule(&g, &cls, &ResourceLimits::unlimited()).unwrap();
        let regs = left_edge(&value_intervals(&g, &s));
        let opt = exhaustive_binding(&g, &cls, &s, &regs, 5_000_000);
        assert!(opt.optimal);
        assert!(opt.alloc.is_valid(&g, &cls, &s));
        let greedy = greedy_allocation(&g, &cls, &s, &regs, true);
        let greedy_cost = binding_cost(&g, &cls, &s, &regs, &greedy);
        assert!(opt.cost <= greedy_cost, "{} vs {greedy_cost}", opt.cost);
        // Greedy is near-optimal on Fig. 6: same unit count, within a couple
        // of mux inputs of the exhaustive optimum.
        assert_eq!(opt.alloc.count(), greedy.count());
        assert!(greedy_cost - opt.cost <= 2, "{} vs {greedy_cost}", opt.cost);
    }

    #[test]
    fn optimal_on_diffeq_within_budget() {
        let g = hls_workloads::benchmarks::diffeq();
        let cls = OpClassifier::typed();
        let s = asap_schedule(
            &g,
            &cls,
            &ResourceLimits::unlimited().with(FuClass::Multiplier, 2),
        )
        .unwrap();
        let regs = left_edge(&value_intervals(&g, &s));
        let opt = exhaustive_binding(&g, &cls, &s, &regs, 5_000_000);
        assert!(opt.alloc.is_valid(&g, &cls, &s));
        let greedy = greedy_allocation(&g, &cls, &s, &regs, true);
        assert!(opt.cost <= binding_cost(&g, &cls, &s, &regs, &greedy));
    }

    #[test]
    fn budget_exhaustion_reports_non_optimal() {
        let g = hls_workloads::benchmarks::ewf();
        let cls = OpClassifier::typed();
        let s = asap_schedule(&g, &cls, &ResourceLimits::unlimited()).unwrap();
        let regs = left_edge(&value_intervals(&g, &s));
        let opt = exhaustive_binding(&g, &cls, &s, &regs, 500);
        assert!(!opt.optimal);
        // Still returns a usable binding.
        assert!(opt.alloc.is_valid(&g, &cls, &s));
    }
}
