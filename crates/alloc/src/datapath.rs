//! Whole-behavior datapath assembly.
//!
//! Merges per-block register and functional-unit allocations into one
//! shared datapath — "a network of registers, functional units,
//! multiplexers and buses" (§1.1) — plus the binding information the
//! controller generator and the RTL simulator consume.
//!
//! Storage model:
//!
//! * One **variable register** per named variable crossing a block
//!   boundary (program inputs included). Blocks read their live-ins from
//!   variable registers; all writes happen at the block's final step
//!   boundary, so a block never clobbers a variable another of its ops
//!   still reads.
//! * **Temporary registers** hold intra-block values (left-edge allocated
//!   per block and shared by index across blocks: block A's temp 0 and
//!   block B's temp 0 are the same physical register — they are never
//!   live simultaneously because blocks execute sequentially).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use hls_cdfg::{BlockId, Cdfg, OpId, OpKind, ValueDef, ValueId};
use hls_rtl::{CellClass, Library, Netlist, PortDir};
use hls_sched::{CdfgSchedule, FuClass, OpClassifier};

use crate::error::AllocError;
use crate::fu::{clique_allocation, greedy_allocation, CliqueMethod, FuAllocation};
use crate::lifetime::value_intervals;
use crate::registers::left_edge;

/// How functional units are allocated per block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuStrategy {
    /// Greedy, interconnect-aware (Fig. 6).
    GreedyAware,
    /// Greedy, first-free-unit (interconnect-blind).
    GreedyBlind,
    /// Clique partitioning (Fig. 7).
    Clique(CliqueMethod),
}

/// What a register stores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegKind {
    /// A named program variable, live across blocks.
    Var(String),
    /// A shared intra-block temporary.
    Temp(usize),
}

/// A physical register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegDesc {
    /// Instance name.
    pub name: String,
    /// Width in bits.
    pub width: u8,
    /// Role.
    pub kind: RegKind,
}

/// A physical functional unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuDesc {
    /// Instance name.
    pub name: String,
    /// Class.
    pub class: FuClass,
    /// Bound library cell.
    pub cell: String,
    /// Width in bits.
    pub width: u8,
    /// Input ports.
    pub ports: usize,
}

/// An end-of-block write of `value` into the variable register of `var`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputWrite {
    /// Destination variable.
    pub var: String,
    /// The written value.
    pub value: ValueId,
}

/// Per-block binding details.
#[derive(Clone, Debug, Default)]
pub struct BlockBinding {
    /// Global FU index per step-taking op.
    pub op_fu: HashMap<OpId, usize>,
    /// Global register index per stored intra-block value.
    pub value_reg: HashMap<ValueId, usize>,
    /// End-of-block variable writes.
    pub writes: Vec<OutputWrite>,
    /// The per-block FU allocation (for interconnect reports).
    pub fu_alloc: FuAllocation,
}

/// The assembled datapath.
#[derive(Clone, Debug)]
pub struct Datapath {
    /// Functional units.
    pub fus: Vec<FuDesc>,
    /// Registers (variables first, then temps).
    pub regs: Vec<RegDesc>,
    /// Variable name → register index.
    pub var_reg: BTreeMap<String, usize>,
    /// Per-block bindings.
    pub blocks: HashMap<BlockId, BlockBinding>,
    /// Named memories accessed by the behavior (one single-port RAM each).
    pub memories: Vec<String>,
    /// Aggregated multiplexer-input estimate across all blocks.
    pub mux_inputs: usize,
}

impl Datapath {
    /// Number of registers.
    pub fn reg_count(&self) -> usize {
        self.regs.len()
    }

    /// Number of functional units.
    pub fn fu_count(&self) -> usize {
        self.fus.len()
    }

    /// Renders the datapath structure as a Graphviz DOT digraph: registers
    /// as boxes, functional units as circles, memories as 3-D boxes, with
    /// one edge per distinct source→sink connection (fan-in above one
    /// implies a multiplexer at the sink).
    pub fn to_dot(
        &self,
        cdfg: &Cdfg,
        schedule: &CdfgSchedule,
        classifier: &OpClassifier,
    ) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}_datapath\" {{", cdfg.name());
        let _ = writeln!(s, "  rankdir=LR;");
        for (i, reg) in self.regs.iter().enumerate() {
            let _ = writeln!(
                s,
                "  r{i} [label=\"{} [{}]\", shape=box];",
                reg.name, reg.width
            );
        }
        for (i, fu) in self.fus.iter().enumerate() {
            let _ = writeln!(s, "  fu{i} [label=\"{}\", shape=circle];", fu.name);
        }
        for (i, mem) in self.memories.iter().enumerate() {
            let _ = writeln!(s, "  mem{i} [label=\"{mem}\", shape=box3d];");
        }
        let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
        for block in cdfg.block_order() {
            let Some(binding) = self.blocks.get(&block) else {
                continue;
            };
            let Some(sched) = schedule.block(block) else {
                continue;
            };
            let dfg = &cdfg.block(block).dfg;
            for op in dfg.op_ids() {
                let Some(&f) = binding.op_fu.get(&op) else {
                    continue;
                };
                let step = sched.step(op).unwrap_or(0);
                for &v in &dfg.op(op).operands {
                    let src = global_source(
                        dfg,
                        classifier,
                        sched,
                        &binding.op_fu,
                        &binding.value_reg,
                        &self.var_reg,
                        v,
                        step,
                    );
                    if !src.starts_with('#') {
                        edges.insert((dot_node(&src), format!("fu{f}")));
                    }
                }
                if let Some(res) = dfg.result(op) {
                    if let Some(&r) = binding.value_reg.get(&res) {
                        edges.insert((format!("fu{f}"), format!("r{r}")));
                    }
                }
            }
        }
        for (from, to) in edges {
            let _ = writeln!(s, "  {from} -> {to};");
        }
        s.push_str("}\n");
        s
    }

    /// Renders the datapath as an RT-level netlist (FUs, registers, and
    /// the muxes implied by the interconnect estimate).
    pub fn to_netlist(&self, cdfg: &Cdfg, library: &Library) -> Result<Netlist, AllocError> {
        for fu in &self.fus {
            if library.cell(&fu.cell).is_none() {
                return Err(AllocError::MissingCell {
                    class: fu.cell.clone(),
                });
            }
        }
        let mut n = Netlist::new(cdfg.name());
        for (name, width) in cdfg.inputs() {
            n.add_port(&format!("in_{name}"), PortDir::In, *width);
        }
        for name in cdfg.outputs() {
            n.add_port(&format!("out_{name}"), PortDir::Out, 32);
        }
        for (i, reg) in self.regs.iter().enumerate() {
            let d = n.add_net(&format!("r{i}_d"), reg.width);
            let q = n.add_net(&format!("r{i}_q"), reg.width);
            n.add_instance(
                &reg.name,
                "reg_dff",
                reg.width,
                vec![("d".into(), d), ("q".into(), q)],
            );
        }
        for (i, fu) in self.fus.iter().enumerate() {
            let mut pins = Vec::new();
            for p in 0..fu.ports.max(1) {
                let net = n.add_net(&format!("fu{i}_p{p}"), fu.width);
                pins.push((format!("p{p}"), net));
            }
            let y = n.add_net(&format!("fu{i}_y"), fu.width);
            pins.push(("y".to_string(), y));
            n.add_instance(&fu.name, &fu.cell, fu.width, pins);
        }
        for (i, mem) in self.memories.iter().enumerate() {
            let addr = n.add_net(&format!("mem{i}_addr"), 32);
            let q = n.add_net(&format!("mem{i}_q"), 32);
            n.add_instance(
                &format!("mem_{}", sanitize(mem)),
                "mem_1rw",
                32,
                vec![("addr".into(), addr), ("q".into(), q)],
            );
        }
        // One 2-way mux instance per extra source (n-way = n-1 two-way).
        for m in 0..self.mux_inputs {
            let a = n.add_net(&format!("mux{m}_a"), 32);
            let y = n.add_net(&format!("mux{m}_y"), 32);
            n.add_instance(
                &format!("mux{m}"),
                "mux2",
                32,
                vec![("a".into(), a), ("y".into(), y)],
            );
        }
        Ok(n)
    }
}

/// Builds the shared datapath for a scheduled behavior.
///
/// # Errors
///
/// Returns [`AllocError::MissingSchedule`] when a block lacks a schedule.
pub fn build_datapath(
    cdfg: &Cdfg,
    schedule: &CdfgSchedule,
    classifier: &OpClassifier,
    library: &Library,
    strategy: FuStrategy,
) -> Result<Datapath, AllocError> {
    // Pass 1: variable registers from every block boundary crossing.
    let var_widths = variable_widths(cdfg);
    let mut regs: Vec<RegDesc> = Vec::new();
    let mut var_reg: BTreeMap<String, usize> = BTreeMap::new();
    for (name, width) in &var_widths {
        var_reg.insert(name.clone(), regs.len());
        regs.push(RegDesc {
            name: format!("rv_{}", sanitize(name)),
            width: *width,
            kind: RegKind::Var(name.clone()),
        });
    }
    let n_vars = regs.len();

    // Pass 2: per-block temp allocation + FU allocation; merge.
    let mut temp_widths: Vec<u8> = Vec::new();
    let mut fu_slots: BTreeMap<FuClass, usize> = BTreeMap::new(); // max per class
    let mut blocks: HashMap<BlockId, BlockBinding> = HashMap::new();
    let mut per_block_local: HashMap<
        BlockId,
        (FuAllocation, crate::registers::RegisterAllocation),
    > = HashMap::new();

    for block in cdfg.block_order() {
        if blocks.contains_key(&block) {
            continue; // blocks may repeat in the order (shared in regions)
        }
        let dfg = &cdfg.block(block).dfg;
        let sched = schedule
            .block(block)
            .ok_or_else(|| AllocError::MissingSchedule {
                block: cdfg.block(block).name.clone(),
            })?;
        // Temps: intervals excluding block inputs (those live in var regs).
        let intervals: Vec<_> = value_intervals(dfg, sched)
            .into_iter()
            .filter(|iv| matches!(dfg.value(iv.value).def, ValueDef::Op(_)))
            .collect();
        let local_regs = left_edge(&intervals);
        for iv in &intervals {
            let t = local_regs.assignment[&iv.value];
            if t >= temp_widths.len() {
                temp_widths.resize(t + 1, 1);
            }
            temp_widths[t] = temp_widths[t].max(dfg.value(iv.value).width);
        }
        let fu_alloc = match strategy {
            FuStrategy::GreedyAware => greedy_allocation(dfg, classifier, sched, &local_regs, true),
            FuStrategy::GreedyBlind => {
                greedy_allocation(dfg, classifier, sched, &local_regs, false)
            }
            FuStrategy::Clique(m) => clique_allocation(dfg, classifier, sched, m),
        };
        // Per-class local indices.
        let mut class_counts: BTreeMap<FuClass, usize> = BTreeMap::new();
        for fu in &fu_alloc.fus {
            *class_counts.entry(fu.class).or_insert(0) += 1;
        }
        for (class, count) in class_counts {
            let e = fu_slots.entry(class).or_insert(0);
            *e = (*e).max(count);
        }
        per_block_local.insert(block, (fu_alloc, local_regs));
    }

    // Global FU table: class-major, slot-minor.
    let mut fus: Vec<FuDesc> = Vec::new();
    let mut fu_base: BTreeMap<FuClass, usize> = BTreeMap::new();
    for (&class, &count) in &fu_slots {
        fu_base.insert(class, fus.len());
        for slot in 0..count {
            let cell_class = cell_class_for(class);
            let cell =
                library
                    .bind(cell_class, 32, None)
                    .ok_or_else(|| AllocError::MissingCell {
                        class: class.to_string(),
                    })?;
            fus.push(FuDesc {
                name: format!("{}{}", class.name(), slot),
                class,
                cell: cell.name.to_string(),
                width: 32,
                ports: 2,
            });
        }
    }

    // Pass 3: rebind per block onto the global tables.
    let mut mux_inputs = 0usize;
    for block in cdfg.block_order() {
        if blocks.contains_key(&block) {
            continue;
        }
        let dfg = &cdfg.block(block).dfg;
        let sched = schedule
            .block(block)
            .ok_or_else(|| AllocError::MissingSchedule {
                block: cdfg.block(block).name.clone(),
            })?;
        let (fu_alloc, local_regs) =
            per_block_local
                .remove(&block)
                .ok_or_else(|| AllocError::MissingSchedule {
                    block: cdfg.block(block).name.clone(),
                })?;
        // Local unit -> global: i-th unit of class c maps to base(c) + rank.
        let mut class_rank: BTreeMap<FuClass, usize> = BTreeMap::new();
        let mut local_to_global: Vec<usize> = Vec::with_capacity(fu_alloc.fus.len());
        for fu in &fu_alloc.fus {
            let rank = class_rank.entry(fu.class).or_insert(0);
            let g = fu_base[&fu.class] + *rank;
            *rank += 1;
            local_to_global.push(g);
            fus[g].ports = fus[g].ports.max(fu.ports);
        }
        let op_fu: HashMap<OpId, usize> = fu_alloc
            .binding
            .iter()
            .map(|(&op, &f)| (op, local_to_global[f]))
            .collect();
        let value_reg: HashMap<ValueId, usize> = local_regs
            .assignment
            .iter()
            .map(|(&v, &t)| (v, n_vars + t))
            .collect();
        let writes: Vec<OutputWrite> = dfg
            .outputs()
            .iter()
            .map(|(name, v)| OutputWrite {
                var: name.clone(),
                value: *v,
            })
            .collect();
        // Interconnect estimate on the global indices.
        mux_inputs += block_mux_inputs(dfg, classifier, sched, &op_fu, &value_reg, &var_reg);
        blocks.insert(
            block,
            BlockBinding {
                op_fu,
                value_reg,
                writes,
                fu_alloc,
            },
        );
    }

    for (t, &width) in temp_widths.iter().enumerate() {
        regs.push(RegDesc {
            name: format!("rt{t}"),
            width,
            kind: RegKind::Temp(t),
        });
    }

    let memories = memory_names(cdfg);

    Ok(Datapath {
        fus,
        regs,
        var_reg,
        blocks,
        memories,
        mux_inputs,
    })
}

/// Canonical description of the datapath source feeding `value` when read
/// at `step`, against the global register/FU tables: `rN` for registers,
/// `#c` for wired constants, `fuN` (possibly with a free-op suffix) for
/// same-step combinational paths. Used for interconnect counting, control
/// signal naming, and RTL simulation.
// Every argument is one of the binding tables the lookup genuinely
// needs; bundling them into a struct would just move the eight names one
// level down at three call sites.
#[allow(clippy::too_many_arguments)]
pub fn global_source(
    dfg: &hls_cdfg::DataFlowGraph,
    classifier: &OpClassifier,
    sched: &hls_sched::Schedule,
    op_fu: &HashMap<OpId, usize>,
    value_reg: &HashMap<ValueId, usize>,
    var_reg: &BTreeMap<String, usize>,
    value: ValueId,
    step: u32,
) -> String {
    match dfg.value(value).def {
        ValueDef::BlockInput(ref name) => format!("r{}", var_reg.get(name).copied().unwrap_or(0)),
        ValueDef::Op(p) => {
            if dfg.op(p).kind == OpKind::Const {
                return format!("#{}", dfg.op(p).constant.unwrap_or_default());
            }
            let def_step = sched.step(p).unwrap_or(0);
            if def_step < step {
                match value_reg.get(&value) {
                    Some(r) => format!("r{r}"),
                    None => format!("v{}", value.index()),
                }
            } else if classifier.is_free(dfg, p) {
                let inner = global_source(
                    dfg,
                    classifier,
                    sched,
                    op_fu,
                    value_reg,
                    var_reg,
                    dfg.op(p).operands[0],
                    step,
                );
                format!("{inner}{}", dfg.op(p).kind.symbol())
            } else {
                format!("fu{}", op_fu.get(&p).copied().unwrap_or(usize::MAX))
            }
        }
    }
}

/// Counts mux inputs of one block against the global binding.
fn block_mux_inputs(
    dfg: &hls_cdfg::DataFlowGraph,
    classifier: &OpClassifier,
    sched: &hls_sched::Schedule,
    op_fu: &HashMap<OpId, usize>,
    value_reg: &HashMap<ValueId, usize>,
    var_reg: &BTreeMap<String, usize>,
) -> usize {
    let mut fu_ports: HashMap<(usize, usize), BTreeSet<String>> = HashMap::new();
    let mut reg_in: HashMap<usize, BTreeSet<String>> = HashMap::new();
    for op in dfg.op_ids() {
        let Some(&f) = op_fu.get(&op) else { continue };
        let step = sched.step(op).unwrap_or(0);
        for (port, &v) in dfg.op(op).operands.iter().enumerate() {
            let src = global_source(dfg, classifier, sched, op_fu, value_reg, var_reg, v, step);
            fu_ports.entry((f, port)).or_default().insert(src);
        }
        if let Some(res) = dfg.result(op) {
            if let Some(&r) = value_reg.get(&res) {
                reg_in.entry(r).or_default().insert(format!("fu{f}"));
            }
        }
    }
    // End-of-block variable writes.
    for (name, v) in dfg.outputs() {
        if let Some(&r) = var_reg.get(name) {
            let last = sched.num_steps().saturating_sub(1);
            let src = global_source(
                dfg,
                classifier,
                sched,
                op_fu,
                value_reg,
                var_reg,
                *v,
                last + 1,
            );
            reg_in.entry(r).or_default().insert(src);
        }
    }
    fu_ports
        .values()
        .map(|s| s.len().saturating_sub(1))
        .sum::<usize>()
        + reg_in
            .values()
            .map(|s| s.len().saturating_sub(1))
            .sum::<usize>()
}

/// The variable registers a behavior needs, independent of any schedule:
/// one per named variable crossing a block boundary (program inputs
/// included), at the maximum width seen across crossings. This is
/// exactly pass 1 of [`build_datapath`]; the QoR estimator calls it to
/// price variable registers without allocating.
pub fn variable_widths(cdfg: &Cdfg) -> BTreeMap<String, u8> {
    let mut var_widths: BTreeMap<String, u8> = BTreeMap::new();
    for (name, width) in cdfg.inputs() {
        var_widths.insert(name.clone(), *width);
    }
    for block in cdfg.block_order() {
        let dfg = &cdfg.block(block).dfg;
        for &iv in dfg.inputs() {
            let v = dfg.value(iv);
            let w = var_widths.entry(v.name.clone()).or_insert(v.width);
            *w = (*w).max(v.width);
        }
        for (name, v) in dfg.outputs() {
            let width = dfg.value(*v).width;
            let w = var_widths.entry(name.clone()).or_insert(width);
            *w = (*w).max(width);
        }
    }
    var_widths
}

/// The named memories a behavior accesses (sorted, deduplicated) —
/// schedule-independent; each becomes one single-port RAM instance.
pub fn memory_names(cdfg: &Cdfg) -> Vec<String> {
    let mut memories: Vec<String> = cdfg
        .block_order()
        .iter()
        .flat_map(|&b| {
            let dfg = &cdfg.block(b).dfg;
            dfg.op_ids()
                .filter_map(|op| dfg.op(op).memory.clone())
                .collect::<Vec<_>>()
        })
        .collect();
    memories.sort();
    memories.dedup();
    memories
}

/// The library cell class implementing an FU class — the binding
/// [`build_datapath`] uses when it instantiates functional units.
pub fn cell_class_for(class: FuClass) -> CellClass {
    match class {
        FuClass::Universal => CellClass::Universal,
        FuClass::Alu => CellClass::Alu,
        FuClass::Multiplier => CellClass::Multiplier,
        FuClass::Divider => CellClass::Divider,
        FuClass::Shifter => CellClass::Shifter,
        FuClass::Comparator => CellClass::Comparator,
        FuClass::Logic => CellClass::Logic,
        FuClass::MemPort => CellClass::Memory,
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

/// Maps a canonical source description onto a DOT node id; combinational
/// chains collapse onto their originating node.
fn dot_node(src: &str) -> String {
    let head: String = src
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if head.is_empty() {
        format!("\"{src}\"")
    } else {
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_sched::{schedule_cdfg, Algorithm, OpClassifier, Priority, ResourceLimits};

    fn sqrt_datapath(strategy: FuStrategy) -> (Cdfg, Datapath) {
        let mut cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        hls_opt::optimize(&mut cdfg);
        let cls = OpClassifier::universal_free_shifts();
        let limits = ResourceLimits::universal(2);
        let sched =
            schedule_cdfg(&cdfg, &cls, &limits, Algorithm::List(Priority::PathLength)).unwrap();
        let dp = build_datapath(&cdfg, &sched, &cls, &Library::standard(), strategy).unwrap();
        (cdfg, dp)
    }

    #[test]
    fn sqrt_datapath_shape() {
        let (cdfg, dp) = sqrt_datapath(FuStrategy::GreedyAware);
        // 2 universal FUs (the paper's 2-FU design).
        assert_eq!(dp.fu_count(), 2);
        assert!(dp.fus.iter().all(|f| f.class == FuClass::Universal));
        // Variable registers for X, Y, I plus the loop-exit flag.
        assert!(dp.var_reg.contains_key("X"));
        assert!(dp.var_reg.contains_key("Y"));
        assert!(dp.var_reg.contains_key("I"));
        // The narrowed counter register is 2 bits wide.
        let i_reg = &dp.regs[dp.var_reg["I"]];
        assert_eq!(i_reg.width, 2);
        assert!(dp.mux_inputs > 0);
        assert_eq!(dp.blocks.len(), cdfg.block_order().len());
    }

    #[test]
    fn all_strategies_build_sqrt() {
        for strategy in [
            FuStrategy::GreedyAware,
            FuStrategy::GreedyBlind,
            FuStrategy::Clique(CliqueMethod::ExactMaxClique),
            FuStrategy::Clique(CliqueMethod::Tseng),
        ] {
            let (_, dp) = sqrt_datapath(strategy);
            assert_eq!(dp.fu_count(), 2, "{strategy:?}");
            assert!(dp.reg_count() >= 4, "{strategy:?}");
        }
    }

    #[test]
    fn dot_lists_components_and_edges() {
        let mut cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        hls_opt::optimize(&mut cdfg);
        let cls = OpClassifier::universal_free_shifts();
        let sched = hls_sched::schedule_cdfg(
            &cdfg,
            &cls,
            &hls_sched::ResourceLimits::universal(2),
            hls_sched::Algorithm::List(hls_sched::Priority::PathLength),
        )
        .unwrap();
        let dp = build_datapath(
            &cdfg,
            &sched,
            &cls,
            &Library::standard(),
            FuStrategy::GreedyAware,
        )
        .unwrap();
        let dot = dp.to_dot(&cdfg, &sched, &cls);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("->"));
        assert!(dot.contains("rv_Y"));
    }

    #[test]
    fn netlist_roundtrip_and_area() {
        let (cdfg, dp) = sqrt_datapath(FuStrategy::GreedyAware);
        let lib = Library::standard();
        let netlist = dp.to_netlist(&cdfg, &lib).unwrap();
        netlist.validate().unwrap();
        let report = hls_rtl::estimate(&netlist, &lib);
        assert!(report.total() > 0.0);
        let v = hls_rtl::to_verilog(&netlist);
        assert!(v.contains("module sqrt"));
    }

    #[test]
    fn temps_shared_across_blocks() {
        let cdfg = hls_lang::compile(hls_workloads::sources::GCD).unwrap();
        let cls = OpClassifier::universal();
        let limits = ResourceLimits::universal(1);
        let sched =
            schedule_cdfg(&cdfg, &cls, &limits, Algorithm::List(Priority::PathLength)).unwrap();
        let dp = build_datapath(
            &cdfg,
            &sched,
            &cls,
            &Library::standard(),
            FuStrategy::GreedyAware,
        )
        .unwrap();
        let temps = dp
            .regs
            .iter()
            .filter(|r| matches!(r.kind, RegKind::Temp(_)))
            .count();
        // Several blocks, but temps are pooled: far fewer than one per value.
        let total_values: usize = cdfg
            .block_order()
            .iter()
            .map(|&b| cdfg.block(b).dfg.value_ids().count())
            .sum();
        assert!(
            temps < total_values / 2,
            "temps = {temps}, values = {total_values}"
        );
    }
}
