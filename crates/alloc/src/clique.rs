//! Clique partitioning of compatibility graphs (Tseng & Siewiorek —
//! tutorial reference [28], Fig. 7).
//!
//! "The problem then becomes one of finding those sets of nodes in the
//! graph all of whose members are connected to one another, since all of
//! the elements in such a set can share the same hardware without
//! conflict ... Unfortunately, finding the maximal cliques in a graph is
//! an NP-hard problem, so in practice greedy heuristics are employed"
//! (§3.2.2).
//!
//! Adjacency is stored as [`BitSet`] rows, so the inner loops — candidate
//! intersection in Bron–Kerbosch, pairwise compatibility and
//! common-neighbor counting in the Tseng heuristic — run word-parallel
//! (64 nodes per machine word) instead of element-by-element over ordered
//! sets.

use hls_cdfg::BitSet;

/// An undirected compatibility graph over `n` elements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompatGraph {
    n: usize,
    adj: Vec<BitSet>,
}

impl CompatGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        CompatGraph {
            n,
            adj: vec![BitSet::new(n); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds a compatibility edge.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range or `a == b`.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a != b && a < self.n && b < self.n, "bad edge ({a},{b})");
        self.adj[a].insert(b);
        self.adj[b].insert(a);
    }

    /// `true` when `a` and `b` are compatible.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].contains(b)
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(BitSet::count).sum::<usize>() / 2
    }

    /// The neighbor row of `a` as a bitset.
    pub fn neighbors(&self, a: usize) -> &BitSet {
        &self.adj[a]
    }

    /// `true` when `nodes` forms a clique.
    pub fn is_clique(&self, nodes: &[usize]) -> bool {
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                if !self.has_edge(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

/// Exact maximum clique by Bron–Kerbosch with pivoting. Exponential in the
/// worst case; intended for the small graphs of data-path allocation.
pub fn max_clique(g: &CompatGraph) -> Vec<usize> {
    let mut best: Vec<usize> = Vec::new();
    let mut r: Vec<usize> = Vec::new();
    bk(
        g,
        &mut r,
        BitSet::full(g.len()),
        BitSet::new(g.len()),
        &mut best,
    );
    best.sort_unstable();
    best
}

fn bk(g: &CompatGraph, r: &mut Vec<usize>, mut p: BitSet, mut x: BitSet, best: &mut Vec<usize>) {
    if p.is_empty() && x.is_empty() {
        if r.len() > best.len() {
            *best = r.clone();
        }
        return;
    }
    if r.len() + p.count() <= best.len() {
        return; // cannot improve
    }
    // Pivot on the vertex with most neighbors in P.
    // P ∪ X is nonempty here (the empty case returned above), so a pivot
    // always exists; bail out rather than panic if that ever changes.
    let Some(pivot) = p
        .iter()
        .chain(x.iter())
        .max_by_key(|&u| g.adj[u].intersection_count(&p))
    else {
        return;
    };
    let candidates: Vec<usize> = p.iter().filter(|&v| !g.adj[pivot].contains(v)).collect();
    for v in candidates {
        r.push(v);
        let mut np = p.clone();
        np.intersect_with(&g.adj[v]);
        let mut nx = x.clone();
        nx.intersect_with(&g.adj[v]);
        bk(g, r, np, nx, best);
        r.pop();
        p.remove(v);
        x.insert(v);
    }
}

/// Clique cover by repeatedly extracting an exact maximum clique.
///
/// Still a heuristic for the (NP-hard) minimum cover, but a strong one on
/// allocation-sized graphs. Each round runs Bron–Kerbosch with `P`
/// restricted to the uncovered nodes — equivalent to rebuilding the
/// induced subgraph (candidate sets only ever shrink within `P`) without
/// the rebuild.
pub fn partition_max_clique(g: &CompatGraph) -> Vec<Vec<usize>> {
    let mut remaining = BitSet::full(g.len());
    let mut out = Vec::new();
    while !remaining.is_empty() {
        let mut best: Vec<usize> = Vec::new();
        let mut r: Vec<usize> = Vec::new();
        bk(
            g,
            &mut r,
            remaining.clone(),
            BitSet::new(g.len()),
            &mut best,
        );
        best.sort_unstable();
        for &v in &best {
            remaining.remove(v);
        }
        out.push(best);
    }
    out
}

/// Tseng/Siewiorek-style greedy partitioning: repeatedly merge the
/// compatible pair with the most common compatible neighbors.
///
/// Groups live in fixed slots (one per original node; merged-away slots
/// are tombstoned in `alive`), each tracking its member set, the nodes
/// compatible with *all* members (the intersection of their adjacency
/// rows), and the set of other live groups it is compatible with. A merge
/// touches one row plus the columns naming the dead slot, so each round
/// is O(groups²) word-parallel set operations rather than O(groups² ·
/// members²) edge probes. Slot order equals the historical vector order,
/// preserving the deterministic lowest-(i, j) tie-break.
pub fn partition_tseng(g: &CompatGraph) -> Vec<Vec<usize>> {
    let n = g.len();
    let mut alive = BitSet::full(n);
    // Per slot: member nodes, and nodes compatible with every member.
    let mut mask: Vec<BitSet> = (0..n)
        .map(|v| {
            let mut m = BitSet::new(n);
            m.insert(v);
            m
        })
        .collect();
    let mut compat: Vec<BitSet> = (0..n).map(|v| g.adj[v].clone()).collect();
    // Per slot: the other live slots it is mutually compatible with.
    let mut compat_groups: Vec<BitSet> = (0..n)
        .map(|v| {
            let mut c = g.adj[v].clone();
            c.remove(v);
            c
        })
        .collect();

    loop {
        // The compatible pair with the most common compatible neighbors;
        // ties to the lowest (i, j). A slot's compat row never contains
        // itself, so the intersection below excludes i and j for free.
        let mut best: Option<(usize, usize, usize)> = None; // (common, i, j)
        for i in alive.iter() {
            for j in compat_groups[i].iter() {
                if j <= i {
                    continue;
                }
                let common = compat_groups[i].intersection_count(&compat_groups[j]);
                let better = match best {
                    None => true,
                    Some((bc, bi, bj)) => common > bc || (common == bc && (i, j) < (bi, bj)),
                };
                if better {
                    best = Some((common, i, j));
                }
            }
        }
        let Some((_, i, j)) = best else { break };
        // Merge slot j into slot i.
        alive.remove(j);
        let (mj, cj) = (mask[j].clone(), compat[j].clone());
        mask[i].union_with(&mj);
        compat[i].intersect_with(&cj);
        for k in alive.iter() {
            compat_groups[k].remove(j);
            if k == i {
                continue;
            }
            // Compatibility with the merged group: every member of k must
            // be compatible with every member of i (symmetric check).
            if mask[k].is_subset_of(&compat[i]) {
                compat_groups[i].insert(k);
                compat_groups[k].insert(i);
            } else {
                compat_groups[i].remove(k);
                compat_groups[k].remove(i);
            }
        }
    }
    alive.iter().map(|i| mask[i].iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 7 compatibility graph: ops {a1,a2,a3,a4} with a1–a3,
    /// a1–a4, a3–a4 compatible (different steps) and a2 compatible with
    /// a3 and a4 but not a1 (same step).
    fn fig7() -> CompatGraph {
        let mut g = CompatGraph::new(4); // 0:a1 1:a2 2:a3 3:a4
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g.add_edge(2, 3);
        g.add_edge(1, 2);
        g.add_edge(1, 3);
        g
    }

    #[test]
    fn max_clique_finds_the_triangle() {
        let g = fig7();
        let c = max_clique(&g);
        assert_eq!(c.len(), 3);
        assert!(g.is_clique(&c));
        assert!(c.contains(&3), "a4 is in every 3-clique");
    }

    #[test]
    fn fig7_partition_two_adders() {
        // "One clique is highlighted, showing that the three operations can
        // share the same adder, just as in the greedy example."
        for part in [partition_max_clique(&fig7()), partition_tseng(&fig7())] {
            assert_eq!(part.len(), 2, "{part:?}");
            let sizes: Vec<usize> = {
                let mut s: Vec<usize> = part.iter().map(Vec::len).collect();
                s.sort_unstable();
                s
            };
            assert_eq!(sizes, vec![1, 3]);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let g = CompatGraph::new(0);
        assert!(partition_max_clique(&g).is_empty());
        let g = CompatGraph::new(1);
        assert_eq!(partition_max_clique(&g), vec![vec![0]]);
        assert_eq!(max_clique(&g), vec![0]);
    }

    #[test]
    fn edgeless_graph_needs_n_cliques() {
        let g = CompatGraph::new(5);
        assert_eq!(partition_max_clique(&g).len(), 5);
        assert_eq!(partition_tseng(&g).len(), 5);
    }

    #[test]
    fn complete_graph_is_one_clique() {
        let mut g = CompatGraph::new(6);
        for i in 0..6 {
            for j in i + 1..6 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(max_clique(&g).len(), 6);
        assert_eq!(partition_max_clique(&g).len(), 1);
        assert_eq!(partition_tseng(&g).len(), 1);
    }

    /// Both partitioners return genuine clique covers.
    #[test]
    fn partitions_are_clique_covers() {
        hls_testkit::forall(
            &hls_testkit::Config::default(),
            |rng| {
                (
                    rng.usize_in(1, 12),
                    rng.vec(0, 40, |r| (r.usize_in(0, 12), r.usize_in(0, 12))),
                )
            },
            |(n, edges)| {
                let n = *n;
                let mut g = CompatGraph::new(n);
                for &(a, b) in edges {
                    let (a, b) = (a % n, b % n);
                    if a != b {
                        g.add_edge(a, b);
                    }
                }
                for part in [partition_max_clique(&g), partition_tseng(&g)] {
                    let mut seen = std::collections::BTreeSet::new();
                    for group in &part {
                        assert!(g.is_clique(group));
                        for &v in group {
                            assert!(seen.insert(v), "node covered twice");
                        }
                    }
                    assert_eq!(seen.len(), n);
                }
            },
        );
    }

    /// The exact-max-clique cover of the empty graph has one singleton
    /// group per node.
    #[test]
    fn cover_sizes_bounded() {
        hls_testkit::forall(
            &hls_testkit::Config::default(),
            |rng| rng.usize_in(1, 10),
            |&n| {
                let g = CompatGraph::new(n);
                assert_eq!(partition_max_clique(&g).len(), n);
            },
        );
    }
}
