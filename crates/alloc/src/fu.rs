//! Functional-unit allocation and binding: greedy interconnect-aware
//! assignment (Fig. 6) and clique partitioning (Fig. 7).

use std::collections::{BTreeSet, HashMap, HashSet};

use hls_cdfg::{DataFlowGraph, OpId, ValueId};
use hls_sched::{FuClass, OpClassifier, Schedule};

use crate::clique::{partition_max_clique, partition_tseng, CompatGraph};
use crate::interconnect::{source_of, Source};
use crate::registers::RegisterAllocation;

/// One allocated functional unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuInstance {
    /// The unit's class.
    pub class: FuClass,
    /// Operations bound to it, in binding order.
    pub ops: Vec<OpId>,
    /// Input port count (the max arity among bound ops).
    pub ports: usize,
}

/// A complete FU allocation for one block.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuAllocation {
    /// The allocated units.
    pub fus: Vec<FuInstance>,
    /// Unit index per operation.
    pub binding: HashMap<OpId, usize>,
    /// Ops whose (commutative) operands were swapped to share port wiring.
    pub swapped: HashSet<OpId>,
}

impl FuAllocation {
    /// Number of units.
    pub fn count(&self) -> usize {
        self.fus.len()
    }

    /// Number of units of `class`.
    pub fn count_of(&self, class: FuClass) -> usize {
        self.fus.iter().filter(|f| f.class == class).count()
    }

    /// The operand order feeding the unit's ports (commutative swaps
    /// applied).
    pub fn port_order(&self, dfg: &DataFlowGraph, op: OpId) -> Vec<ValueId> {
        let mut operands = dfg.op(op).operands.clone();
        if self.swapped.contains(&op) && operands.len() == 2 {
            operands.swap(0, 1);
        }
        operands
    }

    /// Checks that each unit runs at most one op per step and only ops of
    /// its class.
    pub fn is_valid(
        &self,
        dfg: &DataFlowGraph,
        classifier: &OpClassifier,
        schedule: &Schedule,
    ) -> bool {
        for (idx, fu) in self.fus.iter().enumerate() {
            let mut steps = BTreeSet::new();
            for &op in &fu.ops {
                if self.binding.get(&op) != Some(&idx) {
                    return false;
                }
                if classifier.classify(dfg, op) != Some(fu.class) {
                    return false;
                }
                match schedule.step(op) {
                    Some(s) if steps.insert(s) => {}
                    _ => return false,
                }
            }
        }
        // Every step-taking op bound exactly once.
        dfg.op_ids()
            .filter(|&op| classifier.classify(dfg, op).is_some())
            .all(|op| self.binding.contains_key(&op))
    }
}

/// Greedy, constructive FU allocation in control-step order (Fig. 6).
///
/// With `interconnect_aware` set, each op goes to the compatible free unit
/// whose existing connections make the assignment cheapest (new mux inputs
/// on input ports and the result register's input); ties break toward the
/// lowest unit index. Without it, the op takes the first free unit — the
/// figure's "without checking for interconnection costs" strawman.
pub fn greedy_allocation(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
    schedule: &Schedule,
    regs: &RegisterAllocation,
    interconnect_aware: bool,
) -> FuAllocation {
    let mut alloc = FuAllocation::default();
    // Mirror of the growing connection state.
    let mut fu_ports: Vec<Vec<BTreeSet<Source>>> = Vec::new();
    let mut reg_inputs: HashMap<usize, BTreeSet<Source>> = HashMap::new();
    let mut fu_busy: Vec<BTreeSet<u32>> = Vec::new();

    for step in 0..schedule.num_steps() {
        for op in schedule.ops_in_step(step) {
            let Some(class) = classifier.classify(dfg, op) else {
                continue;
            };
            let arity = dfg.op(op).kind.arity();
            let commutative = dfg.op(op).kind.is_commutative();
            let sources: Vec<Source> = dfg
                .op(op)
                .operands
                .iter()
                .map(|&v| source_of(dfg, classifier, schedule, regs, &alloc.binding, v, step))
                .collect();
            let dest = dfg.result(op).and_then(|r| regs.register_of(r));

            let mut best: Option<(usize, usize, bool)> = None; // (cost, fu, swap)
            for (f, fu) in alloc.fus.iter().enumerate() {
                if fu.class != class || fu_busy[f].contains(&step) {
                    continue;
                }
                for swap in [false, true] {
                    if swap && !commutative {
                        continue;
                    }
                    let mut cost = 0usize;
                    for (port, src) in ordered(&sources, swap).iter().enumerate() {
                        let set = &fu_ports[f][port.min(fu_ports[f].len().saturating_sub(1))];
                        if !set.is_empty() && !set.contains(*src) {
                            cost += 1;
                        }
                    }
                    if let Some(r) = dest {
                        let src = Source::Wire(format!("fu{f}"));
                        if let Some(set) = reg_inputs.get(&r) {
                            if !set.is_empty() && !set.contains(&src) {
                                cost += 1;
                            }
                        }
                    }
                    let better = match best {
                        None => true,
                        Some((bc, bf, _)) => {
                            if interconnect_aware {
                                cost < bc || (cost == bc && f < bf)
                            } else {
                                f < bf
                            }
                        }
                    };
                    if better {
                        best = Some((cost, f, swap));
                    }
                }
            }

            let (f, swap) = match best {
                Some((_, f, swap)) => (f, swap),
                None => {
                    alloc.fus.push(FuInstance {
                        class,
                        ops: Vec::new(),
                        ports: arity,
                    });
                    fu_ports.push(vec![BTreeSet::new(); arity.max(1)]);
                    fu_busy.push(BTreeSet::new());
                    (alloc.fus.len() - 1, false)
                }
            };
            // Commit.
            alloc.binding.insert(op, f);
            alloc.fus[f].ops.push(op);
            alloc.fus[f].ports = alloc.fus[f].ports.max(arity);
            while fu_ports[f].len() < arity {
                fu_ports[f].push(BTreeSet::new());
            }
            fu_busy[f].insert(step);
            if swap {
                alloc.swapped.insert(op);
            }
            for (port, src) in ordered(&sources, swap).iter().enumerate() {
                fu_ports[f][port].insert((*src).clone());
            }
            if let Some(r) = dest {
                reg_inputs
                    .entry(r)
                    .or_default()
                    .insert(Source::Wire(format!("fu{f}")));
            }
        }
    }
    alloc
}

fn ordered(sources: &[Source], swap: bool) -> Vec<&Source> {
    let mut v: Vec<&Source> = sources.iter().collect();
    if swap && v.len() == 2 {
        v.swap(0, 1);
    }
    v
}

/// Which clique-partitioning heuristic to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CliqueMethod {
    /// Repeated exact maximum cliques (Bron–Kerbosch).
    ExactMaxClique,
    /// Tseng/Siewiorek pairwise merging.
    Tseng,
}

/// Clique-partitioning FU allocation (Fig. 7): ops of the same class are
/// compatible when scheduled in different steps; each clique of the
/// compatibility graph shares one unit.
pub fn clique_allocation(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
    schedule: &Schedule,
    method: CliqueMethod,
) -> FuAllocation {
    let mut alloc = FuAllocation::default();
    let mut classes: Vec<FuClass> = dfg
        .op_ids()
        .filter_map(|op| classifier.classify(dfg, op))
        .collect();
    classes.sort();
    classes.dedup();
    for class in classes {
        let ops: Vec<OpId> = dfg
            .op_ids()
            .filter(|&op| classifier.classify(dfg, op) == Some(class))
            .collect();
        let mut g = CompatGraph::new(ops.len());
        for i in 0..ops.len() {
            for j in i + 1..ops.len() {
                if schedule.step(ops[i]) != schedule.step(ops[j]) {
                    g.add_edge(i, j);
                }
            }
        }
        let groups = match method {
            CliqueMethod::ExactMaxClique => partition_max_clique(&g),
            CliqueMethod::Tseng => partition_tseng(&g),
        };
        for group in groups {
            let members: Vec<OpId> = group.iter().map(|&i| ops[i]).collect();
            let ports = members
                .iter()
                .map(|&o| dfg.op(o).kind.arity())
                .max()
                .unwrap_or(2);
            let idx = alloc.fus.len();
            for &m in &members {
                alloc.binding.insert(m, idx);
            }
            alloc.fus.push(FuInstance {
                class,
                ops: members,
                ports,
            });
        }
    }
    alloc
}

/// The lower bound on units of each class: the peak per-step concurrency.
pub fn fu_lower_bound(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
    schedule: &Schedule,
) -> HashMap<FuClass, usize> {
    schedule.fu_usage(dfg, classifier).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::value_intervals;
    use crate::registers::left_edge;
    use hls_sched::{asap_schedule, ResourceLimits};
    use hls_workloads::figures::fig6_graph;

    fn fig6_setup() -> (DataFlowGraph, Schedule, OpClassifier, RegisterAllocation) {
        let (g, _) = fig6_graph();
        let cls = OpClassifier::typed();
        let s = asap_schedule(&g, &cls, &ResourceLimits::unlimited()).unwrap();
        let regs = left_edge(&value_intervals(&g, &s));
        (g, s, cls, regs)
    }

    /// The Fig. 6 narrative: a2 lands on adder 2 (a1 holds adder 1 in the
    /// same step), and a4 goes back to adder 1 because the register holding
    /// its operand already feeds that adder.
    #[test]
    fn fig6_greedy_matches_paper() {
        let (g, s, cls, regs) = fig6_setup();
        let (_, ids) = fig6_graph();
        let (a1, a2, _a3, a4, m1, m2) = ids;
        let alloc = greedy_allocation(&g, &cls, &s, &regs, true);
        assert!(alloc.is_valid(&g, &cls, &s));
        assert_eq!(alloc.count_of(FuClass::Alu), 2, "two adders");
        assert_eq!(alloc.count_of(FuClass::Multiplier), 2, "two multipliers");
        assert_ne!(alloc.binding[&a1], alloc.binding[&a2], "same step");
        assert_ne!(alloc.binding[&m1], alloc.binding[&m2], "same step");
        assert_eq!(
            alloc.binding[&a4], alloc.binding[&a1],
            "a4 reuses adder 1's register connection"
        );
    }

    #[test]
    fn fig6_aware_beats_blind_on_mux_cost() {
        let (g, s, cls, regs) = fig6_setup();
        let aware = greedy_allocation(&g, &cls, &s, &regs, true);
        let blind = greedy_allocation(&g, &cls, &s, &regs, false);
        let aware_cost = crate::interconnect::connections(&g, &cls, &s, &regs, &aware).mux_inputs();
        let blind_cost = crate::interconnect::connections(&g, &cls, &s, &regs, &blind).mux_inputs();
        assert!(
            aware_cost <= blind_cost,
            "aware {aware_cost} vs blind {blind_cost}"
        );
    }

    #[test]
    fn clique_allocation_matches_greedy_unit_count_on_fig6() {
        let (g, s, cls, _) = fig6_setup();
        for method in [CliqueMethod::ExactMaxClique, CliqueMethod::Tseng] {
            let alloc = clique_allocation(&g, &cls, &s, method);
            assert!(alloc.is_valid(&g, &cls, &s), "{method:?}");
            assert_eq!(alloc.count_of(FuClass::Alu), 2, "{method:?}");
            assert_eq!(alloc.count_of(FuClass::Multiplier), 2, "{method:?}");
            // The 3-op adder clique of Fig. 7.
            let adder_sizes: Vec<usize> = alloc
                .fus
                .iter()
                .filter(|f| f.class == FuClass::Alu)
                .map(|f| f.ops.len())
                .collect();
            assert!(adder_sizes.contains(&3), "{method:?}: {adder_sizes:?}");
        }
    }

    #[test]
    fn greedy_hits_lower_bound_on_benchmarks() {
        let cls = OpClassifier::typed();
        for (name, g) in hls_workloads::all_benchmarks() {
            let s = asap_schedule(&g, &cls, &ResourceLimits::unlimited()).unwrap();
            let regs = left_edge(&value_intervals(&g, &s));
            let alloc = greedy_allocation(&g, &cls, &s, &regs, true);
            assert!(alloc.is_valid(&g, &cls, &s), "{name}");
            for (class, bound) in fu_lower_bound(&g, &cls, &s) {
                assert_eq!(
                    alloc.count_of(class),
                    bound,
                    "{name}: greedy adds units only when all are busy"
                );
            }
        }
    }

    #[test]
    fn commutative_swap_reuses_port_wiring() {
        // Two adds in different steps with mirrored operands: with swapping,
        // one adder and no new port sources.
        let mut g = DataFlowGraph::new();
        let x = g.add_input("x", 32);
        let y = g.add_input("y", 32);
        let a1 = g.add_op(hls_cdfg::OpKind::Add, vec![x, y]);
        let z = g.add_op(hls_cdfg::OpKind::Neg, vec![g.result(a1).unwrap()]);
        let a2 = g.add_op(hls_cdfg::OpKind::Add, vec![y, x]);
        g.set_output("p", g.result(z).unwrap());
        g.set_output("q", g.result(a2).unwrap());
        let cls = OpClassifier::typed();
        let s =
            asap_schedule(&g, &cls, &ResourceLimits::unlimited().with(FuClass::Alu, 1)).unwrap();
        let regs = left_edge(&value_intervals(&g, &s));
        let alloc = greedy_allocation(&g, &cls, &s, &regs, true);
        let conn = crate::interconnect::connections(&g, &cls, &s, &regs, &alloc);
        // a2's operands reuse a1's port wiring via the swap.
        if alloc.binding[&a2] == alloc.binding[&a1] {
            assert!(alloc.swapped.contains(&a2) || conn.mux_inputs() == 0);
        }
    }
}
