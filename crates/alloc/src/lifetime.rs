//! Value lifetime analysis.
//!
//! "In memory allocation, values that are generated in one control step
//! and used in another must be assigned to storage. Values may be assigned
//! to the same register when their lifetimes do not overlap" (§2).

use hls_cdfg::{DataFlowGraph, OpKind, ValueDef, ValueId};
use hls_sched::Schedule;

/// The storage interval of a value, in control-step boundaries: the value
/// occupies a register from the start of step `start` through the end of
/// step `end` (inclusive).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// The stored value.
    pub value: ValueId,
    /// First step needing the register.
    pub start: u32,
    /// Last step needing the register.
    pub end: u32,
}

impl Interval {
    /// `true` when two intervals overlap (cannot share a register).
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Interval length in steps (intervals are never empty).
    pub fn steps(&self) -> u32 {
        self.end - self.start + 1
    }
}

/// Computes the register intervals of a scheduled block.
///
/// * Block inputs are live from step 0 until their last use (they arrive
///   in a register from the previous block).
/// * An op result produced at step `d` is registered at the `d → d+1`
///   boundary and lives until its last consuming step; a value consumed
///   only by chained ops in its own step needs no register.
/// * Block outputs stay live through the end of the block
///   (`schedule.num_steps() - 1`), where the inter-block transfer happens.
/// * Constants are wired, never stored.
///
/// Values with no storage need are omitted.
pub fn value_intervals(dfg: &DataFlowGraph, schedule: &Schedule) -> Vec<Interval> {
    let last_step = schedule.num_steps().saturating_sub(1);
    let mut out = Vec::new();
    for v in dfg.value_ids() {
        let val = dfg.value(v);
        let start = match val.def {
            ValueDef::BlockInput(_) => 0,
            ValueDef::Op(p) => {
                if dfg.op(p).dead || dfg.op(p).kind == OpKind::Const {
                    continue;
                }
                match schedule.step(p) {
                    Some(s) => s + 1,
                    None => continue,
                }
            }
        };
        let mut end: Option<u32> = None;
        for &user in &val.uses {
            if dfg.op(user).dead {
                continue;
            }
            if let Some(us) = schedule.step(user) {
                // A chained consumer in the producer's own step reads the
                // combinational output, not a register.
                if us >= start {
                    end = Some(end.map_or(us, |e: u32| e.max(us)));
                }
            }
        }
        let is_output = dfg.outputs().iter().any(|(_, ov)| *ov == v);
        if is_output {
            end = Some(end.map_or(last_step.max(start), |e: u32| e.max(last_step).max(start)));
        }
        if let Some(end) = end {
            out.push(Interval {
                value: v,
                start,
                end,
            });
        }
    }
    out.sort_by_key(|i| (i.start, i.end, i.value));
    out
}

/// Renders the intervals as an ASCII Gantt chart (one row per value, one
/// column per control step) — the classic lifetime diagram of register
/// allocation papers.
pub fn render_gantt(dfg: &DataFlowGraph, intervals: &[Interval]) -> String {
    use std::fmt::Write as _;
    let Some(max_step) = intervals.iter().map(|i| i.end).max() else {
        return String::from("(no stored values)\n");
    };
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {}",
        "value",
        (0..=max_step)
            .map(|t| format!("{:>2}", t + 1))
            .collect::<String>()
    );
    for iv in intervals {
        let v = dfg.value(iv.value);
        let name = if v.name.is_empty() {
            format!("v{}", iv.value.index())
        } else {
            v.name.clone()
        };
        let mut row = String::new();
        for t in 0..=max_step {
            row.push(' ');
            row.push(if t >= iv.start && t <= iv.end {
                '#'
            } else {
                '.'
            });
        }
        let _ = writeln!(s, "{name:<12}{row}");
    }
    s
}

/// The maximum number of simultaneously live values — the lower bound on
/// register count that left-edge allocation provably achieves.
///
/// Sorted-endpoint sweep: O(n log n) in the number of intervals,
/// independent of the schedule length.
pub fn max_live(intervals: &[Interval]) -> usize {
    // +1 at each interval start, -1 one past each (inclusive) end. At the
    // same step the -1 sorts first: an interval ending at `s` is disjoint
    // from one starting at `s + 1`, so the release applies before the
    // acquire.
    let mut events: Vec<(u32, i32)> = Vec::with_capacity(2 * intervals.len());
    for iv in intervals {
        events.push((iv.start, 1));
        events.push((iv.end + 1, -1));
    }
    events.sort_unstable_by_key(|&(step, delta)| (step, delta));
    let mut live = 0i32;
    let mut peak = 0i32;
    for (_, delta) in events {
        live += delta;
        peak = peak.max(live);
    }
    peak as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_cdfg::{DataFlowGraph, Fx, OpKind};
    use hls_sched::{asap_schedule, OpClassifier, ResourceLimits};

    /// x -> inc -> neg -> out, plus x used late by `add`.
    fn block() -> (DataFlowGraph, Schedule, OpClassifier) {
        let mut g = DataFlowGraph::new();
        let x = g.add_input("x", 32);
        let inc = g.add_op(OpKind::Inc, vec![x]);
        let neg = g.add_op(OpKind::Neg, vec![g.result(inc).unwrap()]);
        let add = g.add_op(OpKind::Add, vec![g.result(neg).unwrap(), x]);
        g.set_output("y", g.result(add).unwrap());
        let cls = OpClassifier::universal();
        let s = asap_schedule(&g, &cls, &ResourceLimits::single_universal()).unwrap();
        (g, s, cls)
    }

    #[test]
    fn input_lives_until_last_use() {
        let (g, s, _) = block();
        let iv = value_intervals(&g, &s);
        let x = g.inputs()[0];
        let xi = iv.iter().find(|i| i.value == x).unwrap();
        assert_eq!(xi.start, 0);
        assert_eq!(xi.end, 2, "x read by add in step 2");
    }

    #[test]
    fn output_lives_to_block_end() {
        let (g, s, _) = block();
        let iv = value_intervals(&g, &s);
        let (_, out) = &g.outputs()[0];
        let oi = iv.iter().find(|i| i.value == *out).unwrap();
        assert_eq!(oi.start, 3, "add runs in step 2, registers at 2→3");
        assert_eq!(oi.end, 3);
    }

    #[test]
    fn constants_never_stored() {
        let mut g = DataFlowGraph::new();
        let x = g.add_input("x", 32);
        let c = g.add_const_value(Fx::ONE);
        let a = g.add_op(OpKind::Add, vec![x, c]);
        g.set_output("y", g.result(a).unwrap());
        let cls = OpClassifier::universal();
        let s = asap_schedule(&g, &cls, &ResourceLimits::unlimited()).unwrap();
        let iv = value_intervals(&g, &s);
        assert!(iv.iter().all(|i| i.value != c));
    }

    #[test]
    fn chained_consumer_needs_no_register() {
        // add -> shr (free, same step) -> output: the add result has no
        // interval; the shifted value does.
        let mut g = DataFlowGraph::new();
        let x = g.add_input("x", 32);
        let one = g.add_const_value(Fx::ONE);
        let a = g.add_op(OpKind::Add, vec![x, x]);
        let sh = g.add_op(OpKind::Shr, vec![g.result(a).unwrap(), one]);
        g.set_output("y", g.result(sh).unwrap());
        let cls = OpClassifier::universal_free_shifts();
        let s = asap_schedule(&g, &cls, &ResourceLimits::unlimited()).unwrap();
        let iv = value_intervals(&g, &s);
        assert!(iv.iter().all(|i| i.value != g.result(a).unwrap()));
        assert!(iv.iter().any(|i| i.value == g.result(sh).unwrap()));
    }

    #[test]
    fn gantt_renders_rows_and_bars() {
        let (g, s, _) = block();
        let iv = value_intervals(&g, &s);
        let chart = render_gantt(&g, &iv);
        assert!(chart.contains("value"));
        assert!(chart.contains('#'));
        assert_eq!(chart.lines().count(), iv.len() + 1);
        assert_eq!(render_gantt(&g, &[]), "(no stored values)\n");
    }

    #[test]
    fn max_live_counts_peak() {
        let iv = vec![
            Interval {
                value: hls_cdfg::Id::from_raw(0),
                start: 0,
                end: 2,
            },
            Interval {
                value: hls_cdfg::Id::from_raw(1),
                start: 1,
                end: 3,
            },
            Interval {
                value: hls_cdfg::Id::from_raw(2),
                start: 2,
                end: 2,
            },
            Interval {
                value: hls_cdfg::Id::from_raw(3),
                start: 4,
                end: 5,
            },
        ];
        assert_eq!(max_live(&iv), 3, "steps 2 has three live values");
        assert_eq!(max_live(&[]), 0);
    }

    #[test]
    fn overlap_predicate() {
        let a = Interval {
            value: hls_cdfg::Id::from_raw(0),
            start: 0,
            end: 2,
        };
        let b = Interval {
            value: hls_cdfg::Id::from_raw(1),
            start: 2,
            end: 4,
        };
        let c = Interval {
            value: hls_cdfg::Id::from_raw(2),
            start: 3,
            end: 4,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }
}
