//! Differential tests for the bitset clique engines: the word-parallel
//! Bron–Kerbosch and Tseng partitioner in `hls_alloc::clique` are checked
//! against straightforward `BTreeSet`-based reference implementations of
//! the same algorithms on seeded random graphs. The references spell out
//! the intended set semantics one element at a time, so any bit-twiddling
//! slip in the production code (a missed tail word, an off-by-one in the
//! universe size, a stale tombstone) diverges here.

use std::collections::BTreeSet;

use hls_alloc::{max_clique, partition_max_clique, partition_tseng, CompatGraph};
use hls_testkit::{forall, Config, SplitMix64};

/// A random graph instance, replayable from its config.
#[derive(Debug)]
struct Instance {
    n: usize,
    /// Candidate edges, reduced mod `n` when applied.
    edges: Vec<(usize, usize)>,
}

fn gen_instance(rng: &mut SplitMix64) -> Instance {
    let n = rng.usize_in(1, 28);
    let max_edges = n * (n - 1) / 2;
    Instance {
        n,
        edges: rng.vec(0, max_edges, |r| (r.usize_in(0, 27), r.usize_in(0, 27))),
    }
}

/// Builds the production graph and the reference adjacency side by side.
fn build(inst: &Instance) -> (CompatGraph, Vec<BTreeSet<usize>>) {
    let n = inst.n;
    let mut g = CompatGraph::new(n);
    let mut adj = vec![BTreeSet::new(); n];
    for &(a, b) in &inst.edges {
        let (a, b) = (a % n, b % n);
        if a != b && !g.has_edge(a, b) {
            g.add_edge(a, b);
            adj[a].insert(b);
            adj[b].insert(a);
        }
    }
    (g, adj)
}

/// Reference Bron–Kerbosch with pivoting over `BTreeSet`s, restricted to
/// the candidate set `p` — the element-at-a-time mirror of the bitset
/// recursion (same pivot rule, same ascending candidate order).
fn ref_bk(
    adj: &[BTreeSet<usize>],
    r: &mut Vec<usize>,
    p: BTreeSet<usize>,
    x: BTreeSet<usize>,
    best: &mut Vec<usize>,
) {
    if p.is_empty() && x.is_empty() {
        if r.len() > best.len() {
            *best = r.clone();
        }
        return;
    }
    if r.len() + p.len() <= best.len() {
        return;
    }
    let Some(pivot) = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| adj[u].intersection(&p).count())
    else {
        return;
    };
    let candidates: Vec<usize> = p
        .iter()
        .copied()
        .filter(|v| !adj[pivot].contains(v))
        .collect();
    let mut p = p;
    let mut x = x;
    for v in candidates {
        r.push(v);
        let np: BTreeSet<usize> = p.intersection(&adj[v]).copied().collect();
        let nx: BTreeSet<usize> = x.intersection(&adj[v]).copied().collect();
        ref_bk(adj, r, np, nx, best);
        r.pop();
        p.remove(&v);
        x.insert(v);
    }
}

fn ref_max_clique(adj: &[BTreeSet<usize>], p: BTreeSet<usize>) -> Vec<usize> {
    let mut best = Vec::new();
    ref_bk(adj, &mut Vec::new(), p, BTreeSet::new(), &mut best);
    best.sort_unstable();
    best
}

/// Reference max-clique cover: extract a maximum clique of the remaining
/// nodes until none are left.
fn ref_partition_max_clique(adj: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    let mut remaining: BTreeSet<usize> = (0..adj.len()).collect();
    let mut out = Vec::new();
    while !remaining.is_empty() {
        let best = ref_max_clique(adj, remaining.clone());
        for v in &best {
            remaining.remove(v);
        }
        out.push(best);
    }
    out
}

/// Reference Tseng partitioner over plain vectors and sets: groups merge
/// greedily by most common compatible neighbor groups, ties to the
/// lowest (i, j) in current vector order.
fn ref_partition_tseng(adj: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut groups: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let compatible =
        |a: &[usize], b: &[usize]| a.iter().all(|&x| b.iter().all(|&y| adj[x].contains(&y)));
    loop {
        let mut best: Option<(usize, usize, usize)> = None; // (common, i, j)
        for i in 0..groups.len() {
            for j in i + 1..groups.len() {
                if !compatible(&groups[i], &groups[j]) {
                    continue;
                }
                let common = (0..groups.len())
                    .filter(|&k| {
                        k != i
                            && k != j
                            && compatible(&groups[k], &groups[i])
                            && compatible(&groups[k], &groups[j])
                    })
                    .count();
                let better = match best {
                    None => true,
                    Some((bc, bi, bj)) => common > bc || (common == bc && (i, j) < (bi, bj)),
                };
                if better {
                    best = Some((common, i, j));
                }
            }
        }
        let Some((_, i, j)) = best else { break };
        let merged = groups.remove(j);
        groups[i].extend(merged);
        groups[i].sort_unstable();
    }
    groups
}

/// Sorted group sizes — the partition shape the two implementations must
/// agree on.
fn sizes(part: &[Vec<usize>]) -> Vec<usize> {
    let mut s: Vec<usize> = part.iter().map(Vec::len).collect();
    s.sort_unstable();
    s
}

fn assert_valid_cover(g: &CompatGraph, part: &[Vec<usize>], label: &str) {
    let mut seen = BTreeSet::new();
    for group in part {
        assert!(g.is_clique(group), "{label}: invalid clique {group:?}");
        for &v in group {
            assert!(seen.insert(v), "{label}: node {v} covered twice");
        }
    }
    assert_eq!(seen.len(), g.len(), "{label}: cover misses nodes");
}

#[test]
fn bitset_max_clique_matches_set_reference() {
    forall(&Config::cases(128), gen_instance, |inst| {
        let (g, adj) = build(inst);
        let got = max_clique(&g);
        let reference = ref_max_clique(&adj, (0..inst.n).collect());
        assert!(g.is_clique(&got));
        assert_eq!(
            got.len(),
            reference.len(),
            "clique size diverged: bitset {got:?} vs reference {reference:?}"
        );
        // Same pivot and candidate order ⇒ the very same clique.
        assert_eq!(got, reference);
    });
}

#[test]
fn bitset_partitions_match_set_reference() {
    forall(&Config::cases(128), gen_instance, |inst| {
        let (g, adj) = build(inst);

        let got = partition_max_clique(&g);
        let reference = ref_partition_max_clique(&adj);
        assert_valid_cover(&g, &got, "partition_max_clique");
        assert_eq!(sizes(&got), sizes(&reference), "max-clique cover shape");
        assert_eq!(got, reference, "max-clique cover contents");

        let got = partition_tseng(&g);
        let reference = ref_partition_tseng(&adj);
        assert_valid_cover(&g, &got, "partition_tseng");
        assert_eq!(sizes(&got), sizes(&reference), "tseng partition shape");
    });
}
