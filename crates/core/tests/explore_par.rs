//! Differential tests for the parallel, cached exploration engine: the
//! parallel path must be byte-identical to the serial reference, cached
//! points must actually hit, and every explored point must respect the
//! dependence lower bound.

use hls_core::{
    pareto_front, sweep_fus, sweep_grid, ControlStyle, Explorer, GridSpec, Synthesizer,
};
use hls_ctrl::EncodingStyle;
use hls_sched::{Algorithm, Priority};

fn grid() -> GridSpec {
    GridSpec {
        fus: vec![1, 2, 3],
        algorithms: vec![
            Algorithm::Asap,
            Algorithm::List(Priority::PathLength),
            Algorithm::List(Priority::Urgency),
        ],
        controls: vec![
            ControlStyle::Hardwired(EncodingStyle::Binary),
            ControlStyle::Microcode,
        ],
    }
}

/// (a) Parallel `sweep_fus` returns byte-identical `DesignPoint` vectors
/// to the serial path, at several thread counts.
#[test]
fn parallel_sweep_fus_matches_serial() {
    let base = Synthesizer::new();
    let serial = sweep_fus(&base, hls_workloads::sources::DIFFEQ, 5).unwrap();
    for threads in [1, 2, 4, 8] {
        let par = Explorer::with_threads(threads)
            .sweep_fus(&base, hls_workloads::sources::DIFFEQ, 5)
            .unwrap();
        assert_eq!(par, serial, "thread count {threads} diverged from serial");
    }
}

/// (a') The full multi-dimensional grid is also identical and
/// order-stable across repeated parallel runs.
#[test]
fn parallel_sweep_grid_matches_serial_and_is_order_stable() {
    let base = Synthesizer::new();
    let spec = grid();
    let serial = sweep_grid(&base, hls_workloads::sources::DIFFEQ, &spec).unwrap();
    assert_eq!(serial.len(), spec.len());
    let explorer = Explorer::with_threads(4);
    let first = explorer
        .sweep_grid(&base, hls_workloads::sources::DIFFEQ, &spec)
        .unwrap();
    let second = explorer
        .sweep_grid(&base, hls_workloads::sources::DIFFEQ, &spec)
        .unwrap();
    assert_eq!(first, serial, "parallel grid diverged from serial");
    assert_eq!(second, serial, "warm-cache rerun diverged");
}

/// (b) The unconstrained dependence bound (ASAP latency with effectively
/// unlimited FUs) never exceeds the resource-constrained list latency of
/// any explored point.
#[test]
fn asap_bound_holds_for_every_explored_point() {
    let base = Synthesizer::new();
    let asap_floor = base
        .clone()
        .universal_fus(64)
        .algorithm(Algorithm::Asap)
        .synthesize_source(hls_workloads::sources::DIFFEQ)
        .unwrap()
        .latency;
    let spec = GridSpec {
        fus: vec![1, 2, 3, 4],
        algorithms: vec![
            Algorithm::List(Priority::PathLength),
            Algorithm::List(Priority::Urgency),
            Algorithm::List(Priority::Mobility),
        ],
        controls: vec![ControlStyle::Hardwired(EncodingStyle::Binary)],
    };
    let points = Explorer::with_threads(4)
        .sweep_grid(&base, hls_workloads::sources::DIFFEQ, &spec)
        .unwrap();
    for p in &points {
        assert!(
            asap_floor <= p.latency,
            "dependence bound {asap_floor} exceeds list latency {} at {p:?}",
            p.latency
        );
    }
}

/// (c) Repeated grid points never reach the memo cache: a grid with
/// duplicated coordinates dispatches each distinct point once (duplicates
/// are filled by fan-out, not cache lookups), and a rerun of the same
/// sweep is answered entirely from cache.
#[test]
fn memo_cache_hits_on_repeated_points() {
    let base = Synthesizer::new();
    let explorer = Explorer::with_threads(2);
    // Duplicate FU axis: 6 grid points but only 3 distinct configurations.
    let spec = GridSpec {
        fus: vec![1, 2, 3, 1, 2, 3],
        algorithms: vec![Algorithm::List(Priority::PathLength)],
        controls: vec![ControlStyle::Hardwired(EncodingStyle::Binary)],
    };
    let points = explorer
        .sweep_grid(&base, hls_workloads::sources::SQRT, &spec)
        .unwrap();
    assert_eq!(points.len(), 6);
    assert_eq!(points[0], points[3]);
    assert_eq!(points[1], points[4]);
    assert_eq!(points[2], points[5]);
    let stats = explorer.cache_stats();
    assert_eq!(
        stats.misses, 3,
        "each distinct point synthesized once: {stats:?}"
    );
    assert_eq!(
        stats.hits, 0,
        "spec-repeated duplicates are deduplicated before dispatch: {stats:?}"
    );
    // Re-sweeping adds zero misses: every distinct point hits.
    explorer
        .sweep_grid(&base, hls_workloads::sources::SQRT, &spec)
        .unwrap();
    let rerun = explorer.cache_stats();
    assert_eq!(
        rerun.misses, 3,
        "warm rerun must not resynthesize: {rerun:?}"
    );
    assert_eq!(rerun.hits, 3);
    assert!((rerun.hit_rate() - 0.5).abs() < 1e-9);
}

/// Distinct behaviors and distinct configurations never collide in the
/// cache: sweeping a second workload after the first keeps results
/// correct (no cross-workload reuse).
#[test]
fn cache_is_content_addressed_across_workloads() {
    let base = Synthesizer::new();
    let explorer = Explorer::with_threads(2);
    let sqrt = explorer
        .sweep_fus(&base, hls_workloads::sources::SQRT, 3)
        .unwrap();
    let diffeq = explorer
        .sweep_fus(&base, hls_workloads::sources::DIFFEQ, 3)
        .unwrap();
    assert_eq!(
        sqrt,
        sweep_fus(&base, hls_workloads::sources::SQRT, 3).unwrap()
    );
    assert_eq!(
        diffeq,
        sweep_fus(&base, hls_workloads::sources::DIFFEQ, 3).unwrap()
    );
    assert_ne!(sqrt, diffeq);
    assert_eq!(
        explorer.cache_stats().misses,
        6,
        "6 distinct (behavior, config) points"
    );
}

/// (d) `pareto_front` output is minimal and dominance-sound on the full
/// grid: no front point dominates another, every non-front point is
/// dominated by (or duplicates) a front point.
#[test]
fn pareto_front_minimal_and_sound_on_grid() {
    let base = Synthesizer::new();
    let points = Explorer::with_threads(4)
        .sweep_grid(&base, hls_workloads::sources::DIFFEQ, &grid())
        .unwrap();
    let front = pareto_front(&points);
    assert!(!front.is_empty());
    // Soundness: the front is mutually non-dominated.
    for (i, a) in front.iter().enumerate() {
        for (j, b) in front.iter().enumerate() {
            if i != j {
                assert!(!a.dominates(b), "{a:?} dominates front member {b:?}");
            }
        }
    }
    // Minimality: everything off the front is dominated by or equal (in
    // both objectives) to some front member.
    for p in &points {
        let on_front = front
            .iter()
            .any(|f| f.latency == p.latency && f.area == p.area);
        if !on_front {
            assert!(
                front.iter().any(|f| f.dominates(p)),
                "non-front point {p:?} is not dominated by any front member"
            );
        }
    }
}

/// Synthesis failures propagate deterministically: the first failing grid
/// point in grid order, independent of interleaving.
#[test]
fn first_error_in_grid_order_propagates() {
    let base = Synthesizer::new();
    let explorer = Explorer::with_threads(4);
    let err = explorer
        .sweep_grid(&base, "program ; begin end", &grid())
        .unwrap_err();
    assert!(err.to_string().contains("identifier"), "{err}");
}
