//! Design-space exploration.
//!
//! "A good synthesis system can produce several designs for the same
//! specification in a reasonable amount of time. This allows the developer
//! to explore different trade-offs between cost, speed, power and so on"
//! (§1.2). This module sweeps resource limits, scheduling algorithms, and
//! control styles over a behavior — serially via [`sweep_fus`]/[`sweep_grid`]
//! or across every core via [`Explorer`] — and extracts the area–latency
//! Pareto front.
//!
//! The parallel engine is the system's first genuinely concurrent hot
//! path: grid points fan out over a work-stealing pool ([`crate::par`]),
//! and a content-addressed memo cache (fingerprint of the lowered CDFG +
//! the fully configured synthesizer → result summary) collapses repeated
//! points so each distinct configuration is synthesized once. Result
//! order is fixed by the grid, never by thread interleaving, so parallel
//! sweeps are byte-identical to serial ones.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use hls_cdfg::Cdfg;
use hls_sched::Algorithm;

use crate::estimate::{prune_mask, Estimator, PruneStats};
use crate::par::{default_threads, ThreadPool};
use crate::pipeline::{
    cdfg_fingerprint, ControlStyle, PreparedBehavior, SynthesisResult, Synthesizer,
};
use crate::SynthesisError;

/// One explored design point.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignPoint {
    /// Functional units used.
    pub fus: usize,
    /// Scheduling algorithm that produced the point.
    pub algorithm: Algorithm,
    /// Controller style of the point.
    pub control: ControlStyle,
    /// Latency in control steps.
    pub latency: u64,
    /// Estimated area in gate equivalents.
    pub area: f64,
    /// Registers used.
    pub registers: usize,
    /// Multiplexer inputs.
    pub mux_inputs: usize,
}

impl DesignPoint {
    fn new(cfg: &GridPoint, s: PointSummary) -> Self {
        DesignPoint {
            fus: cfg.fus,
            algorithm: cfg.algorithm,
            control: cfg.control,
            latency: s.latency,
            area: s.area,
            registers: s.registers,
            mux_inputs: s.mux_inputs,
        }
    }

    /// `true` when `self` dominates `other` (no worse on both axes,
    /// strictly better on one).
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        (self.latency <= other.latency && self.area <= other.area)
            && (self.latency < other.latency || self.area < other.area)
    }
}

/// The numeric summary a sweep keeps per point (and what the memo cache
/// stores — the full [`SynthesisResult`] would pin every netlist of a
/// grid in memory).
#[derive(Clone, Copy, Debug, PartialEq)]
struct PointSummary {
    latency: u64,
    area: f64,
    registers: usize,
    mux_inputs: usize,
}

impl PointSummary {
    fn of(r: &SynthesisResult) -> Self {
        PointSummary {
            latency: r.latency,
            area: r.area.total(),
            registers: r.datapath.reg_count(),
            mux_inputs: r.datapath.mux_inputs,
        }
    }
}

/// One grid coordinate: the overrides applied to the base synthesizer.
///
/// Public so callers that need *explicit* point lists — the batch
/// endpoint of `hls-serve` routes individual grid points to shard
/// workers — can name coordinates outside a cartesian [`GridSpec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridPoint {
    /// Universal-FU count override.
    pub fus: usize,
    /// Scheduling algorithm override.
    pub algorithm: Algorithm,
    /// Control style override.
    pub control: ControlStyle,
}

/// A multi-dimensional sweep specification: the cartesian product
/// FU count × scheduling algorithm × control style, explored in exactly
/// that nesting order (`fus` outermost, `controls` innermost).
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Universal-FU counts to explore.
    pub fus: Vec<usize>,
    /// Scheduling algorithms to explore.
    pub algorithms: Vec<Algorithm>,
    /// Control styles to explore.
    pub controls: Vec<ControlStyle>,
}

impl GridSpec {
    /// A pure FU sweep (`1..=max_fus`) under `base`'s configured
    /// algorithm and control style.
    pub fn fu_sweep(base: &Synthesizer, max_fus: usize) -> Self {
        GridSpec {
            fus: (1..=max_fus).collect(),
            algorithms: vec![base.configured_algorithm()],
            controls: vec![base.configured_control()],
        }
    }

    /// Number of grid points (duplicates included).
    pub fn len(&self) -> usize {
        self.fus.len() * self.algorithms.len() * self.controls.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian grid into explicit coordinates, in grid
    /// order (`fus` outermost, `controls` innermost).
    pub fn expand(&self) -> Vec<GridPoint> {
        let mut out = Vec::with_capacity(self.len());
        for &fus in &self.fus {
            for &algorithm in &self.algorithms {
                for &control in &self.controls {
                    out.push(GridPoint {
                        fus,
                        algorithm,
                        control,
                    });
                }
            }
        }
        out
    }

    /// Expands the grid and collapses duplicate coordinates (an axis may
    /// repeat a value), keeping first-occurrence order. Parallel sweeps
    /// dispatch exactly these points; positions of
    /// [`GridSpec::expand`]-order duplicates are filled by copying their
    /// representative's result, so a spec-repeated point is synthesized
    /// (and memo-cached) once, not once per repetition.
    pub fn expand_unique(&self) -> Vec<GridPoint> {
        dedup_points(&self.expand()).0
    }

    fn points(&self) -> Vec<GridPoint> {
        self.expand()
    }
}

/// Collapses duplicate coordinates: the unique points in first-occurrence
/// order, plus one representative index per original position.
fn dedup_points(points: &[GridPoint]) -> (Vec<GridPoint>, Vec<usize>) {
    let mut uniq: Vec<GridPoint> = Vec::new();
    let mut index: HashMap<GridPoint, usize> = HashMap::new();
    let mut slot = Vec::with_capacity(points.len());
    for p in points {
        let next = uniq.len();
        let s = *index.entry(*p).or_insert_with(|| {
            uniq.push(*p);
            next
        });
        slot.push(s);
    }
    (uniq, slot)
}

/// The outcome of a pruned grid sweep
/// ([`Explorer::sweep_grid_cdfg_pruned`]).
#[derive(Clone, Debug)]
pub struct PrunedSweep {
    /// The synthesized (surviving) design points, in grid order.
    pub points: Vec<DesignPoint>,
    /// One flag per expanded-grid position: `true` when the point was
    /// skipped by the dominance pre-pass. `points` holds exactly the
    /// `false` positions, in order.
    pub pruned: Vec<bool>,
    /// Estimator and pruning counters.
    pub stats: PruneStats,
}

/// One record of a pruned streaming sweep
/// ([`Explorer::sweep_points_cdfg_streaming_pruned`]).
#[derive(Clone, Debug)]
pub enum StreamedPoint {
    /// Skipped by the estimator's dominance pre-pass — provably absent
    /// from the exhaustive Pareto front, never synthesized.
    Pruned,
    /// Fully synthesized (or answered from the memo cache).
    Synthesized {
        /// The synthesized design point.
        point: DesignPoint,
        /// `true` when the point was served from the memo cache.
        cache_hit: bool,
    },
}

/// Cache hit/miss counters of an [`Explorer`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Grid points answered from the memo cache (including waits on a
    /// point another worker was already synthesizing).
    pub hits: u64,
    /// Grid points that ran full synthesis.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Content-addressed memo cache with in-flight deduplication: the first
/// worker to claim a key synthesizes it; concurrent lookups of the same
/// key park on a condvar and reuse the summary instead of repeating the
/// work.
struct MemoCache {
    map: Mutex<HashMap<u64, Arc<CacheCell>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct CacheCell {
    state: Mutex<CellState>,
    ready: Condvar,
}

enum CellState {
    Pending,
    Done(PointSummary),
    Failed(String),
}

impl MemoCache {
    fn new() -> Self {
        MemoCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
        }
    }

    /// Returns the summary plus `true` when it was served from the cache
    /// (including waits on a point another worker was synthesizing) or
    /// `false` when this call ran the computation itself.
    fn get_or_compute(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<PointSummary, SynthesisError>,
    ) -> Result<(PointSummary, bool), SynthesisError> {
        let (cell, owner) = {
            let mut map = self.map.lock().expect("cache lock");
            match map.entry(key) {
                Entry::Occupied(e) => (Arc::clone(e.get()), false),
                Entry::Vacant(v) => {
                    let cell = Arc::new(CacheCell {
                        state: Mutex::new(CellState::Pending),
                        ready: Condvar::new(),
                    });
                    v.insert(Arc::clone(&cell));
                    (cell, true)
                }
            }
        };
        if owner {
            self.misses.fetch_add(1, Ordering::SeqCst);
            let result = compute();
            let mut state = cell.state.lock().expect("cell lock");
            match &result {
                Ok(s) => *state = CellState::Done(*s),
                Err(e) => *state = CellState::Failed(e.to_string()),
            }
            cell.ready.notify_all();
            result.map(|s| (s, false))
        } else {
            self.hits.fetch_add(1, Ordering::SeqCst);
            let mut state = cell.state.lock().expect("cell lock");
            while matches!(*state, CellState::Pending) {
                state = cell.ready.wait(state).expect("cell wait");
            }
            match &*state {
                CellState::Done(s) => Ok((*s, true)),
                CellState::Failed(msg) => Err(SynthesisError::Explore(msg.clone())),
                CellState::Pending => unreachable!("loop exits only on a final state"),
            }
        }
    }
}

/// Applies a grid coordinate to the base synthesizer.
pub(crate) fn configure(base: &Synthesizer, cfg: &GridPoint) -> Synthesizer {
    base.clone()
        .universal_fus(cfg.fus)
        .algorithm(cfg.algorithm)
        .control(cfg.control)
}

/// Synthesizes one point from a prepared behavior and summarizes it.
///
/// The grid only perturbs FU count, algorithm, and control style — none
/// of which affect the transformation passes or the dependence/bound
/// analysis — so every point of a sweep shares one [`PreparedBehavior`]
/// instead of re-optimizing and re-analyzing the behavior per point.
fn run_point(
    syn: &Synthesizer,
    prepared: &PreparedBehavior,
) -> Result<PointSummary, SynthesisError> {
    syn.synthesize_prepared(prepared)
        .map(|r| PointSummary::of(&r))
}

/// Sweeps universal-FU counts `1..=max_fus` over `source`, returning all
/// design points in sweep order. Serial reference path; see
/// [`Explorer::sweep_fus`] for the parallel, cached equivalent.
///
/// # Errors
///
/// Propagates the first synthesis failure (in grid order).
pub fn sweep_fus(
    base: &Synthesizer,
    source: &str,
    max_fus: usize,
) -> Result<Vec<DesignPoint>, SynthesisError> {
    sweep_grid(base, source, &GridSpec::fu_sweep(base, max_fus))
}

/// Serially sweeps the full cartesian grid over BSL `source`, returning
/// points in grid order.
///
/// # Errors
///
/// Propagates parse errors and the first synthesis failure (in grid
/// order).
pub fn sweep_grid(
    base: &Synthesizer,
    source: &str,
    spec: &GridSpec,
) -> Result<Vec<DesignPoint>, SynthesisError> {
    let cdfg = hls_lang::compile(source)?;
    sweep_grid_cdfg(base, &cdfg, spec)
}

/// Serially sweeps the grid over an already-compiled behavior.
///
/// # Errors
///
/// Propagates the first synthesis failure (in grid order).
pub fn sweep_grid_cdfg(
    base: &Synthesizer,
    cdfg: &Cdfg,
    spec: &GridSpec,
) -> Result<Vec<DesignPoint>, SynthesisError> {
    let prepared = base.prepare(cdfg.clone())?;
    spec.points()
        .iter()
        .map(|cfg| run_point(&configure(base, cfg), &prepared).map(|s| DesignPoint::new(cfg, s)))
        .collect()
}

/// The parallel, cached exploration engine.
///
/// Owns a work-stealing thread pool and a content-addressed memo cache;
/// both live across sweeps, so re-exploring a behavior (or overlapping
/// grids) is answered from the cache. Sizing: [`Explorer::new`] uses one
/// worker per available core, overridable with the `HLS_EXPLORE_THREADS`
/// environment variable or [`Explorer::with_threads`].
///
/// # Examples
///
/// ```
/// use hls_core::{Explorer, Synthesizer};
///
/// let explorer = Explorer::with_threads(2);
/// let base = Synthesizer::new();
/// let points = explorer.sweep_fus(&base, hls_workloads::sources::SQRT, 3)?;
/// assert_eq!(points.len(), 3);
/// // Identical to the serial reference sweep, in the same order.
/// assert_eq!(points, hls_core::sweep_fus(&base, hls_workloads::sources::SQRT, 3)?);
/// # Ok::<(), hls_core::SynthesisError>(())
/// ```
#[derive(Debug)]
pub struct Explorer {
    pool: ThreadPool,
    cache: Arc<MemoCache>,
}

impl std::fmt::Debug for MemoCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Explorer {
    /// An explorer with [`default_threads`] workers.
    pub fn new() -> Self {
        Self::with_threads(default_threads())
    }

    /// An explorer with exactly `threads` workers (min 1).
    pub fn with_threads(threads: usize) -> Self {
        Explorer {
            pool: ThreadPool::new(threads),
            cache: Arc::new(MemoCache::new()),
        }
    }

    /// Number of pool workers.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Cumulative cache counters across every sweep this explorer ran.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Parallel, cached FU sweep; same results and order as [`sweep_fus`].
    ///
    /// # Errors
    ///
    /// Propagates parse errors and the first synthesis failure (in grid
    /// order).
    pub fn sweep_fus(
        &self,
        base: &Synthesizer,
        source: &str,
        max_fus: usize,
    ) -> Result<Vec<DesignPoint>, SynthesisError> {
        self.sweep_grid(base, source, &GridSpec::fu_sweep(base, max_fus))
    }

    /// Parallel, cached grid sweep over BSL `source`; same results and
    /// order as [`sweep_grid`].
    ///
    /// # Errors
    ///
    /// Propagates parse errors and the first synthesis failure (in grid
    /// order).
    pub fn sweep_grid(
        &self,
        base: &Synthesizer,
        source: &str,
        spec: &GridSpec,
    ) -> Result<Vec<DesignPoint>, SynthesisError> {
        let cdfg = hls_lang::compile(source)?;
        self.sweep_grid_cdfg(base, &cdfg, spec)
    }

    /// Parallel, cached grid sweep over an already-compiled behavior;
    /// same results and order as [`sweep_grid_cdfg`].
    ///
    /// # Errors
    ///
    /// Propagates the first synthesis failure (in grid order).
    pub fn sweep_grid_cdfg(
        &self,
        base: &Synthesizer,
        cdfg: &Cdfg,
        spec: &GridSpec,
    ) -> Result<Vec<DesignPoint>, SynthesisError> {
        self.sweep_grid_cdfg_cancellable(base, cdfg, spec, &crate::CancelToken::new())
    }

    /// Parallel, cached grid sweep under a cancellation token, checked
    /// before each grid point. A point that has started synthesizing
    /// runs to completion (so the memo cache is never poisoned with a
    /// cancellation); once the token fires, every unstarted point
    /// reports [`SynthesisError::Cancelled`] instead of synthesizing.
    ///
    /// # Errors
    ///
    /// Propagates the first synthesis failure or cancellation (in grid
    /// order).
    ///
    /// [`SynthesisError::Cancelled`]: crate::SynthesisError::Cancelled
    pub fn sweep_grid_cdfg_cancellable(
        &self,
        base: &Synthesizer,
        cdfg: &Cdfg,
        spec: &GridSpec,
        cancel: &crate::CancelToken,
    ) -> Result<Vec<DesignPoint>, SynthesisError> {
        let behavior_fp = cdfg_fingerprint(cdfg);
        let base = Arc::new(base.clone());
        // Passes and bound analyses run once per sweep; every grid point
        // (and worker) shares the prepared behavior.
        let prepared = Arc::new(base.prepare(cdfg.clone())?);
        let cache = Arc::clone(&self.cache);
        let cancel = cancel.clone();
        // A spec axis may repeat a value; dispatch each distinct
        // coordinate once and fan its result back out to every
        // duplicate position, so repeats never even consult the cache.
        let (uniq, slot) = dedup_points(&spec.points());
        let results = self.pool.map(uniq, move |_, cfg| {
            if cancel.is_cancelled() {
                return Err(SynthesisError::Cancelled {
                    completed: "explore-point",
                });
            }
            let syn = configure(&base, &cfg);
            let key = memo_key(behavior_fp, syn.fingerprint());
            cache
                .get_or_compute(key, || run_point(&syn, &prepared))
                .map(|(s, _)| DesignPoint::new(&cfg, s))
        });
        // First error in grid order, independent of completion order.
        let mut results: Vec<Option<Result<DesignPoint, SynthesisError>>> =
            results.into_iter().map(Some).collect();
        let mut out = Vec::with_capacity(slot.len());
        for &s in &slot {
            match results[s].take() {
                Some(Ok(p)) => {
                    results[s] = Some(Ok(p.clone()));
                    out.push(p);
                }
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(SynthesisError::Explore(
                        "duplicate grid slot resolved twice".into(),
                    ))
                }
            }
        }
        Ok(out)
    }

    /// [`Explorer::sweep_grid_cdfg`] behind the QoR-estimator pruning
    /// pre-pass; see [`Explorer::sweep_grid_cdfg_pruned_cancellable`].
    ///
    /// # Errors
    ///
    /// Propagates the first synthesis failure among *synthesized* points
    /// (in grid order).
    pub fn sweep_grid_cdfg_pruned(
        &self,
        base: &Synthesizer,
        cdfg: &Cdfg,
        spec: &GridSpec,
    ) -> Result<PrunedSweep, SynthesisError> {
        self.sweep_grid_cdfg_pruned_cancellable(base, cdfg, spec, &crate::CancelToken::new())
    }

    /// Grid sweep with estimator-driven dominance pruning: every grid
    /// point is first *estimated* (sound latency/area intervals from the
    /// prepared bound analyses — no scheduling), and a point provably
    /// absent from the exhaustive Pareto front
    /// ([`crate::estimate::prune_mask`]) is skipped instead of
    /// synthesized. The surviving points' [`pareto_front`] is
    /// byte-identical to the exhaustive sweep's.
    ///
    /// Caveat on *errors*: pruning decisions ignore control style (it
    /// never affects latency or area), but hardwired controller
    /// generation can fail where microcode cannot — a pruned point that
    /// would have errored in the exhaustive sweep errors here only if a
    /// surviving point shares the failure.
    ///
    /// # Errors
    ///
    /// Propagates the first synthesis failure among *synthesized* points
    /// (in grid order).
    pub fn sweep_grid_cdfg_pruned_cancellable(
        &self,
        base: &Synthesizer,
        cdfg: &Cdfg,
        spec: &GridSpec,
        cancel: &crate::CancelToken,
    ) -> Result<PrunedSweep, SynthesisError> {
        let behavior_fp = cdfg_fingerprint(cdfg);
        let prepared = Arc::new(base.prepare(cdfg.clone())?);
        let all = spec.points();
        let estimates = Estimator::new(base, &prepared).estimate_points(&all);
        let mask = prune_mask(&estimates);
        let survivors: Vec<(usize, GridPoint)> = all
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| !mask[*i])
            .collect();

        let base = Arc::new(base.clone());
        let cache = Arc::clone(&self.cache);
        let cancel = cancel.clone();
        let results = {
            let prepared = Arc::clone(&prepared);
            self.pool.map(survivors.clone(), move |_, (_, cfg)| {
                if cancel.is_cancelled() {
                    return Err(SynthesisError::Cancelled {
                        completed: "explore-point",
                    });
                }
                let syn = configure(&base, &cfg);
                let key = memo_key(behavior_fp, syn.fingerprint());
                cache
                    .get_or_compute(key, || run_point(&syn, &prepared))
                    .map(|(s, _)| DesignPoint::new(&cfg, s))
            })
        };
        let points: Vec<DesignPoint> = results.into_iter().collect::<Result<_, _>>()?;

        // Self-check: did every bounded estimate contain its actual?
        let mut checked = 0usize;
        let mut inside = 0usize;
        for ((i, _), p) in survivors.iter().zip(&points) {
            let e = &estimates[*i];
            if e.bounded {
                checked += 1;
                if e.contains(p.latency, p.area) {
                    inside += 1;
                }
            }
        }
        let stats = PruneStats {
            estimated: all.len(),
            pruned: mask.iter().filter(|&&m| m).count(),
            synthesized: survivors.len(),
            agreement: if checked == 0 {
                1.0
            } else {
                inside as f64 / checked as f64
            },
        };
        Ok(PrunedSweep {
            points,
            pruned: mask,
            stats,
        })
    }

    /// Parallel, cached sweep over an *explicit* point list, invoking
    /// `on_point` from worker threads as each point completes (in
    /// completion order, not list order). This is the progress hook the
    /// batch-streaming endpoint of `hls-serve` is built on: each
    /// callback carries the point's index into `points`, and on success
    /// the [`DesignPoint`] plus whether it was served from the memo
    /// cache (`true`) or freshly synthesized (`false`).
    ///
    /// Cancellation follows [`Explorer::sweep_grid_cdfg_cancellable`]:
    /// started points run to completion, unstarted points report
    /// [`SynthesisError::Cancelled`] through the callback.
    ///
    /// # Errors
    ///
    /// Returns an error only when the behavior fails to *prepare*
    /// (before any point runs); per-point failures are delivered through
    /// `on_point` instead so one bad point cannot hide the others.
    ///
    /// [`SynthesisError::Cancelled`]: crate::SynthesisError::Cancelled
    pub fn sweep_points_cdfg_streaming<F>(
        &self,
        base: &Synthesizer,
        cdfg: &Cdfg,
        points: Vec<GridPoint>,
        cancel: &crate::CancelToken,
        on_point: F,
    ) -> Result<(), SynthesisError>
    where
        F: Fn(usize, Result<(DesignPoint, bool), SynthesisError>) + Send + Sync + 'static,
    {
        let behavior_fp = cdfg_fingerprint(cdfg);
        let base = Arc::new(base.clone());
        let prepared = Arc::new(base.prepare(cdfg.clone())?);
        let cache = Arc::clone(&self.cache);
        let cancel = cancel.clone();
        // map() blocks until every point has called back *and* every
        // worker has released its clone of the closure, so the caller
        // can finalize its stream (and reclaim anything `on_point`
        // captured) right after this returns.
        let _ = self.pool.map(points, move |seq, cfg| {
            if cancel.is_cancelled() {
                on_point(
                    seq,
                    Err(SynthesisError::Cancelled {
                        completed: "explore-point",
                    }),
                );
                return;
            }
            let syn = configure(&base, &cfg);
            let key = memo_key(behavior_fp, syn.fingerprint());
            let out = cache
                .get_or_compute(key, || run_point(&syn, &prepared))
                .map(|(s, hit)| (DesignPoint::new(&cfg, s), hit));
            on_point(seq, out);
        });
        Ok(())
    }

    /// [`Explorer::sweep_points_cdfg_streaming`] behind the
    /// QoR-estimator pruning pre-pass. Pruned positions call back
    /// immediately (from the caller's thread, in list order) with
    /// [`StreamedPoint::Pruned`]; surviving positions synthesize on the
    /// pool and call back in completion order with
    /// [`StreamedPoint::Synthesized`]. Every index of `points` calls
    /// back exactly once.
    ///
    /// # Errors
    ///
    /// Returns an error only when the behavior fails to *prepare*;
    /// per-point failures are delivered through `on_point`.
    pub fn sweep_points_cdfg_streaming_pruned<F>(
        &self,
        base: &Synthesizer,
        cdfg: &Cdfg,
        points: Vec<GridPoint>,
        cancel: &crate::CancelToken,
        on_point: F,
    ) -> Result<PruneStats, SynthesisError>
    where
        F: Fn(usize, Result<StreamedPoint, SynthesisError>) + Send + Sync + 'static,
    {
        let behavior_fp = cdfg_fingerprint(cdfg);
        let prepared = Arc::new(base.prepare(cdfg.clone())?);
        let estimates = Estimator::new(base, &prepared).estimate_points(&points);
        let mask = prune_mask(&estimates);
        let mut survivors = Vec::new();
        for (i, (p, pruned)) in points.iter().zip(&mask).enumerate() {
            if *pruned {
                on_point(i, Ok(StreamedPoint::Pruned));
            } else {
                survivors.push((i, *p));
            }
        }
        let synthesized = survivors.len();

        let base = Arc::new(base.clone());
        let cache = Arc::clone(&self.cache);
        let cancel = cancel.clone();
        // Actual (latency, area) per surviving list index, for the
        // agreement self-check once the pool drains.
        let actuals: Arc<Mutex<Vec<(usize, u64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let prepared = Arc::clone(&prepared);
            let sink = Arc::clone(&actuals);
            let _ = self.pool.map(survivors, move |_, (seq, cfg)| {
                if cancel.is_cancelled() {
                    on_point(
                        seq,
                        Err(SynthesisError::Cancelled {
                            completed: "explore-point",
                        }),
                    );
                    return;
                }
                let syn = configure(&base, &cfg);
                let key = memo_key(behavior_fp, syn.fingerprint());
                match cache.get_or_compute(key, || run_point(&syn, &prepared)) {
                    Ok((s, hit)) => {
                        let point = DesignPoint::new(&cfg, s);
                        sink.lock()
                            .expect("actuals lock")
                            .push((seq, point.latency, point.area));
                        on_point(
                            seq,
                            Ok(StreamedPoint::Synthesized {
                                point,
                                cache_hit: hit,
                            }),
                        );
                    }
                    Err(e) => on_point(seq, Err(e)),
                }
            });
        }

        let actuals = actuals.lock().expect("actuals lock");
        let mut checked = 0usize;
        let mut inside = 0usize;
        for &(i, latency, area) in actuals.iter() {
            if estimates[i].bounded {
                checked += 1;
                if estimates[i].contains(latency, area) {
                    inside += 1;
                }
            }
        }
        Ok(PruneStats {
            estimated: points.len(),
            pruned: mask.iter().filter(|&&m| m).count(),
            synthesized,
            agreement: if checked == 0 {
                1.0
            } else {
                inside as f64 / checked as f64
            },
        })
    }
}

impl Default for Explorer {
    fn default() -> Self {
        Self::new()
    }
}

/// Combines the behavior and configuration fingerprints into one cache
/// key (FNV-1a over both digests).
fn memo_key(behavior_fp: u64, config_fp: u64) -> u64 {
    let mut w = hls_testkit::FnvWriter::new();
    w.update(&behavior_fp.to_le_bytes());
    w.update(&config_fp.to_le_bytes());
    w.finish()
}

/// Filters `points` down to the area–latency Pareto front, sorted by
/// latency.
///
/// Single sort + sweep (`O(n log n)`): after sorting by (latency, area),
/// a point is on the front iff its area is strictly below every area
/// seen so far. Duplicate (latency, area) pairs collapse to one point.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut sorted: Vec<&DesignPoint> = points.iter().collect();
    // total_cmp keeps the sort a strict weak ordering even if an area
    // comes back NaN (partial_cmp would collapse NaN pairs to Equal,
    // which is not transitive and can panic sort_by in debug builds);
    // NaN orders after +inf, so such points also lose the `<` sweep
    // below and never pollute the front.
    sorted.sort_by(|a, b| a.latency.cmp(&b.latency).then(a.area.total_cmp(&b.area)));
    let mut front = Vec::new();
    let mut best_area = f64::INFINITY;
    for p in sorted {
        if p.area < best_area {
            best_area = p.area;
            front.push(p.clone());
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_sched::Priority;

    fn point(latency: u64, area: f64) -> DesignPoint {
        DesignPoint {
            fus: 1,
            algorithm: Algorithm::List(Priority::PathLength),
            control: ControlStyle::Hardwired(hls_ctrl::EncodingStyle::Binary),
            latency,
            area,
            registers: 3,
            mux_inputs: 2,
        }
    }

    #[test]
    fn sweep_trades_area_for_speed() {
        let points = sweep_fus(&Synthesizer::new(), hls_workloads::sources::SQRT, 4).unwrap();
        assert_eq!(points.len(), 4);
        // Latency never increases with more FUs.
        for w in points.windows(2) {
            assert!(w[1].latency <= w[0].latency, "{points:?}");
        }
        // The single-FU point is the slowest.
        assert!(points[0].latency > points.last().unwrap().latency);
    }

    #[test]
    fn pareto_front_is_non_dominated() {
        let points = sweep_fus(&Synthesizer::new(), hls_workloads::sources::SQRT, 4).unwrap();
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "front contains dominated points");
                }
            }
        }
        // Front is sorted by latency.
        assert!(front.windows(2).all(|w| w[0].latency <= w[1].latency));
    }

    #[test]
    fn pareto_front_minimal_on_fixture() {
        // Hand-built: b dominated by a, d dominated by c, e a duplicate
        // of c, f on the front (slower but smaller than everything).
        let a = point(10, 100.0);
        let b = point(12, 120.0);
        let c = point(8, 130.0);
        let d = point(9, 135.0);
        let e = point(8, 130.0);
        let f = point(14, 90.0);
        let front = pareto_front(&[a.clone(), b, c.clone(), d, e, f.clone()]);
        assert_eq!(front, vec![c, a, f]);
    }

    #[test]
    fn pareto_front_survives_nan_area() {
        // A NaN area must neither panic the sort (total_cmp keeps the
        // comparator a total order) nor land on the front (NaN sorts
        // after +inf and fails the strict `<` sweep).
        let good = point(10, 100.0);
        let bad = point(8, f64::NAN);
        let also_bad = point(12, f64::NAN);
        let front = pareto_front(&[bad.clone(), good.clone(), also_bad, bad]);
        assert_eq!(front, vec![good]);
    }

    #[test]
    fn dominance_semantics() {
        let a = point(10, 100.0);
        let b = point(12, 120.0);
        let c = point(8, 130.0);
        assert!(a.dominates(&b));
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
        assert!(!a.dominates(&a), "no self-domination");
    }

    #[test]
    fn streaming_sweep_matches_grid_sweep_and_reports_hits() {
        use std::sync::Mutex;

        let explorer = Explorer::with_threads(2);
        let base = Synthesizer::new();
        let cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        let spec = GridSpec {
            fus: vec![1, 2],
            algorithms: vec![Algorithm::Asap, Algorithm::List(Priority::PathLength)],
            controls: vec![ControlStyle::Hardwired(hls_ctrl::EncodingStyle::Binary)],
        };
        let reference = explorer
            .sweep_grid_cdfg(&base, &cdfg, &spec)
            .expect("reference sweep");

        let run = |expect_hits: bool| {
            let seen: Arc<Mutex<Vec<(usize, DesignPoint, bool)>>> =
                Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&seen);
            explorer
                .sweep_points_cdfg_streaming(
                    &base,
                    &cdfg,
                    spec.expand(),
                    &crate::CancelToken::new(),
                    move |seq, out| {
                        let (p, hit) = out.expect("point synthesizes");
                        sink.lock().unwrap().push((seq, p, hit));
                    },
                )
                .expect("streaming sweep");
            let mut seen = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
            seen.sort_by_key(|(seq, _, _)| *seq);
            assert_eq!(seen.len(), spec.len(), "every point calls back once");
            for (i, (seq, p, hit)) in seen.iter().enumerate() {
                assert_eq!(*seq, i);
                assert_eq!(p, &reference[i], "streamed point {i} disagrees");
                if expect_hits {
                    assert!(*hit, "point {i} should hit the warm memo cache");
                }
            }
        };
        // First streaming run may mix hits (the reference sweep warmed
        // the cache) — the second must be all hits.
        run(true);
        run(true);
    }

    #[test]
    fn streaming_sweep_cancellation_reaches_callback() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let explorer = Explorer::with_threads(2);
        let base = Synthesizer::new();
        let cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        let cancel = crate::CancelToken::new();
        cancel.cancel();
        let cancelled = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&cancelled);
        explorer
            .sweep_points_cdfg_streaming(
                &base,
                &cdfg,
                GridSpec::fu_sweep(&base, 3).expand(),
                &cancel,
                move |_, out| {
                    if matches!(out, Err(SynthesisError::Cancelled { .. })) {
                        sink.fetch_add(1, Ordering::SeqCst);
                    }
                },
            )
            .expect("prepare still succeeds");
        assert_eq!(cancelled.load(Ordering::SeqCst), 3, "all points cancelled");
    }

    #[test]
    fn expand_unique_collapses_duplicates_in_first_occurrence_order() {
        let spec = GridSpec {
            fus: vec![2, 1, 2, 2],
            algorithms: vec![Algorithm::Asap],
            controls: vec![ControlStyle::Microcode],
        };
        assert_eq!(spec.len(), 4, "expand keeps duplicates");
        assert_eq!(spec.expand().len(), 4);
        let uniq = spec.expand_unique();
        assert_eq!(uniq.len(), 2);
        assert_eq!(uniq[0].fus, 2, "first occurrence wins the slot");
        assert_eq!(uniq[1].fus, 1);
    }

    #[test]
    fn duplicate_grid_points_synthesize_once_and_fan_out() {
        let explorer = Explorer::with_threads(2);
        let base = Synthesizer::new();
        let cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        let spec = GridSpec {
            fus: vec![2, 1, 2],
            algorithms: vec![Algorithm::Asap],
            controls: vec![ControlStyle::Microcode],
        };
        let points = explorer.sweep_grid_cdfg(&base, &cdfg, &spec).unwrap();
        assert_eq!(points.len(), 3, "output shape keeps the duplicate");
        assert_eq!(points[0], points[2]);
        // The duplicate never reached the memo cache: two misses, no hits.
        let stats = explorer.cache_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn pruned_sweep_preserves_the_pareto_front_exactly() {
        let explorer = Explorer::with_threads(2);
        let base = Synthesizer::new();
        let cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        let spec = GridSpec {
            fus: vec![1, 2, 3, 4],
            algorithms: vec![
                Algorithm::Asap,
                Algorithm::List(Priority::PathLength),
                Algorithm::ForceDirected { slack: 1 },
            ],
            controls: vec![
                ControlStyle::Hardwired(hls_ctrl::EncodingStyle::Binary),
                ControlStyle::Microcode,
            ],
        };
        let exhaustive = explorer.sweep_grid_cdfg(&base, &cdfg, &spec).unwrap();
        let pruned = explorer
            .sweep_grid_cdfg_pruned(&base, &cdfg, &spec)
            .unwrap();
        assert_eq!(
            pareto_front(&pruned.points),
            pareto_front(&exhaustive),
            "pruning must not change the front"
        );
        assert_eq!(pruned.stats.estimated, spec.len());
        assert_eq!(
            pruned.stats.pruned + pruned.stats.synthesized,
            pruned.stats.estimated
        );
        assert!(
            pruned.stats.pruned > 0,
            "control-duplicate points alone guarantee pruning here"
        );
        assert_eq!(pruned.stats.agreement, 1.0, "{:?}", pruned.stats);
        assert_eq!(pruned.pruned.len(), spec.len());
        assert_eq!(
            pruned.pruned.iter().filter(|&&m| !m).count(),
            pruned.points.len()
        );
    }

    #[test]
    fn streaming_pruned_sweep_matches_the_batch_variant() {
        use std::sync::Mutex;

        let explorer = Explorer::with_threads(2);
        let base = Synthesizer::new();
        let cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        let spec = GridSpec {
            fus: vec![1, 2, 3],
            algorithms: vec![Algorithm::Asap, Algorithm::List(Priority::PathLength)],
            controls: vec![
                ControlStyle::Hardwired(hls_ctrl::EncodingStyle::Binary),
                ControlStyle::Microcode,
            ],
        };
        let reference = explorer
            .sweep_grid_cdfg_pruned(&base, &cdfg, &spec)
            .unwrap();

        type SeenLog = Vec<(usize, Option<DesignPoint>)>;
        let seen: Arc<Mutex<SeenLog>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let stats = explorer
            .sweep_points_cdfg_streaming_pruned(
                &base,
                &cdfg,
                spec.expand(),
                &crate::CancelToken::new(),
                move |seq, out| {
                    let p = match out.expect("point synthesizes") {
                        StreamedPoint::Pruned => None,
                        StreamedPoint::Synthesized { point, .. } => Some(point),
                    };
                    sink.lock().unwrap().push((seq, p));
                },
            )
            .unwrap();
        let mut seen = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
        seen.sort_by_key(|(seq, _)| *seq);
        assert_eq!(seen.len(), spec.len(), "every position calls back once");
        let streamed: Vec<DesignPoint> = seen.iter().filter_map(|(_, p)| p.clone()).collect();
        assert_eq!(streamed, reference.points);
        for (i, (_, p)) in seen.iter().enumerate() {
            assert_eq!(p.is_none(), reference.pruned[i], "position {i}");
        }
        assert_eq!(stats.estimated, reference.stats.estimated);
        assert_eq!(stats.pruned, reference.stats.pruned);
        assert_eq!(stats.synthesized, reference.stats.synthesized);
        assert_eq!(stats.agreement, 1.0);
    }

    #[test]
    fn grid_spec_order_and_len() {
        let base = Synthesizer::new();
        let spec = GridSpec {
            fus: vec![1, 2],
            algorithms: vec![Algorithm::Asap, Algorithm::List(Priority::Urgency)],
            controls: vec![ControlStyle::Microcode],
        };
        assert_eq!(spec.len(), 4);
        assert!(!spec.is_empty());
        let pts = spec.points();
        assert_eq!(pts[0].fus, 1);
        assert_eq!(pts[0].algorithm, Algorithm::Asap);
        assert_eq!(pts[1].algorithm, Algorithm::List(Priority::Urgency));
        assert_eq!(pts[2].fus, 2);
        let _ = &base;
    }
}
