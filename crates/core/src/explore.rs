//! Design-space exploration.
//!
//! "A good synthesis system can produce several designs for the same
//! specification in a reasonable amount of time. This allows the developer
//! to explore different trade-offs between cost, speed, power and so on"
//! (§1.2). Sweeps resource limits and reports the area–latency Pareto
//! front.

use crate::pipeline::{SynthesisResult, Synthesizer};
use crate::SynthesisError;

/// One explored design point.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// Functional units used.
    pub fus: usize,
    /// Latency in control steps.
    pub latency: u64,
    /// Estimated area in gate equivalents.
    pub area: f64,
    /// Registers used.
    pub registers: usize,
    /// Multiplexer inputs.
    pub mux_inputs: usize,
}

impl DesignPoint {
    fn from_result(fus: usize, r: &SynthesisResult) -> Self {
        DesignPoint {
            fus,
            latency: r.latency,
            area: r.area.total(),
            registers: r.datapath.reg_count(),
            mux_inputs: r.datapath.mux_inputs,
        }
    }

    /// `true` when `self` dominates `other` (no worse on both axes,
    /// strictly better on one).
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        (self.latency <= other.latency && self.area <= other.area)
            && (self.latency < other.latency || self.area < other.area)
    }
}

/// Sweeps universal-FU counts `1..=max_fus` over `source`, returning all
/// design points in sweep order.
///
/// # Errors
///
/// Propagates the first synthesis failure.
pub fn sweep_fus(
    base: &Synthesizer,
    source: &str,
    max_fus: usize,
) -> Result<Vec<DesignPoint>, SynthesisError> {
    let mut out = Vec::new();
    for fus in 1..=max_fus {
        let r = base.clone().universal_fus(fus).synthesize_source(source)?;
        out.push(DesignPoint::from_result(fus, &r));
    }
    Ok(out)
}

/// Filters `points` down to the area–latency Pareto front, sorted by
/// latency.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut front: Vec<DesignPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .cloned()
        .collect();
    front.sort_by_key(|p| (p.latency, p.area as u64));
    front.dedup_by(|a, b| a.latency == b.latency && a.area == b.area);
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_trades_area_for_speed() {
        let points = sweep_fus(&Synthesizer::new(), hls_workloads::sources::SQRT, 4).unwrap();
        assert_eq!(points.len(), 4);
        // Latency never increases with more FUs.
        for w in points.windows(2) {
            assert!(w[1].latency <= w[0].latency, "{points:?}");
        }
        // The single-FU point is the slowest.
        assert!(points[0].latency > points.last().unwrap().latency);
    }

    #[test]
    fn pareto_front_is_non_dominated() {
        let points = sweep_fus(&Synthesizer::new(), hls_workloads::sources::SQRT, 4).unwrap();
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "front contains dominated points");
                }
            }
        }
        // Front is sorted by latency.
        assert!(front.windows(2).all(|w| w[0].latency <= w[1].latency));
    }

    #[test]
    fn dominance_semantics() {
        let a = DesignPoint { fus: 1, latency: 10, area: 100.0, registers: 3, mux_inputs: 2 };
        let b = DesignPoint { fus: 2, latency: 12, area: 120.0, registers: 3, mux_inputs: 2 };
        let c = DesignPoint { fus: 2, latency: 8, area: 130.0, registers: 3, mux_inputs: 2 };
        assert!(a.dominates(&b));
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
        assert!(!a.dominates(&a), "no self-domination");
    }
}
