//! Human-readable design reports.

use std::fmt::Write as _;

use crate::pipeline::{ControlReport, SynthesisResult};

impl SynthesisResult {
    /// Renders a compact design report: latency, resources, storage,
    /// interconnect, control, and area.
    pub fn report(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "design `{}`", self.cdfg.name());
        let _ = writeln!(s, "  latency     : {} control steps", self.latency);
        let _ = writeln!(s, "  func. units : {}", self.datapath.fu_count());
        for fu in &self.datapath.fus {
            let _ = writeln!(s, "    {:<8} ({})", fu.name, fu.cell);
        }
        let vars = self
            .datapath
            .regs
            .iter()
            .filter(|r| matches!(r.kind, hls_alloc::RegKind::Var(_)))
            .count();
        let _ = writeln!(
            s,
            "  registers   : {} ({} variable + {} temp)",
            self.datapath.reg_count(),
            vars,
            self.datapath.reg_count() - vars
        );
        let _ = writeln!(s, "  mux inputs  : {}", self.datapath.mux_inputs);
        match &self.control_report {
            ControlReport::Hardwired(h) => {
                let _ = writeln!(
                    s,
                    "  control     : hardwired {} ({} states, {} FFs, {} terms, {} literals)",
                    h.style.name(),
                    self.fsm.len(),
                    h.state_bits,
                    h.terms,
                    h.literals
                );
            }
            ControlReport::Microcode {
                words,
                horizontal_bits,
                encoded_bits,
            } => {
                let _ = writeln!(
                    s,
                    "  control     : microcode ({words} words, {horizontal_bits}b horizontal / {encoded_bits}b encoded)",
                );
            }
        }
        let _ = writeln!(
            s,
            "  area        : {:.0} GE, clock ≥ {:.1} ns",
            self.area.total(),
            self.area.clock_ns
        );
        s
    }

    /// Renders every block's schedule as step tables.
    pub fn schedule_table(&self) -> String {
        let mut s = String::new();
        for block in self.cdfg.block_order() {
            let b = self.cdfg.block(block);
            if let Some(sched) = self.schedule.block(block) {
                if sched.num_steps() == 0 {
                    continue;
                }
                let _ = writeln!(s, "block `{}` ({} steps):", b.name, sched.num_steps());
                s.push_str(&sched.render(&b.dfg));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::Synthesizer;

    #[test]
    fn report_mentions_the_essentials() {
        let r = Synthesizer::new()
            .synthesize_source(hls_workloads::sources::SQRT)
            .unwrap();
        let text = r.report();
        assert!(text.contains("design `sqrt`"));
        assert!(text.contains("latency     : 10"));
        assert!(text.contains("registers"));
        assert!(text.contains("hardwired"));
    }

    #[test]
    fn schedule_table_lists_steps() {
        let r = Synthesizer::new()
            .synthesize_source(hls_workloads::sources::SQRT)
            .unwrap();
        let t = r.schedule_table();
        assert!(t.contains("step  1:"));
        assert!(t.contains("blk"));
    }
}
