//! The end-to-end synthesis pipeline.
//!
//! Ties together the whole flow of §2: compile → optimize → schedule →
//! allocate → generate control → emit structure.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hls_alloc::{build_datapath, Datapath, FuStrategy};
use hls_cdfg::{Cdfg, Fx};
use hls_ctrl::{build_fsm, hardwired_logic, microcode, EncodingStyle, Fsm, HardwiredReport};
use hls_opt::PassStats;
use hls_rtl::{estimate, AreaReport, Library, Netlist};
use hls_sched::{
    schedule_cdfg_cached, Algorithm, CdfgBoundsCache, CdfgSchedule, OpClassifier, Priority,
    ResourceLimits,
};

use crate::SynthesisError;

/// Controller implementation style.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ControlStyle {
    /// Hardwired FSM with the given state encoding.
    Hardwired(EncodingStyle),
    /// Microprogrammed control.
    Microcode,
}

/// A cooperative cancellation token checked between pipeline stages.
///
/// Clones share the same cancellation flag, so a server can hand a clone
/// to a worker and cancel it from the accept loop. A token may also carry
/// a deadline; [`CancelToken::is_cancelled`] fires once the deadline has
/// passed, which gives per-request timeouts without a watchdog thread.
///
/// Cancellation is *between stages*: a stage that has started runs to
/// completion, and [`SynthesisError::Cancelled`] names the last stage
/// that finished (the partial result the caller can still report).
///
/// [`SynthesisError::Cancelled`]: crate::SynthesisError::Cancelled
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that auto-cancels `timeout` from now (and can still be
    /// cancelled explicitly before that).
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(timeout),
        }
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// `true` once [`CancelToken::cancel`] ran or the deadline passed.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Returns `Err(SynthesisError::Cancelled { completed })` when the
    /// token has fired; `completed` should name the stage that just ran.
    fn check(&self, completed: &'static str) -> Result<(), SynthesisError> {
        if self.is_cancelled() {
            Err(SynthesisError::Cancelled { completed })
        } else {
            Ok(())
        }
    }
}

/// The configurable synthesis front end (builder).
///
/// # Examples
///
/// ```
/// use hls_core::Synthesizer;
///
/// let result = Synthesizer::new()
///     .universal_fus(2)
///     .synthesize_source(hls_workloads::sources::SQRT)?;
/// assert_eq!(result.latency, 10); // the paper's optimized schedule
/// # Ok::<(), hls_core::SynthesisError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Synthesizer {
    optimize: bool,
    unroll: bool,
    if_convert: bool,
    classifier: OpClassifier,
    limits: ResourceLimits,
    algorithm: Algorithm,
    fu_strategy: FuStrategy,
    control: ControlStyle,
    library: Library,
}

impl Synthesizer {
    /// Default flow: standard optimizations, free constant shifts, two
    /// universal FUs, list scheduling (path-length priority), greedy
    /// interconnect-aware binding, hardwired binary-encoded control.
    pub fn new() -> Self {
        Synthesizer {
            optimize: true,
            unroll: false,
            if_convert: false,
            classifier: OpClassifier::universal_free_shifts(),
            limits: ResourceLimits::universal(2),
            algorithm: Algorithm::List(Priority::PathLength),
            fu_strategy: FuStrategy::GreedyAware,
            control: ControlStyle::Hardwired(EncodingStyle::Binary),
            library: Library::standard(),
        }
    }

    /// Disables the high-level transformation passes.
    pub fn without_optimization(mut self) -> Self {
        self.optimize = false;
        self.classifier = OpClassifier::universal();
        self
    }

    /// Fully unrolls counted loops before scheduling.
    pub fn with_unrolling(mut self) -> Self {
        self.unroll = true;
        self
    }

    /// If-converts small conditionals into mux dataflow before scheduling
    /// (trades controller states for datapath muxes).
    pub fn with_if_conversion(mut self) -> Self {
        self.if_convert = true;
        self
    }

    /// Uses `n` universal functional units.
    pub fn universal_fus(mut self, n: usize) -> Self {
        self.limits = ResourceLimits::universal(n);
        self
    }

    /// Uses typed functional units with the given limits.
    pub fn typed_fus(mut self, limits: ResourceLimits) -> Self {
        self.classifier = OpClassifier::typed();
        self.limits = limits;
        self
    }

    /// Overrides the op classifier.
    pub fn classifier(mut self, classifier: OpClassifier) -> Self {
        self.classifier = classifier;
        self
    }

    /// Overrides the scheduling algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Overrides the FU binding strategy.
    pub fn fu_strategy(mut self, strategy: FuStrategy) -> Self {
        self.fu_strategy = strategy;
        self
    }

    /// Overrides the control style.
    pub fn control(mut self, control: ControlStyle) -> Self {
        self.control = control;
        self
    }

    /// Overrides the component library.
    pub fn library(mut self, library: Library) -> Self {
        self.library = library;
        self
    }

    // ---- borrowed setters ------------------------------------------------
    //
    // The consuming `self` builders above read well in a literal chain,
    // but a server assembling a configuration field-by-field from a
    // parsed request holds the synthesizer in a variable — these `&mut`
    // twins avoid the move-reassign dance there.

    /// Enables or disables the high-level transformation passes
    /// (borrowed twin of [`Synthesizer::without_optimization`]).
    pub fn set_optimize(&mut self, optimize: bool) -> &mut Self {
        self.optimize = optimize;
        self.classifier = if optimize {
            OpClassifier::universal_free_shifts()
        } else {
            OpClassifier::universal()
        };
        self
    }

    /// Enables or disables full loop unrolling.
    pub fn set_unrolling(&mut self, unroll: bool) -> &mut Self {
        self.unroll = unroll;
        self
    }

    /// Enables or disables if-conversion.
    pub fn set_if_conversion(&mut self, if_convert: bool) -> &mut Self {
        self.if_convert = if_convert;
        self
    }

    /// Sets `n` universal functional units (borrowed twin of
    /// [`Synthesizer::universal_fus`]).
    pub fn set_universal_fus(&mut self, n: usize) -> &mut Self {
        self.limits = ResourceLimits::universal(n);
        self
    }

    /// Sets the scheduling algorithm (borrowed twin of
    /// [`Synthesizer::algorithm`]).
    pub fn set_algorithm(&mut self, algorithm: Algorithm) -> &mut Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the control style (borrowed twin of [`Synthesizer::control`]).
    pub fn set_control(&mut self, control: ControlStyle) -> &mut Self {
        self.control = control;
        self
    }

    /// The currently configured scheduling algorithm.
    pub fn configured_algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The currently configured resource limits (read by the QoR
    /// estimator, which mirrors the scheduler dispatch without running
    /// a scheduler).
    pub(crate) fn limits_ref(&self) -> &ResourceLimits {
        &self.limits
    }

    /// Replaces the resource limits wholesale. Only the estimator's
    /// canonicalization uses this: the public surface stays at
    /// [`Synthesizer::universal_fus`] / [`Synthesizer::typed_fus`],
    /// which keep the classifier consistent.
    pub(crate) fn set_limits(&mut self, limits: ResourceLimits) {
        self.limits = limits;
    }

    /// The currently configured component library.
    pub(crate) fn library_ref(&self) -> &Library {
        &self.library
    }

    /// The currently configured control style.
    pub fn configured_control(&self) -> ControlStyle {
        self.control
    }

    /// A content fingerprint of the full configuration (64-bit FNV-1a
    /// over the canonical `Debug` rendering). Equal configurations hash
    /// equal across runs and platforms; the exploration memo cache keys
    /// on this together with [`cdfg_fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        debug_fingerprint(self)
    }

    /// Synthesizes BSL source text.
    ///
    /// # Errors
    ///
    /// Propagates parse, scheduling, allocation, and control errors.
    pub fn synthesize_source(&self, src: &str) -> Result<SynthesisResult, SynthesisError> {
        let cdfg = hls_lang::compile(src)?;
        self.synthesize(cdfg)
    }

    /// Synthesizes an already-compiled behavior.
    ///
    /// # Errors
    ///
    /// Propagates scheduling, allocation, and control errors.
    pub fn synthesize(&self, cdfg: Cdfg) -> Result<SynthesisResult, SynthesisError> {
        self.synthesize_cancellable(cdfg, &CancelToken::new())
    }

    /// Synthesizes BSL source text under a cancellation token.
    ///
    /// # Errors
    ///
    /// Propagates parse, scheduling, allocation, and control errors, and
    /// [`SynthesisError::Cancelled`] when `cancel` fires between stages.
    ///
    /// [`SynthesisError::Cancelled`]: crate::SynthesisError::Cancelled
    pub fn synthesize_source_cancellable(
        &self,
        src: &str,
        cancel: &CancelToken,
    ) -> Result<SynthesisResult, SynthesisError> {
        cancel.check("none")?;
        let cdfg = hls_lang::compile(src)?;
        cancel.check("compile")?;
        self.synthesize_cancellable(cdfg, cancel)
    }

    /// Synthesizes an already-compiled behavior, checking `cancel`
    /// between pipeline stages (optimize → schedule → allocate →
    /// control → netlist). A fired token aborts before the next stage
    /// and reports the last stage that completed.
    ///
    /// # Errors
    ///
    /// Propagates scheduling, allocation, and control errors, and
    /// [`SynthesisError::Cancelled`] when `cancel` fires between stages.
    ///
    /// [`SynthesisError::Cancelled`]: crate::SynthesisError::Cancelled
    pub fn synthesize_cancellable(
        &self,
        cdfg: Cdfg,
        cancel: &CancelToken,
    ) -> Result<SynthesisResult, SynthesisError> {
        let prepared = self.prepare(cdfg)?;
        cancel.check("optimize")?;
        self.synthesize_prepared_cancellable(&prepared, cancel)
    }

    /// Runs the front-of-pipeline transformations (if-conversion,
    /// unrolling, optimization) and the per-block dependence/bound
    /// analysis once, producing a [`PreparedBehavior`] that
    /// [`Synthesizer::synthesize_prepared`] can consume repeatedly.
    ///
    /// A design-space sweep prepares a behavior once and then synthesizes
    /// it at many (FU, algorithm, control) grid points: the passes and
    /// the topological/ASAP/ALAP analyses depend only on the behavior and
    /// the classifier, not on the per-point overrides, so they drop out
    /// of the per-point cost.
    ///
    /// # Errors
    ///
    /// Returns a scheduling error if any block's dataflow graph is cyclic.
    pub fn prepare(&self, mut cdfg: Cdfg) -> Result<PreparedBehavior, SynthesisError> {
        let mut pass_stats = Vec::new();
        if self.if_convert {
            hls_opt::run_pass(&mut cdfg, hls_opt::PassKind::IfConvert);
        }
        if self.unroll {
            hls_opt::run_pass(&mut cdfg, hls_opt::PassKind::Unroll);
        }
        if self.optimize {
            pass_stats = hls_opt::optimize(&mut cdfg);
        }
        let bounds = CdfgBoundsCache::build(&cdfg, &self.classifier)?;
        Ok(PreparedBehavior {
            cdfg,
            pass_stats,
            classifier: self.classifier,
            bounds,
        })
    }

    /// Synthesizes a [`PreparedBehavior`] (back half of the pipeline:
    /// schedule → allocate → control → netlist).
    ///
    /// `prepared` must come from a synthesizer with the same pass and
    /// classifier configuration — its recorded classifier is used
    /// throughout, so the two cannot disagree silently.
    ///
    /// # Errors
    ///
    /// Propagates scheduling, allocation, and control errors.
    pub fn synthesize_prepared(
        &self,
        prepared: &PreparedBehavior,
    ) -> Result<SynthesisResult, SynthesisError> {
        self.synthesize_prepared_cancellable(prepared, &CancelToken::new())
    }

    /// [`Synthesizer::synthesize_prepared`] under a cancellation token,
    /// checked between stages.
    ///
    /// # Errors
    ///
    /// Propagates scheduling, allocation, and control errors, and
    /// [`SynthesisError::Cancelled`] when `cancel` fires between stages.
    ///
    /// [`SynthesisError::Cancelled`]: crate::SynthesisError::Cancelled
    pub fn synthesize_prepared_cancellable(
        &self,
        prepared: &PreparedBehavior,
        cancel: &CancelToken,
    ) -> Result<SynthesisResult, SynthesisError> {
        let cdfg = &prepared.cdfg;
        let classifier = &prepared.classifier;
        let mut stage_nanos = StageNanos::default();
        let t0 = Instant::now();
        let schedule = schedule_cdfg_cached(
            cdfg,
            classifier,
            &self.limits,
            self.algorithm,
            &prepared.bounds,
        )?;
        let latency = schedule.total_latency(cdfg);
        stage_nanos.schedule = elapsed_nanos(t0);
        cancel.check("schedule")?;
        let t0 = Instant::now();
        let datapath =
            build_datapath(cdfg, &schedule, classifier, &self.library, self.fu_strategy)?;
        stage_nanos.allocate = elapsed_nanos(t0);
        cancel.check("allocate")?;
        let t0 = Instant::now();
        let fsm = build_fsm(cdfg, &schedule, &datapath, classifier)?;
        let control_report = match self.control {
            ControlStyle::Hardwired(style) => {
                ControlReport::Hardwired(hardwired_logic(&fsm, style)?)
            }
            ControlStyle::Microcode => {
                let mp = microcode(&fsm);
                ControlReport::Microcode {
                    words: mp.rom.len(),
                    horizontal_bits: mp.horizontal_rom_bits(),
                    encoded_bits: mp.encoded_rom_bits(),
                }
            }
        };
        cancel.check("control")?;
        let netlist = datapath.to_netlist(cdfg, &self.library)?;
        let area = estimate(&netlist, &self.library);
        stage_nanos.rtl = elapsed_nanos(t0);
        Ok(SynthesisResult {
            cdfg: cdfg.clone(),
            schedule,
            datapath,
            fsm,
            control_report,
            netlist,
            area,
            latency,
            pass_stats: prepared.pass_stats.clone(),
            classifier: prepared.classifier,
            stage_nanos,
        })
    }
}

fn elapsed_nanos(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// A behavior with the configuration-independent front half of the
/// pipeline already run: transformation passes applied and per-block
/// dependence/bound analyses built. Produced by [`Synthesizer::prepare`],
/// consumed by [`Synthesizer::synthesize_prepared`].
#[derive(Clone, Debug)]
pub struct PreparedBehavior {
    cdfg: Cdfg,
    pass_stats: Vec<PassStats>,
    classifier: OpClassifier,
    bounds: CdfgBoundsCache,
}

impl PreparedBehavior {
    /// The transformed behavior.
    pub fn cdfg(&self) -> &Cdfg {
        &self.cdfg
    }

    /// Statistics of the optimization passes that ran during preparation.
    pub fn pass_stats(&self) -> &[PassStats] {
        &self.pass_stats
    }

    /// The per-block dependence/bound analyses built during preparation.
    pub fn bounds(&self) -> &CdfgBoundsCache {
        &self.bounds
    }

    /// The classifier the preparation ran under.
    pub fn classifier(&self) -> &OpClassifier {
        &self.classifier
    }
}

/// Wall-clock time spent in each back-half pipeline stage, in
/// nanoseconds. `rtl` covers controller synthesis plus netlist emission
/// and area estimation. Timings ride along on [`SynthesisResult`] for
/// observability (e.g. the server's per-stage counters); they are never
/// part of response bodies or fingerprints, which stay deterministic.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageNanos {
    /// Scheduling (including latency accounting).
    pub schedule: u64,
    /// Data-path allocation and binding.
    pub allocate: u64,
    /// Controller synthesis, netlist emission, area estimation.
    pub rtl: u64,
}

impl Default for Synthesizer {
    fn default() -> Self {
        Self::new()
    }
}

/// A cheap content fingerprint of a lowered behavior: 64-bit FNV-1a over
/// its canonical `Debug` rendering (blocks, ops, values, control tree).
/// Structurally identical CDFGs hash equal across runs and platforms;
/// this is the behavior half of the exploration memo-cache key.
pub fn cdfg_fingerprint(cdfg: &Cdfg) -> u64 {
    debug_fingerprint(cdfg)
}

/// Streams `value`'s `Debug` rendering through an FNV-1a hasher without
/// materializing the string.
fn debug_fingerprint(value: &impl std::fmt::Debug) -> u64 {
    use std::fmt::Write as _;
    let mut w = hls_testkit::FnvWriter::new();
    write!(w, "{value:?}").expect("FnvWriter never fails");
    w.finish()
}

/// Controller cost summary.
#[derive(Clone, Debug)]
pub enum ControlReport {
    /// Hardwired FSM logic sizes.
    Hardwired(HardwiredReport),
    /// Microcode ROM sizes.
    Microcode {
        /// Microinstruction count.
        words: usize,
        /// ROM bits with a horizontal word.
        horizontal_bits: u64,
        /// ROM bits with field-encoded word.
        encoded_bits: u64,
    },
}

/// Everything the flow produces.
#[derive(Clone, Debug)]
pub struct SynthesisResult {
    /// The (optimized) behavior.
    pub cdfg: Cdfg,
    /// Per-block schedules.
    pub schedule: CdfgSchedule,
    /// The bound datapath.
    pub datapath: Datapath,
    /// The controller FSM.
    pub fsm: Fsm,
    /// Controller cost summary.
    pub control_report: ControlReport,
    /// The RT-level netlist.
    pub netlist: Netlist,
    /// Area/clock estimate.
    pub area: AreaReport,
    /// Total latency in control steps (loop-aware).
    pub latency: u64,
    /// Optimizer statistics.
    pub pass_stats: Vec<PassStats>,
    /// The classifier the flow used (needed for verification).
    pub classifier: OpClassifier,
    /// Wall-clock time spent per pipeline stage (observability only —
    /// never rendered into response bodies or fingerprints).
    pub stage_nanos: StageNanos,
}

impl SynthesisResult {
    /// Runs the design on one input vector through the RTL model.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run(&self, inputs: &BTreeMap<String, Fx>) -> Result<hls_sim::RtlResult, SynthesisError> {
        Ok(hls_sim::simulate(
            &self.cdfg,
            &self.schedule,
            &self.datapath,
            &self.classifier,
            inputs,
            false,
        )?)
    }

    /// Verifies the structure against the behavioral model on `n` random
    /// vectors in `range`.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; a mismatch is reported in the
    /// returned [`hls_sim::Equivalence`], not as an error.
    pub fn verify(
        &self,
        n: usize,
        range: (f64, f64),
    ) -> Result<hls_sim::Equivalence, SynthesisError> {
        Ok(hls_sim::check_random_vectors(
            &self.cdfg,
            &self.schedule,
            &self.datapath,
            &self.classifier,
            n,
            range,
            0xD5EA_D5EA,
        )?)
    }

    /// Emits the datapath netlist as Verilog.
    pub fn to_verilog(&self) -> String {
        hls_rtl::to_verilog(&self.netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_flow_reproduces_the_10_step_sqrt() {
        let r = Synthesizer::new()
            .synthesize_source(hls_workloads::sources::SQRT)
            .unwrap();
        assert_eq!(r.latency, 10);
        assert_eq!(r.datapath.fu_count(), 2);
        let eq = r.verify(8, (0.1, 1.0)).unwrap();
        assert!(eq.equivalent, "{:?}", eq.mismatch);
    }

    #[test]
    fn unoptimized_single_fu_flow_reproduces_23_steps() {
        let r = Synthesizer::new()
            .without_optimization()
            .universal_fus(1)
            .synthesize_source(hls_workloads::sources::SQRT)
            .unwrap();
        assert_eq!(r.latency, 23);
    }

    #[test]
    fn microcode_control_style() {
        let r = Synthesizer::new()
            .control(ControlStyle::Microcode)
            .synthesize_source(hls_workloads::sources::SQRT)
            .unwrap();
        match r.control_report {
            ControlReport::Microcode {
                words,
                horizontal_bits,
                encoded_bits,
            } => {
                assert_eq!(words, 5);
                assert!(encoded_bits < horizontal_bits);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unrolled_flow_is_no_slower_and_still_correct() {
        let rolled = Synthesizer::new()
            .universal_fus(3)
            .synthesize_source(hls_workloads::sources::SQRT)
            .unwrap();
        let unrolled = Synthesizer::new()
            .universal_fus(3)
            .with_unrolling()
            .synthesize_source(hls_workloads::sources::SQRT)
            .unwrap();
        // Newton's recurrence serializes the Y chain, so unrolling cannot
        // shorten the sqrt latency — but it must not lengthen it, it
        // collapses the control tree to straight-line code, and it must
        // stay functionally correct.
        assert!(unrolled.latency <= rolled.latency);
        assert_eq!(unrolled.fsm.flags.len(), 0, "no loop left, no flags");
        let eq = unrolled.verify(6, (0.1, 1.0)).unwrap();
        assert!(eq.equivalent, "{:?}", eq.mismatch);
    }

    #[test]
    fn if_conversion_shrinks_the_controller_and_stays_correct() {
        let plain = Synthesizer::new()
            .universal_fus(2)
            .synthesize_source(hls_workloads::sources::GCD)
            .unwrap();
        let conv = Synthesizer::new()
            .universal_fus(2)
            .with_if_conversion()
            .synthesize_source(hls_workloads::sources::GCD)
            .unwrap();
        assert!(
            conv.fsm.len() < plain.fsm.len(),
            "{} vs {}",
            conv.fsm.len(),
            plain.fsm.len()
        );
        assert!(conv.fsm.flags.len() < plain.fsm.flags.len());
        let eq = conv.verify(10, (1.0, 64.0)).unwrap();
        assert!(eq.equivalent, "{:?}", eq.mismatch);
    }

    #[test]
    fn area_and_verilog_available() {
        let r = Synthesizer::new()
            .synthesize_source(hls_workloads::sources::SQRT)
            .unwrap();
        assert!(r.area.total() > 0.0);
        assert!(r.to_verilog().contains("module sqrt"));
    }

    #[test]
    fn cancelled_token_stops_between_stages() {
        let tok = CancelToken::new();
        tok.cancel();
        let err = Synthesizer::new()
            .synthesize_source_cancellable(hls_workloads::sources::SQRT, &tok)
            .unwrap_err();
        match err {
            crate::SynthesisError::Cancelled { completed } => assert_eq!(completed, "none"),
            other => panic!("expected Cancelled, got {other}"),
        }
    }

    #[test]
    fn expired_deadline_reports_last_completed_stage() {
        let tok = CancelToken::with_timeout(Duration::ZERO);
        assert!(tok.is_cancelled());
        let err = Synthesizer::new()
            .synthesize_source_cancellable(hls_workloads::sources::SQRT, &tok)
            .unwrap_err();
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    #[test]
    fn unfired_token_changes_nothing() {
        let tok = CancelToken::with_timeout(Duration::from_secs(3600));
        let r = Synthesizer::new()
            .synthesize_source_cancellable(hls_workloads::sources::SQRT, &tok)
            .unwrap();
        assert_eq!(r.latency, 10);
    }

    #[test]
    fn token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn borrowed_setters_match_consuming_builders() {
        let chained = Synthesizer::new()
            .universal_fus(1)
            .algorithm(Algorithm::Asap)
            .control(ControlStyle::Microcode)
            .without_optimization();
        let mut stepped = Synthesizer::default();
        stepped
            .set_universal_fus(1)
            .set_algorithm(Algorithm::Asap)
            .set_control(ControlStyle::Microcode)
            .set_optimize(false);
        assert_eq!(chained.fingerprint(), stepped.fingerprint());
        let r = stepped
            .synthesize_source(hls_workloads::sources::SQRT)
            .unwrap();
        assert_eq!(r.latency, 23);
    }

    #[test]
    fn parse_errors_propagate() {
        let err = Synthesizer::new()
            .synthesize_source("program ; begin end")
            .unwrap_err();
        assert!(err.to_string().contains("identifier"));
    }
}
