//! # hls-core — the end-to-end synthesis pipeline
//!
//! The driver tying every stage of the DAC'88 tutorial flow together:
//! BSL source → CDFG → high-level transformations → scheduling → data-path
//! allocation → controller synthesis → RT-level netlist, plus design-space
//! exploration and behavioral/RTL verification.
//!
//! ```
//! use hls_core::Synthesizer;
//!
//! let result = Synthesizer::new()
//!     .synthesize_source(hls_workloads::sources::SQRT)?;
//! assert_eq!(result.latency, 10);
//! let check = result.verify(4, (0.1, 1.0))?;
//! assert!(check.equivalent);
//! # Ok::<(), hls_core::SynthesisError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod estimate;
mod explore;
pub mod par;
mod pipeline;
mod report;
mod system;

pub use estimate::{prune_mask, Estimator, PruneStats, QorEstimate};
pub use explore::{
    pareto_front, sweep_fus, sweep_grid, sweep_grid_cdfg, CacheStats, DesignPoint, Explorer,
    GridPoint, GridSpec, PrunedSweep, StreamedPoint,
};
pub use pipeline::{
    cdfg_fingerprint, CancelToken, ControlReport, ControlStyle, PreparedBehavior, StageNanos,
    SynthesisResult, Synthesizer,
};
pub use system::{ProcessSynthesis, SystemEquivalence, SystemSynthesisResult};

// Re-exported so downstream layers (e.g. the service) can inspect the
// static liveness verdict without depending on the simulator crate.
pub use hls_sim::{analyze_deadlock, DeadlockVerdict};

use std::error::Error;
use std::fmt;

/// Any error the synthesis pipeline can produce.
#[derive(Debug)]
#[non_exhaustive]
pub enum SynthesisError {
    /// Front-end (lexing, parsing, lowering) failure.
    Parse(hls_lang::ParseError),
    /// Scheduling failure.
    Schedule(hls_sched::ScheduleError),
    /// Allocation failure.
    Alloc(hls_alloc::AllocError),
    /// Control-synthesis failure.
    Ctrl(hls_ctrl::CtrlError),
    /// Simulation failure during verification.
    Sim(hls_sim::SimError),
    /// A cached exploration point whose original synthesis failed; the
    /// message is the original error's rendering (the typed error went
    /// to whichever sweep computed the point first).
    Explore(String),
    /// Synthesis was cancelled (deadline or explicit token) between
    /// stages; `completed` names the last pipeline stage that finished,
    /// so callers can report how far the flow got.
    Cancelled {
        /// The last stage that ran to completion before the cancel
        /// check fired (`"none"` when nothing finished).
        completed: &'static str,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Parse(e) => write!(f, "parse: {e}"),
            SynthesisError::Schedule(e) => write!(f, "schedule: {e}"),
            SynthesisError::Alloc(e) => write!(f, "allocate: {e}"),
            SynthesisError::Ctrl(e) => write!(f, "control: {e}"),
            SynthesisError::Sim(e) => write!(f, "simulate: {e}"),
            SynthesisError::Explore(msg) => write!(f, "explore (cached failure): {msg}"),
            SynthesisError::Cancelled { completed } => {
                write!(f, "cancelled (last completed stage: {completed})")
            }
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::Parse(e) => Some(e),
            SynthesisError::Schedule(e) => Some(e),
            SynthesisError::Alloc(e) => Some(e),
            SynthesisError::Ctrl(e) => Some(e),
            SynthesisError::Sim(e) => Some(e),
            SynthesisError::Explore(_) => None,
            SynthesisError::Cancelled { .. } => None,
        }
    }
}

impl From<hls_lang::ParseError> for SynthesisError {
    fn from(e: hls_lang::ParseError) -> Self {
        SynthesisError::Parse(e)
    }
}
impl From<hls_sched::ScheduleError> for SynthesisError {
    fn from(e: hls_sched::ScheduleError) -> Self {
        SynthesisError::Schedule(e)
    }
}
impl From<hls_alloc::AllocError> for SynthesisError {
    fn from(e: hls_alloc::AllocError) -> Self {
        SynthesisError::Alloc(e)
    }
}
impl From<hls_ctrl::CtrlError> for SynthesisError {
    fn from(e: hls_ctrl::CtrlError) -> Self {
        SynthesisError::Ctrl(e)
    }
}
impl From<hls_sim::SimError> for SynthesisError {
    fn from(e: hls_sim::SimError) -> Self {
        SynthesisError::Sim(e)
    }
}
