//! System synthesis: a multi-process behavior becomes one FSMD per
//! process plus handshake interconnect.
//!
//! Each process runs through the ordinary single-behavior pipeline
//! (transform → schedule → allocate → control) with loop unrolling and
//! if-conversion forced off — those passes restructure the control tree
//! and would break the block-boundary placement of sync blocks. The
//! per-process results are then *elaborated* into one top-level Verilog
//! module: process datapaths and controllers wired through `hs_channel`
//! rendezvous cells (`hs_fifo` for channels declared with a depth) and,
//! for `shared` variables, `hs_arbiter` mutex arbiters (see `hls-rtl`);
//! the controllers' `req`/`grant` ports come from their FSMs'
//! [`sync states`](hls_ctrl::Fsm::sync_states).
//!
//! Verification is lockstep co-simulation: the behavioral interpreter
//! runs the *unoptimized* system while the RTL model executes every
//! process on its bound datapath, both under the same deterministic
//! rendezvous scheduler (`hls-sim`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use hls_cdfg::{Fx, SystemCdfg};
use hls_ctrl::controller_verilog;
use hls_sim::{
    analyze_deadlock, interpret_system, simulate_system, DeadlockVerdict, ProcessRtl, SimError,
    SystemBehavResult, SystemRtlResult,
};

use crate::pipeline::{SynthesisResult, Synthesizer};
use crate::SynthesisError;

/// One synthesized process: the name it was declared with plus the full
/// single-behavior synthesis result (schedule, datapath, FSM, netlist,
/// area) for its behavior.
#[derive(Clone, Debug)]
pub struct ProcessSynthesis {
    /// Process name as declared (the behavior itself is named
    /// `<system>_<process>`).
    pub name: String,
    /// The per-process pipeline output.
    pub result: SynthesisResult,
}

/// Everything system synthesis produces.
#[derive(Clone, Debug)]
pub struct SystemSynthesisResult {
    /// The system as lowered, before any optimization — the behavioral
    /// golden model for co-simulation.
    pub golden: SystemCdfg,
    /// The system with each process's behavior replaced by its optimized
    /// form (what the schedules and datapaths were built against).
    pub system: SystemCdfg,
    /// Per-process synthesis results, in declaration order.
    pub processes: Vec<ProcessSynthesis>,
    /// Static deadlock analysis verdict over the golden model (see
    /// [`hls_sim::analyze_deadlock`]): proven free, proven deadlocked
    /// with a witness, or conservatively unknown.
    pub deadlock: DeadlockVerdict,
}

/// The verdict of a system-level co-simulation run.
#[derive(Clone, Debug)]
pub struct SystemEquivalence {
    /// `true` when every output matched on every checked vector.
    pub equivalent: bool,
    /// Vectors checked (after skipping arithmetic-error vectors).
    pub vectors: usize,
    /// Human-readable description of the first mismatch, if any.
    pub mismatch: Option<String>,
    /// Total RTL makespan cycles across all vectors.
    pub total_cycles: u64,
    /// Total channel rendezvous granted across all RTL runs.
    pub rendezvous: u64,
}

impl Synthesizer {
    /// Parses and synthesizes a multi-process `system` source.
    ///
    /// # Errors
    ///
    /// Propagates front-end and per-process pipeline errors.
    ///
    /// ```
    /// use hls_core::Synthesizer;
    ///
    /// let sys = Synthesizer::new()
    ///     .synthesize_system_source(hls_workloads::sources::PIPE3)?;
    /// assert_eq!(sys.processes.len(), 3);
    /// # Ok::<(), hls_core::SynthesisError>(())
    /// ```
    pub fn synthesize_system_source(
        &self,
        src: &str,
    ) -> Result<SystemSynthesisResult, SynthesisError> {
        let sys = hls_lang::compile_system(src)?;
        self.synthesize_system(sys)
    }

    /// Synthesizes every process of `sys` through the single-behavior
    /// pipeline (with unrolling and if-conversion disabled — they
    /// restructure regions and would move sync blocks).
    ///
    /// # Errors
    ///
    /// Propagates per-process pipeline errors.
    pub fn synthesize_system(
        &self,
        sys: SystemCdfg,
    ) -> Result<SystemSynthesisResult, SynthesisError> {
        let golden = sys.clone();
        let mut per_process = self.clone();
        per_process.set_unrolling(false);
        per_process.set_if_conversion(false);
        let mut system = sys;
        let mut processes = Vec::with_capacity(system.processes.len());
        for p in &mut system.processes {
            let result = per_process.synthesize(p.cdfg.clone())?;
            p.cdfg = result.cdfg.clone();
            processes.push(ProcessSynthesis {
                name: p.name.clone(),
                result,
            });
        }
        let deadlock = analyze_deadlock(&golden);
        Ok(SystemSynthesisResult {
            golden,
            system,
            processes,
            deadlock,
        })
    }
}

impl SystemSynthesisResult {
    fn process_rtl(&self) -> Vec<ProcessRtl<'_>> {
        self.processes
            .iter()
            .map(|p| ProcessRtl {
                schedule: &p.result.schedule,
                datapath: &p.result.datapath,
                classifier: &p.result.classifier,
            })
            .collect()
    }

    /// Runs the behavioral golden model on one input vector.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors (including structured deadlocks).
    pub fn interpret(
        &self,
        inputs: &BTreeMap<String, Fx>,
    ) -> Result<SystemBehavResult, SynthesisError> {
        Ok(interpret_system(&self.golden, inputs)?)
    }

    /// Runs the lockstep RTL co-simulation on one input vector: every
    /// process executes on its bound datapath under the shared
    /// rendezvous scheduler.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors (including structured deadlocks).
    pub fn run(&self, inputs: &BTreeMap<String, Fx>) -> Result<SystemRtlResult, SynthesisError> {
        Ok(simulate_system(&self.system, &self.process_rtl(), inputs)?)
    }

    /// Co-simulates `n` seeded pseudo-random input vectors drawn from
    /// `range` and compares every system output. Vectors where the golden
    /// model hits an arithmetic error are skipped; a deadlock counts as
    /// equivalent only when *both* models deadlock with the *same*
    /// blocked set — wedging in different places is a divergence.
    ///
    /// # Errors
    ///
    /// Propagates RTL-side errors other than deadlock; mismatches are
    /// reported in the returned [`SystemEquivalence`], not as errors.
    pub fn verify(
        &self,
        n: usize,
        range: (f64, f64),
        seed: u64,
    ) -> Result<SystemEquivalence, SynthesisError> {
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (u >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut eq = SystemEquivalence {
            equivalent: true,
            vectors: 0,
            mismatch: None,
            total_cycles: 0,
            rendezvous: 0,
        };
        for _ in 0..n {
            let inputs: BTreeMap<String, Fx> = self
                .golden
                .inputs
                .iter()
                .map(|(name, _)| {
                    let x = range.0 + (range.1 - range.0) * next();
                    (name.clone(), Fx::from_f64(x))
                })
                .collect();
            let golden = match interpret_system(&self.golden, &inputs) {
                Err(SimError::DivideByZero) | Err(SimError::Nonterminating) => continue,
                other => other,
            };
            let rtl = simulate_system(&self.system, &self.process_rtl(), &inputs);
            match (golden, rtl) {
                (
                    Err(SimError::Deadlock { blocked: gb }),
                    Err(SimError::Deadlock { blocked: rb }),
                ) => {
                    eq.vectors += 1;
                    if let Some(detail) = deadlock_mismatch(&gb, &rb) {
                        eq.equivalent = false;
                        eq.mismatch = Some(format!("{detail} on {inputs:?}"));
                        return Ok(eq);
                    }
                }
                (Err(SimError::Deadlock { blocked }), Ok(_)) => {
                    eq.equivalent = false;
                    eq.vectors += 1;
                    eq.mismatch = Some(format!(
                        "behavioral model deadlocks ({blocked:?}) but RTL completes on {inputs:?}"
                    ));
                    return Ok(eq);
                }
                (Ok(_), Err(SimError::Deadlock { blocked })) => {
                    eq.equivalent = false;
                    eq.vectors += 1;
                    eq.mismatch = Some(format!(
                        "RTL deadlocks ({blocked:?}) but behavioral model completes on {inputs:?}"
                    ));
                    return Ok(eq);
                }
                (Err(e), _) | (_, Err(e)) => return Err(SynthesisError::Sim(e)),
                (Ok(b), Ok(r)) => {
                    eq.vectors += 1;
                    eq.total_cycles += r.cycles;
                    eq.rendezvous += r.rendezvous;
                    for (name, &expected) in &b.outputs {
                        let got = r.outputs.get(name).copied().unwrap_or(Fx::ZERO);
                        if got != expected {
                            eq.equivalent = false;
                            eq.mismatch = Some(format!(
                                "output `{name}`: behavioral {expected:?} vs rtl {got:?} on {inputs:?}"
                            ));
                            return Ok(eq);
                        }
                    }
                }
            }
        }
        Ok(eq)
    }

    /// Elaborates the whole system as self-contained Verilog: a top-level
    /// module instantiating every process datapath and controller, one
    /// `hs_channel` rendezvous cell per depth-0 channel (`hs_fifo` with
    /// the declared `DEPTH` otherwise), one `hs_arbiter` per shared
    /// variable, followed by all referenced module definitions
    /// (deduplicated).
    pub fn to_verilog(&self) -> String {
        let sys = &self.system;
        let mut s = String::new();
        let _ = writeln!(s, "// Generated by hls-core — system elaboration");
        let _ = writeln!(s, "module {} (", sanitize(&sys.name));
        let mut ports = vec!["  input clk".to_string(), "  input rst".to_string()];
        for (name, width) in &sys.inputs {
            let w = (*width).max(1) as usize;
            ports.push(format!("  input [{}:0] {}", w - 1, sanitize(name)));
        }
        for (name, _) in &sys.outputs {
            ports.push(format!("  output [31:0] {}", sanitize(name)));
        }
        ports.push("  output done".to_string());
        let _ = writeln!(s, "{}\n);", ports.join(",\n"));

        // Per-channel handshake wires. Rendezvous channels pass data
        // straight through, so one data wire serves both ends; FIFOs
        // have distinct enqueue/dequeue data.
        for c in &sys.channels {
            let cn = sanitize(&c.name);
            let _ = writeln!(s, "  wire [31:0] ch_{cn}_data;");
            if c.depth > 0 {
                let _ = writeln!(s, "  wire [31:0] ch_{cn}_rx_data;");
            }
            let _ = writeln!(
                s,
                "  wire ch_{cn}_tx_valid, ch_{cn}_tx_ready, ch_{cn}_rx_valid, ch_{cn}_rx_ready;"
            );
        }
        // Shared-variable registers.
        for v in &sys.shared {
            let _ = writeln!(s, "  reg [31:0] shared_{}_q;", sanitize(&v.name));
        }
        // Per-process wires: done, flags (driven by the datapath's
        // comparison registers; left symbolic here), req/grant.
        let syncs: Vec<Vec<(usize, SyncKind)>> = self
            .processes
            .iter()
            .map(|p| {
                p.result
                    .fsm
                    .sync_states
                    .iter()
                    .map(|(&sid, label)| (sid, SyncKind::parse(label)))
                    .collect()
            })
            .collect();
        for (pi, p) in self.processes.iter().enumerate() {
            let pn = sanitize(&p.name);
            let _ = writeln!(s, "  wire done_{pn};");
            for f in &p.result.fsm.flags {
                let _ = writeln!(s, "  wire flag_{pn}_{};", sanitize(f));
            }
            for (sid, _) in &syncs[pi] {
                let _ = writeln!(s, "  wire req_{pn}_{sid}, grant_{pn}_{sid};");
            }
        }
        let _ = writeln!(s);

        // Channel valid/ready aggregation and grant fan-out.
        for c in &sys.channels {
            let cn = sanitize(&c.name);
            for (end, valid_sig, ready_sig, want) in [
                (c.sender, "tx_valid", "tx_ready", SyncDir::Send),
                (c.receiver, "rx_valid", "rx_ready", SyncDir::Recv),
            ] {
                // The sender drives valid and listens on ready; the
                // receiver drives ready and listens on valid.
                let (drive, listen) = match want {
                    SyncDir::Send => (valid_sig, ready_sig),
                    SyncDir::Recv => (ready_sig, valid_sig),
                };
                match end {
                    None => {
                        let _ = writeln!(s, "  assign ch_{cn}_{drive} = 1'b0; // unconnected");
                    }
                    Some(pi) => {
                        let pn = sanitize(&self.processes[pi].name);
                        let reqs: Vec<String> = syncs[pi]
                            .iter()
                            .filter(|(_, k)| k.matches(want, &c.name))
                            .map(|(sid, _)| format!("req_{pn}_{sid}"))
                            .collect();
                        if reqs.is_empty() {
                            let _ = writeln!(s, "  assign ch_{cn}_{drive} = 1'b0;");
                        } else {
                            let _ = writeln!(s, "  assign ch_{cn}_{drive} = {};", reqs.join(" | "));
                            for (sid, k) in &syncs[pi] {
                                if k.matches(want, &c.name) {
                                    let _ = writeln!(
                                        s,
                                        "  assign grant_{pn}_{sid} = ch_{cn}_{listen} & req_{pn}_{sid};"
                                    );
                                }
                            }
                        }
                    }
                }
            }
            if c.depth > 0 {
                let _ = writeln!(
                    s,
                    "  hs_fifo #(.WIDTH(32), .DEPTH({})) chan_{cn} (.clk(clk), .rst(rst), \
                     .tx_data(ch_{cn}_data), .tx_valid(ch_{cn}_tx_valid), .tx_ready(ch_{cn}_tx_ready), \
                     .rx_data(ch_{cn}_rx_data), .rx_valid(ch_{cn}_rx_valid), .rx_ready(ch_{cn}_rx_ready));",
                    c.depth
                );
            } else {
                let _ = writeln!(
                    s,
                    "  hs_channel #(.WIDTH(32)) chan_{cn} (.clk(clk), .rst(rst), \
                     .tx_data(ch_{cn}_data), .tx_valid(ch_{cn}_tx_valid), .tx_ready(ch_{cn}_tx_ready), \
                     .rx_data(), .rx_valid(ch_{cn}_rx_valid), .rx_ready(ch_{cn}_rx_ready));"
                );
            }
        }

        // Mutex arbiters: one per shared variable, fixed priority in
        // process-declaration order (matching the simulator).
        for v in &sys.shared {
            let vn = sanitize(&v.name);
            let mut accessors: Vec<(usize, usize)> = Vec::new(); // (process, state)
            for (pi, states) in syncs.iter().enumerate() {
                for (sid, k) in states {
                    if matches!(k, SyncKind::Mutex(name) if *name == v.name) {
                        accessors.push((pi, *sid));
                    }
                }
            }
            if accessors.is_empty() {
                continue;
            }
            let k = accessors.len();
            let concat: Vec<String> = accessors
                .iter()
                .rev() // MSB first so bit 0 = first accessor
                .map(|(pi, sid)| format!("req_{}_{sid}", sanitize(&self.processes[*pi].name)))
                .collect();
            let _ = writeln!(s, "  wire [{}:0] arb_{vn}_grant;", k - 1);
            let _ = writeln!(
                s,
                "  hs_arbiter #(.N({k})) arb_{vn} (.clk(clk), .rst(rst), \
                 .req({{{}}}), .grant(arb_{vn}_grant));",
                concat.join(", ")
            );
            for (i, (pi, sid)) in accessors.iter().enumerate() {
                let pn = sanitize(&self.processes[*pi].name);
                let _ = writeln!(s, "  assign grant_{pn}_{sid} = arb_{vn}_grant[{i}];");
            }
            // Commit the store port of whichever accessor holds the grant.
            let _ = writeln!(s, "  always @(posedge clk) begin");
            for (i, (pi, sid)) in accessors.iter().enumerate() {
                let pn = sanitize(&self.processes[*pi].name);
                let st = format!("{}__st", v.name);
                let has_st = self.processes[*pi]
                    .result
                    .netlist
                    .ports()
                    .iter()
                    .any(|p| p.name == format!("out_{st}"));
                if has_st {
                    let kw = if i == 0 { "if" } else { "else if" };
                    let _ = writeln!(
                        s,
                        "    {kw} (grant_{pn}_{sid}) shared_{vn}_q <= {pn}_{};",
                        sanitize(&st)
                    );
                }
            }
            let _ = writeln!(s, "  end");
        }
        let _ = writeln!(s);

        // Process instances: datapath + controller.
        for (pi, p) in self.processes.iter().enumerate() {
            let pn = sanitize(&p.name);
            let module = sanitize(p.result.netlist.name());
            // Store-port wires feeding the shared registers.
            for port in p.result.netlist.ports() {
                if let Some(base) = port.name.strip_prefix("out_") {
                    if base.ends_with("__st") {
                        let _ = writeln!(s, "  wire [31:0] {pn}_{};", sanitize(base));
                    }
                }
            }
            let mut pins: Vec<String> = Vec::new();
            for port in p.result.netlist.ports() {
                let pin = sanitize(&port.name);
                if let Some(base) = port.name.strip_prefix("in_") {
                    let conn = if let Some(chan) = base.strip_suffix("__rx") {
                        // FIFOs present dequeue data on a separate wire,
                        // gated by rx_valid: a failed try_recv must latch
                        // zero into the destination (both simulators write
                        // "var zeroed, flag low"), not the stale
                        // mem[rd_ptr] contents. Blocking recv is
                        // unaffected — it only commits on a cycle where
                        // rx_valid is high, so the gate is transparent.
                        match sys.channel(chan) {
                            Some(c) if c.depth > 0 => {
                                let cn = sanitize(chan);
                                format!("ch_{cn}_rx_valid ? ch_{cn}_rx_data : 32'd0")
                            }
                            _ => format!("ch_{}_data", sanitize(chan)),
                        }
                    } else if let Some(chan) = base.strip_suffix("__ok") {
                        // Try-op success flag: the channel's local
                        // readiness as seen from this process's side.
                        match sys.channel(chan) {
                            Some(c) if c.sender == Some(pi) => {
                                format!("ch_{}_tx_ready", sanitize(chan))
                            }
                            Some(c) if c.receiver == Some(pi) => {
                                format!("ch_{}_rx_valid", sanitize(chan))
                            }
                            _ => "1'b0".to_string(),
                        }
                    } else if let Some(var) = base.strip_suffix("__ld") {
                        format!("shared_{}_q", sanitize(var))
                    } else {
                        sanitize(base)
                    };
                    pins.push(format!(".{pin}({conn})"));
                } else if let Some(base) = port.name.strip_prefix("out_") {
                    let conn = if let Some(chan) = base.strip_suffix("__tx") {
                        format!("ch_{}_data", sanitize(chan))
                    } else if base.ends_with("__st") {
                        format!("{pn}_{}", sanitize(base))
                    } else {
                        sanitize(base)
                    };
                    pins.push(format!(".{pin}({conn})"));
                }
            }
            let _ = writeln!(s, "  {module} dp_{pn} ({});", pins.join(", "));
            let mut cpins = vec![".clk(clk)".to_string(), ".rst(rst)".to_string()];
            for f in &p.result.fsm.flags {
                let fn_ = sanitize(f);
                cpins.push(format!(".flag_{fn_}(flag_{pn}_{fn_})"));
            }
            for (sid, _) in &syncs[pi] {
                cpins.push(format!(".req_{sid}(req_{pn}_{sid})"));
                cpins.push(format!(".grant_{sid}(grant_{pn}_{sid})"));
            }
            cpins.push(format!(".done(done_{pn})"));
            let _ = writeln!(s, "  {module}_ctrl ctl_{pn} ({});", cpins.join(", "));
        }
        let dones: Vec<String> = self
            .processes
            .iter()
            .map(|p| format!("done_{}", sanitize(&p.name)))
            .collect();
        let _ = writeln!(s, "  assign done = {};", dones.join(" & "));
        let _ = writeln!(s, "endmodule\n");

        // Controller modules.
        for p in &self.processes {
            let name = format!("{}_ctrl", sanitize(p.result.netlist.name()));
            s.push_str(&controller_verilog(&name, &p.result.fsm));
            s.push('\n');
        }
        // Interconnect cells, only the kinds actually instantiated.
        if sys.channels.iter().any(|c| c.depth == 0) {
            s.push_str(hls_rtl::channel_cell_verilog());
            s.push('\n');
        }
        if sys.channels.iter().any(|c| c.depth > 0) {
            s.push_str(hls_rtl::fifo_cell_verilog());
            s.push('\n');
        }
        if !sys.shared.is_empty() {
            s.push_str(hls_rtl::arbiter_verilog());
            s.push('\n');
        }
        // Process datapath netlists (cell definitions deduplicated).
        for p in &self.processes {
            s.push_str(&p.result.to_verilog());
        }
        dedupe_modules(&s)
    }
}

/// Compares the blocked sets of two deadlocked models. Both deadlocking
/// is only equivalence when they wedge at the *same* `(process, op)`
/// pairs — e.g. a controller bug that skips one rendezvous can leave the
/// RTL stuck one channel further down the pipeline, which this catches.
fn deadlock_mismatch(golden: &[(String, String)], rtl: &[(String, String)]) -> Option<String> {
    (golden != rtl).then(|| {
        format!("both models deadlock but with different blocked sets: behavioral {golden:?} vs rtl {rtl:?}")
    })
}

/// The kind of handshake a sync state performs, parsed from its FSM
/// label (`send c` / `recv c` / `try_send c` / `try_recv c` / `mutex v`).
#[derive(Clone, Debug, PartialEq, Eq)]
enum SyncKind {
    Send(String),
    Recv(String),
    Mutex(String),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SyncDir {
    Send,
    Recv,
}

impl SyncKind {
    fn parse(label: &str) -> SyncKind {
        // Try ops wire identically to their blocking forms — the sender
        // side drives `tx_valid`, the receiver side `rx_ready`. The
        // non-blocking part lives in the controller, which asserts its
        // request for one cycle and advances regardless of the grant
        // (see `hls_ctrl::controller_verilog`); the datapath latches the
        // channel's local readiness — equal to the grant while the
        // request is high — as the success flag during that cycle.
        match label.split_once(' ') {
            Some(("send" | "try_send", c)) => SyncKind::Send(c.to_string()),
            Some(("recv" | "try_recv", c)) => SyncKind::Recv(c.to_string()),
            Some(("mutex", v)) => SyncKind::Mutex(v.to_string()),
            _ => SyncKind::Mutex(label.to_string()),
        }
    }

    fn matches(&self, dir: SyncDir, chan: &str) -> bool {
        match (self, dir) {
            (SyncKind::Send(c), SyncDir::Send) => c == chan,
            (SyncKind::Recv(c), SyncDir::Recv) => c == chan,
            _ => false,
        }
    }
}

/// Makes an identifier Verilog-safe.
fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("n{cleaned}")
    } else {
        cleaned
    }
}

/// Drops repeated definitions of the same module name, keeping the first
/// (per-process netlists each carry behavioral cell definitions).
fn dedupe_modules(src: &str) -> String {
    let mut out = String::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut skipping = false;
    for line in src.lines() {
        let t = line.trim_start();
        if !skipping {
            if let Some(rest) = t.strip_prefix("module ") {
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !seen.insert(name) {
                    skipping = true;
                }
            }
        }
        let ends_here = t.starts_with("endmodule");
        if !skipping {
            out.push_str(line);
            out.push('\n');
        }
        if ends_here {
            skipping = false;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe3() -> SystemSynthesisResult {
        Synthesizer::new()
            .synthesize_system_source(hls_workloads::sources::PIPE3)
            .unwrap()
    }

    #[test]
    fn pipe3_synthesizes_three_fsmds_that_cosimulate() {
        let sys = pipe3();
        assert_eq!(sys.processes.len(), 3);
        // prod sends X+0, X+1, X+2; xform doubles; cons accumulates:
        // Y = 2*(3X + 3) = 6X + 6.
        let inputs = BTreeMap::from([("X".to_string(), Fx::from_i64(2))]);
        let b = sys.interpret(&inputs).unwrap();
        assert_eq!(b.outputs["Y"], Fx::from_i64(18));
        let r = sys.run(&inputs).unwrap();
        assert_eq!(r.outputs["Y"], Fx::from_i64(18));
        // Two channels × three transfers each.
        assert_eq!(r.rendezvous, 6);
        assert!(r.cycles > 0);
        assert_eq!(r.process_cycles.len(), 3);
    }

    #[test]
    fn pipe3_lockstep_cosim_is_equivalent_on_random_vectors() {
        let sys = pipe3();
        let eq = sys.verify(16, (-4.0, 4.0), 0xD5EA_D5EA).unwrap();
        assert!(eq.equivalent, "{:?}", eq.mismatch);
        assert_eq!(eq.vectors, 16);
        assert_eq!(eq.rendezvous, 16 * 6);
    }

    #[test]
    fn pipe3_elaborates_to_balanced_verilog_with_interconnect() {
        let v = pipe3().to_verilog();
        assert!(v.contains("module pipe3 ("), "top module present");
        assert!(v.contains("module hs_channel"), "channel cell emitted");
        assert!(v.contains("hs_channel #(.WIDTH(32)) chan_c1"), "{v}");
        assert!(v.contains("hs_channel #(.WIDTH(32)) chan_c2"));
        for p in ["prod", "xform", "cons"] {
            assert!(v.contains(&format!("dp_{p}")), "datapath instance {p}");
            assert!(v.contains(&format!("ctl_{p}")), "controller instance {p}");
        }
        assert_eq!(
            v.matches("module ").count(),
            v.matches("endmodule").count(),
            "balanced module/endmodule"
        );
        // Cell definitions appear exactly once despite three netlists.
        assert_eq!(v.matches("module reg_dff").count(), 1, "deduplicated cells");
    }

    #[test]
    fn deadlock_equivalence_requires_matching_blocked_sets() {
        let stuck_a = vec![("a".to_string(), "send c".to_string())];
        let stuck_b = vec![("b".to_string(), "recv d".to_string())];
        assert!(deadlock_mismatch(&stuck_a, &stuck_a).is_none());
        let detail = deadlock_mismatch(&stuck_a, &stuck_b).expect("different sets must mismatch");
        assert!(detail.contains("different blocked sets"), "{detail}");
    }

    #[test]
    fn crossed_sends_deadlock_consistently_and_are_predicted() {
        // Both processes send first: a guaranteed rendezvous deadlock.
        let sys = Synthesizer::new()
            .synthesize_system_source(
                "system cross; output Y; chan ab; chan ba;
                 process a; var v; begin send ab, 1; recv ba, v; Y := v; end;
                 process b; var w; begin send ba, 2; recv ab, w; end;
                 end.",
            )
            .unwrap();
        // The static analysis calls it before any simulation runs.
        assert!(
            matches!(sys.deadlock, DeadlockVerdict::Deadlock { .. }),
            "{:?}",
            sys.deadlock
        );
        // Both models wedge with the same blocked set on every vector,
        // so verification still reports equivalence.
        let eq = sys.verify(4, (0.0, 4.0), 11).unwrap();
        assert!(eq.equivalent, "{:?}", eq.mismatch);
        assert_eq!(eq.vectors, 4);
    }

    #[test]
    fn buffered_pipeline_synthesizes_fifo_and_stays_equivalent() {
        let sys = Synthesizer::new()
            .synthesize_system_source(
                "system bufpipe; input X; output Y; chan c : fix[2];
                 process prod; var i : int<4>; begin
                   i := 0;
                   do send c, X + i; i := i + 1; until i > 2;
                 end;
                 process cons; var v, acc, j : int<4>; begin
                   acc := 0; j := 0;
                   do recv c, v; acc := acc + v; j := j + 1; until j > 2;
                   Y := acc;
                 end;
                 end.",
            )
            .unwrap();
        assert_eq!(sys.deadlock, DeadlockVerdict::Free, "{:?}", sys.deadlock);
        let eq = sys.verify(8, (-4.0, 4.0), 0xF1F0).unwrap();
        assert!(eq.equivalent, "{:?}", eq.mismatch);
        let v = sys.to_verilog();
        assert!(v.contains("hs_fifo #(.WIDTH(32), .DEPTH(2)) chan_c"), "{v}");
        assert!(v.contains("module hs_fifo"), "{v}");
        // No rendezvous channels left, so the rendezvous cell is absent.
        assert!(!v.contains("module hs_channel"), "{v}");
        // The consumer reads the FIFO's dequeue side, not the tx wire.
        assert!(v.contains("ch_c_rx_data"), "{v}");
        // Blocking send/recv states still hold for their grant (only
        // try-op states advance ungated).
        assert!(v.contains("if (grant_"), "{v}");
        assert_eq!(v.matches("module ").count(), v.matches("endmodule").count());
    }

    #[test]
    fn try_ops_cosimulate_and_wire_the_success_flag() {
        // The consumer polls with try_recv in a loop; success flag gates
        // the accumulation. Spin-waiting works because the producer keeps
        // its own clock — the scheduler never blocks a try op.
        let sys = Synthesizer::new()
            .synthesize_system_source(
                "system trysys; input X; output Y; chan c : fix[1];
                 process prod; var f : bit; begin
                   try_send c, X + 1, f;
                   Y := f;
                 end;
                 process cons; var v : int<8>; var g : bit; begin
                   do try_recv c, v, g; until g = 1;
                 end;
                 end.",
            )
            .unwrap();
        // Try ops make occupancy data-dependent: conservatively unknown.
        assert!(
            matches!(sys.deadlock, DeadlockVerdict::Unknown { .. }),
            "{:?}",
            sys.deadlock
        );
        let eq = sys.verify(8, (0.0, 8.0), 0x7A11).unwrap();
        assert!(eq.equivalent, "{:?}", eq.mismatch);
        let v = sys.to_verilog();
        // The success flag input samples the FIFO's local readiness.
        assert!(v.contains(".in_c__ok(ch_c_tx_ready)"), "{v}");
        assert!(v.contains(".in_c__ok(ch_c_rx_valid)"), "{v}");
        // Co-sim never executes the emitted controllers, so lint the
        // Verilog: both processes only sync through try ops, whose states
        // must pulse req and advance unconditionally — a grant gate would
        // wedge the FSM on a full/empty FIFO and latch ok=1 forever,
        // diverging from both simulators (ok=0, advance).
        assert!(v.contains("assign req_"), "{v}");
        assert!(!v.contains("if (grant_"), "try states must not hold: {v}");
        // A failed try_recv latches zero, not stale FIFO memory: the
        // dequeue data is gated by rx_valid at the datapath input.
        assert!(
            v.contains(".in_c__rx(ch_c_rx_valid ? ch_c_rx_data : 32'd0)"),
            "{v}"
        );
    }

    #[test]
    fn shared_variable_system_elaborates_an_arbiter() {
        let sys = Synthesizer::new()
            .synthesize_system_source(
                "system s; input X; output Y; shared acc;
                 process a; begin acc := acc + X; end;
                 process b; var t; begin t := acc; Y := t + 1; end;
                 end.",
            )
            .unwrap();
        let v = sys.to_verilog();
        assert!(v.contains("module hs_arbiter"), "{v}");
        assert!(v.contains("hs_arbiter #(.N(2)) arb_acc"), "{v}");
        assert!(v.contains("shared_acc_q"), "{v}");
        let eq = sys.verify(8, (0.0, 8.0), 7).unwrap();
        assert!(eq.equivalent, "{:?}", eq.mismatch);
    }
}
