//! Re-export of the shared work-stealing pool.
//!
//! The pool originally lived here; it moved to the `hls-par` crate when
//! the hierarchical force-directed scheduler (`hls-sched`, which
//! `hls-core` depends on) needed to fan independent dependence
//! components across the same workers. This module keeps the historical
//! `hls_core::par` path working for existing callers (`hls-serve`, the
//! explorer, examples).

pub use hls_par::{default_threads, shared, ThreadPool};
