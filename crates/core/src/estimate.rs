//! Fast QoR estimation for design-space pruning.
//!
//! The paper's exploration loop synthesizes every candidate design in
//! full. This module predicts, per [`GridPoint`], a *sound interval* for
//! the quantities the Pareto front is computed from — total latency and
//! estimated area (plus FU and register cost components) — using only
//! the per-block ASAP/ALAP bound analyses already cached in
//! [`PreparedBehavior`]: no scheduler runs, no datapath is bound, no RTL
//! is emitted.
//!
//! Soundness is the contract: for every point whose estimate reports
//! `bounded`, the real pipeline's latency and area are guaranteed to lie
//! inside the predicted `[lo, hi]` intervals. That turns dominance
//! checks between intervals into *proofs* that a point cannot appear on
//! the exhaustive Pareto front, which is what lets
//! `Explorer::sweep_grid_cdfg_pruned` skip it without changing the
//! front (see [`prune_mask`] for the exact rule and argument).
//!
//! ## Latency model (per block, aggregated over the control tree)
//!
//! With `cp` the dependence-only critical path, `N_c` the number of
//! step-taking ops of FU class `c`, `N = Σ N_c`, `k_c` the resource
//! limit, and `H_c` the peak per-step occupancy of class `c` under
//! dependence-only ASAP ([`ClassStats::asap_peak`]):
//!
//! * Any valid schedule needs at least `max(cp, max_c ⌈N_c / k_c⌉)`
//!   steps (dependences and serialization are both binding).
//! * Greedy forward schedulers (ASAP, list) run at most `cp + N` steps:
//!   every control step either executes a step-taking op (at most `N`
//!   such steps) or holds only dependence-blocked work and chained-free
//!   ops, advancing the blocked chain (at most `cp` such steps along
//!   any path). Steps occupied purely by chained-free source ops — a
//!   graph whose every step-taking op consumes a shifted/wired value —
//!   fall in the second class, which is why the naive `≤ N` ceiling is
//!   unsound.
//! * **Saturation**: when `k_c ≥ H_c` for *every* class of *every*
//!   block, no limit can ever bind a greedy forward scheduler, and the
//!   schedule degenerates to dependence-only ASAP exactly — latency and
//!   per-class FU peaks become point predictions, not intervals.
//! * Time-constrained algorithms (force-directed, hierarchical FDS,
//!   freedom-based) schedule against deadline `max(cp,1) + slack` and
//!   ignore limits: latency lies in `[cp, deadline]`, exact at zero
//!   slack; FU peaks are bounded by the per-class *window support*
//!   ([`SchedGraph::window_peaks`]).
//! * Resource-constrained ALAP retries backward packing on horizons up
//!   to `4 × (ASAP length + slack)`, bounding its length by
//!   `4 × (cp + max(N,1) + slack)` (ASAP length is itself at most
//!   `cp + N`).
//! * Transformational scheduling is search-based with no useful a
//!   priori upper bound: its estimate is marked unbounded and is only
//!   ever pruned through configuration-identity (equal fingerprints).
//!
//! Per-block intervals aggregate over the control tree exactly like
//! `CdfgSchedule::total_latency` (sequences add, loops multiply by trip
//! hints, conditionals take the max branch) — every combinator is
//! monotone, so interval endpoints aggregate soundly.
//!
//! ## Area model
//!
//! Mirrors `hls_alloc::build_datapath` + `hls_rtl::estimate`: variable
//! registers and memories are *schedule-independent* and priced exactly;
//! FU cost is the per-class peak interval priced at the bound cell;
//! temporary registers and mux inputs get `[0, structural upper bound]`
//! intervals (counts of storable values and operand references — a
//! datapath can never use more). Everything scales by the same wiring
//! factor the real estimator applies. Pricing assumes cells whose area
//! is non-decreasing in width (true of `Library::standard`).

use std::collections::{BTreeMap, HashMap, HashSet};

use hls_cdfg::{BlockId, LoopKind, Region, ValueDef};
use hls_rtl::WIRING_FACTOR;
use hls_sched::{Algorithm, ClassStats, FuClass, ResourceLimits, SchedGraph};

use crate::explore::{configure, GridPoint};
use crate::pipeline::{ControlStyle, PreparedBehavior, Synthesizer};

/// A sound QoR interval prediction for one grid point.
///
/// When [`QorEstimate::bounded`] is `true`, the real pipeline's result
/// for this point is guaranteed to satisfy `latency.0 ≤ latency ≤
/// latency.1` and `area.0 ≤ area ≤ area.1` (and likewise for the cost
/// components). When `false`, the intervals are best-effort and must
/// not be used for dominance pruning.
#[derive(Clone, Debug, PartialEq)]
pub struct QorEstimate {
    /// Total latency interval in control steps (loop-aware, trip hints
    /// honored like `CdfgSchedule::total_latency`).
    pub latency: (u64, u64),
    /// Functional-unit area interval in gate equivalents (cells only,
    /// before wiring).
    pub fu_cost: (f64, f64),
    /// Register area interval in gate equivalents (variable registers
    /// exact + temporary-register upper bound, before wiring).
    pub register_cost: (f64, f64),
    /// Total area interval in gate equivalents (wiring included) —
    /// comparable to `SynthesisResult::area.total()`.
    pub area: (f64, f64),
    /// Fingerprint of the point's *effective* configuration: control
    /// style erased (it never enters latency or area), limits dropped
    /// for time-constrained algorithms, limits canonicalized to the
    /// dependence-ASAP peaks when saturation makes them unbinding.
    /// Equal fingerprints ⟹ provably identical synthesis outcomes.
    pub fingerprint: u64,
    /// `true` when the intervals above are sound bounds on the real
    /// pipeline; `false` for configurations the model cannot bound
    /// (transformational scheduling, zero limits, missing cells).
    pub bounded: bool,
}

impl QorEstimate {
    /// `true` when an actual `(latency, area)` outcome lies inside the
    /// predicted intervals (with a tiny relative tolerance on the float
    /// area axis).
    pub fn contains(&self, latency: u64, area: f64) -> bool {
        let eps = 1e-9 * self.area.1.abs().max(1.0);
        latency >= self.latency.0
            && latency <= self.latency.1
            && area >= self.area.0 - eps
            && area <= self.area.1 + eps
    }
}

/// Statistics the estimator precomputes once per block (shared by every
/// grid point of a sweep).
struct BlockFacts {
    block: BlockId,
    cp: u32,
    ops: usize,
    stats: Vec<ClassStats>,
    /// Op-defined values: upper bound on stored temporaries.
    op_values: usize,
    /// Total operand references of step-taking ops (mux upper bound).
    operand_refs: usize,
    classed_ops: usize,
    outputs: usize,
}

/// Per-block latency interval and per-class FU-peak intervals for one
/// algorithm choice.
struct BlockBounds {
    lat: (u64, u64),
    fu: BTreeMap<FuClass, (usize, usize)>,
    bounded: bool,
}

/// The reusable estimation context of one sweep: per-block facts plus
/// the schedule-independent exact area components, computed once from a
/// [`PreparedBehavior`] and then queried per [`GridPoint`].
pub struct Estimator<'a> {
    base: &'a Synthesizer,
    prepared: &'a PreparedBehavior,
    blocks: Vec<BlockFacts>,
    var_area: f64,
    mem_area: f64,
    reg_area_wmax: f64,
    mux_unit_area: f64,
    temp_hi: usize,
    mux_hi: usize,
}

impl<'a> Estimator<'a> {
    /// Builds the context. `prepared` must come from `base.prepare(..)`
    /// (same classifier), exactly like `synthesize_prepared`.
    pub fn new(base: &'a Synthesizer, prepared: &'a PreparedBehavior) -> Self {
        let cdfg = prepared.cdfg();
        let classifier = prepared.classifier();
        let library = base.library_ref();
        let mut blocks = Vec::new();
        let mut seen: HashSet<BlockId> = HashSet::new();
        let mut max_value_width_global = 1u8;
        for (block, sg) in prepared.bounds().blocks() {
            if !seen.insert(block) {
                continue; // blocks may repeat in shared regions
            }
            let dfg = &cdfg.block(block).dfg;
            let (_, cp) = sg.asap();
            let stats = sg.class_stats();
            let mut op_values = 0usize;
            let mut max_value_width = 1u8;
            for v in dfg.value_ids() {
                if matches!(dfg.value(v).def, ValueDef::Op(_)) {
                    op_values += 1;
                    max_value_width = max_value_width.max(dfg.value(v).width);
                }
            }
            max_value_width_global = max_value_width_global.max(max_value_width);
            let mut operand_refs = 0usize;
            let mut classed_ops = 0usize;
            for op in dfg.op_ids() {
                if classifier.classify(dfg, op).is_some() {
                    classed_ops += 1;
                    operand_refs += dfg.op(op).operands.len();
                }
            }
            blocks.push(BlockFacts {
                block,
                cp,
                ops: sg.len(),
                stats,
                op_values,
                operand_refs,
                classed_ops,
                outputs: dfg.outputs().len(),
            });
        }
        // Exact, schedule-independent area components (pricing mirrors
        // Datapath::to_netlist + hls_rtl::estimate, where instances of
        // unknown cells are charged zero).
        let price = |name: &str, width: u8| library.cell(name).map_or(0.0, |c| c.area(width));
        let var_area: f64 = hls_alloc::variable_widths(cdfg)
            .values()
            .map(|&w| price("reg_dff", w))
            .sum();
        let mem_area = hls_alloc::memory_names(cdfg).len() as f64 * price("mem_1rw", 32);
        let temp_hi = blocks.iter().map(|b| b.op_values).max().unwrap_or(0);
        let mux_hi = blocks
            .iter()
            .map(|b| b.operand_refs + b.classed_ops + b.outputs)
            .sum();
        Estimator {
            base,
            prepared,
            blocks,
            var_area,
            mem_area,
            reg_area_wmax: price("reg_dff", max_value_width_global),
            mux_unit_area: price("mux2", 32),
            temp_hi,
            mux_hi,
        }
    }

    /// Estimates one grid point. Never runs a scheduler; cost is linear
    /// in the number of ops (and only for time-constrained algorithms,
    /// which need per-deadline window supports).
    pub fn estimate(&self, point: &GridPoint) -> QorEstimate {
        let syn = configure(self.base, point);
        let limits = syn.limits_ref().clone();
        let library = self.base.library_ref();
        let mut bounded = true;

        // Per-block latency + FU-peak intervals.
        let mut lat_by_block: HashMap<BlockId, (u64, u64)> = HashMap::new();
        let mut fu_global: BTreeMap<FuClass, (usize, usize)> = BTreeMap::new();
        for facts in &self.blocks {
            let bb = match self.prepared.bounds().graph(facts.block) {
                Some(sg) => block_bounds(facts, sg, &limits, point.algorithm),
                None => BlockBounds {
                    lat: (0, u64::MAX),
                    fu: BTreeMap::new(),
                    bounded: false,
                },
            };
            bounded &= bb.bounded;
            lat_by_block.insert(facts.block, bb.lat);
            for (class, (lo, hi)) in bb.fu {
                let e = fu_global.entry(class).or_insert((0, 0));
                e.0 = e.0.max(lo);
                e.1 = e.1.max(hi);
            }
        }
        let latency = region_interval(self.prepared.cdfg().body(), &lat_by_block);

        // FU pricing at the cells build_datapath would bind.
        let mut fu_lo = 0.0f64;
        let mut fu_hi = 0.0f64;
        for (&class, &(lo, hi)) in &fu_global {
            match library.bind(hls_alloc::cell_class_for(class), 32, None) {
                Some(cell) => {
                    let a = cell.area(32);
                    fu_lo += lo as f64 * a;
                    fu_hi += hi as f64 * a;
                }
                // build_datapath would fail with MissingCell; the point
                // cannot be bounded (and will surface the real error if
                // synthesized).
                None => bounded = false,
            }
        }

        let temp_hi_area = self.temp_hi as f64 * self.reg_area_wmax;
        let register_cost = (self.var_area, self.var_area + temp_hi_area);
        let fixed = self.var_area + self.mem_area;
        let wiring = 1.0 + WIRING_FACTOR;
        let area = (
            (fixed + fu_lo) * wiring,
            (fixed + fu_hi + temp_hi_area + self.mux_hi as f64 * self.mux_unit_area) * wiring,
        );

        QorEstimate {
            latency,
            fu_cost: (fu_lo, fu_hi),
            register_cost,
            area,
            fingerprint: self.canonical_fingerprint(syn, point),
            bounded,
        }
    }

    /// Estimates every point of a grid, in grid order.
    pub fn estimate_points(&self, points: &[GridPoint]) -> Vec<QorEstimate> {
        points.iter().map(|p| self.estimate(p)).collect()
    }

    /// `true` when no resource limit can ever bind a greedy forward
    /// scheduler on this behavior: every class of every block has its
    /// dependence-ASAP peak within the limit.
    fn saturated(&self, limits: &ResourceLimits) -> bool {
        self.blocks.iter().all(|b| {
            b.stats
                .iter()
                .all(|s| s.ops == 0 || limits.limit(s.class) >= s.asap_peak)
        })
    }

    /// Fingerprint of the *effective* configuration — see
    /// [`QorEstimate::fingerprint`].
    fn canonical_fingerprint(&self, mut syn: Synthesizer, point: &GridPoint) -> u64 {
        // Control style affects only the controller report, never the
        // datapath netlist or the schedule: erase it.
        syn.set_control(ControlStyle::Microcode);
        match point.algorithm {
            Algorithm::ForceDirected { .. }
            | Algorithm::HierForce { .. }
            | Algorithm::FreedomBased { .. } => {
                // Time-constrained schedulers never read limits.
                syn.set_limits(ResourceLimits::unlimited());
            }
            Algorithm::Asap | Algorithm::List(_) => {
                let limits = syn.limits_ref().clone();
                if self.saturated(&limits) {
                    // All saturated limit choices behave identically:
                    // canonicalize to the dependence-ASAP peaks.
                    let mut peaks: BTreeMap<FuClass, usize> = BTreeMap::new();
                    for b in &self.blocks {
                        for s in &b.stats {
                            if s.ops > 0 {
                                let e = peaks.entry(s.class).or_insert(0);
                                *e = (*e).max(s.asap_peak);
                            }
                        }
                    }
                    let mut canon = ResourceLimits::unlimited();
                    for (class, peak) in peaks {
                        canon = canon.with(class, peak.max(1));
                    }
                    syn.set_limits(canon);
                }
            }
            _ => {}
        }
        syn.fingerprint()
    }
}

/// Latency and FU-peak intervals of one block under one algorithm.
fn block_bounds(
    facts: &BlockFacts,
    sg: &SchedGraph,
    limits: &ResourceLimits,
    algorithm: Algorithm,
) -> BlockBounds {
    let cp = facts.cp as u64;
    // Every live op (wired constants included) is assigned a step, so a
    // block with any ops takes at least one step.
    let floor = if facts.ops == 0 { 0 } else { cp.max(1) };
    let n: usize = facts.stats.iter().map(|s| s.ops).sum();
    let n_classes = facts.stats.iter().filter(|s| s.ops > 0).count();
    if facts.ops == 0 {
        return BlockBounds {
            lat: (0, 0),
            fu: BTreeMap::new(),
            bounded: true,
        };
    }
    // Lower bound on any valid schedule under `limits`.
    let mut serial_lo = floor;
    let mut feasible = true;
    for s in &facts.stats {
        if s.ops == 0 {
            continue;
        }
        let k = limits.limit(s.class);
        if k == 0 {
            feasible = false; // synthesis will error; cannot bound
        } else {
            serial_lo = serial_lo.max(s.ops.div_ceil(k) as u64);
        }
    }
    // Greedy upper bound: every step either executes a step-taking op
    // (≤ n of those) or advances a dependence-blocked chain (≤ cp of
    // those along any path) — steps holding only chained-free ops are
    // chain-advance steps, so `n` alone is NOT a sound ceiling.
    let n_hi = (n as u64).saturating_add(cp).max(floor);
    let saturated = facts
        .stats
        .iter()
        .all(|s| s.ops == 0 || limits.limit(s.class) >= s.asap_peak);

    let mut fu = BTreeMap::new();
    let (lat, bounded) = match algorithm {
        Algorithm::Asap | Algorithm::List(_) => {
            let lat = if saturated && feasible {
                // Greedy forward scheduling degenerates to
                // dependence-only ASAP: exact.
                (floor, floor)
            } else {
                (serial_lo, n_hi)
            };
            for s in &facts.stats {
                if s.ops == 0 {
                    continue;
                }
                let k = limits.limit(s.class);
                let hi = if saturated {
                    s.asap_peak
                } else if n_classes <= 1 {
                    // Single class: the greedy peak can never exceed
                    // the dependence-ASAP peak (no cross-class backlog
                    // can re-bunch ops).
                    k.min(s.asap_peak)
                } else {
                    k.min(s.ops)
                };
                let lo = if saturated {
                    s.asap_peak
                } else {
                    div_ceil_u64(s.ops as u64, lat.1.max(1)) as usize
                };
                fu.insert(s.class, (lo.min(hi), hi));
            }
            (lat, feasible)
        }
        Algorithm::Alap { slack } => {
            let hi = 4u64
                .saturating_mul(
                    cp.saturating_add((n as u64).max(1))
                        .saturating_add(slack as u64),
                )
                .max(floor);
            for s in &facts.stats {
                if s.ops > 0 {
                    fu.insert(s.class, (0, limits.limit(s.class).min(s.ops)));
                }
            }
            ((serial_lo, hi), feasible)
        }
        Algorithm::BranchAndBound { .. } => {
            for s in &facts.stats {
                if s.ops > 0 {
                    let lo = div_ceil_u64(s.ops as u64, n_hi.max(1)) as usize;
                    let hi = limits.limit(s.class).min(s.ops);
                    fu.insert(s.class, (lo.min(hi), hi));
                }
            }
            ((serial_lo, n_hi), feasible)
        }
        Algorithm::ForceDirected { slack }
        | Algorithm::HierForce { slack, .. }
        | Algorithm::FreedomBased { slack } => {
            let deadline = facts.cp.max(1).saturating_add(slack);
            match sg.window_peaks(deadline) {
                Ok(peaks) => {
                    for (class, peak) in peaks {
                        let ops = facts
                            .stats
                            .iter()
                            .find(|s| s.class == class)
                            .map_or(0, |s| s.ops);
                        if ops > 0 {
                            let lo = div_ceil_u64(ops as u64, deadline as u64) as usize;
                            fu.insert(class, (lo.min(peak), peak));
                        }
                    }
                    ((floor, deadline as u64), true)
                }
                Err(_) => ((floor, deadline as u64), false),
            }
        }
        Algorithm::Transformational => {
            // Search-based serialization: no useful a-priori upper
            // bound. The peak can still never exceed min(k, N_c).
            for s in &facts.stats {
                if s.ops > 0 {
                    fu.insert(s.class, (0, limits.limit(s.class).min(s.ops)));
                }
            }
            ((serial_lo, u64::MAX), false)
        }
    };
    BlockBounds { lat, fu, bounded }
}

fn div_ceil_u64(a: u64, b: u64) -> u64 {
    a.div_ceil(b.max(1))
}

/// Aggregates per-block latency intervals over the control tree, exactly
/// mirroring `CdfgSchedule::total_latency` (default trip = 1). Every
/// combinator is monotone in its block latencies, so applying it to
/// interval endpoints is sound. Saturating arithmetic keeps unbounded
/// (`u64::MAX`) components from wrapping.
fn region_interval(region: &Region, lat: &HashMap<BlockId, (u64, u64)>) -> (u64, u64) {
    match region {
        Region::Block(b) => lat.get(b).copied().unwrap_or((0, 0)),
        Region::Seq(rs) => rs.iter().fold((0, 0), |acc, r| {
            let (lo, hi) = region_interval(r, lat);
            (acc.0.saturating_add(lo), acc.1.saturating_add(hi))
        }),
        Region::Loop(l) => {
            let body = region_interval(&l.body, lat);
            let cond = match (l.kind, l.cond_block) {
                (LoopKind::While, Some(c)) => lat.get(&c).copied().unwrap_or((0, 0)),
                _ => (0, 0),
            };
            let trips = l.trip_hint.unwrap_or(1);
            match l.kind {
                LoopKind::While => (
                    trips
                        .saturating_mul(body.0)
                        .saturating_add((trips + 1).saturating_mul(cond.0)),
                    trips
                        .saturating_mul(body.1)
                        .saturating_add((trips + 1).saturating_mul(cond.1)),
                ),
                LoopKind::DoUntil => (trips.saturating_mul(body.0), trips.saturating_mul(body.1)),
            }
        }
        Region::If(i) => {
            let cond = lat.get(&i.cond_block).copied().unwrap_or((0, 0));
            let t = region_interval(&i.then_region, lat);
            let e = i
                .else_region
                .as_ref()
                .map(|r| region_interval(r, lat))
                .unwrap_or((0, 0));
            (
                cond.0.saturating_add(t.0.max(e.0)),
                cond.1.saturating_add(t.1.max(e.1)),
            )
        }
    }
}

/// Decides which grid points a pruned sweep may skip. `mask[i] == true`
/// means point `i` is *provably absent* from the exhaustive Pareto
/// front and need not be synthesized.
///
/// Point `p` is pruned exactly when one of:
///
/// 1. **Identity**: an earlier point has the same effective-configuration
///    fingerprint. The earlier twin produces a byte-identical
///    `(latency, area)` outcome, and `pareto_front`'s stable
///    `(latency, area)` sort keeps the earlier of two exact ties — the
///    later twin can never enter the front.
/// 2. **Strict interval dominance**: some bounded point `q` (anywhere in
///    the grid) has `q.hi < p.lo` strictly on both axes. Then
///    `q.actual < p.actual` strictly on both axes, so `p` is strictly
///    dominated and off the front.
/// 3. **Weak dominance by an earlier point**: some bounded `q` before
///    `p` in grid order has `q.hi ≤ p.lo` on both axes. Then
///    `q.actual ≤ p.actual` componentwise; wherever the sweep would
///    have admitted `p`, `q` (sorted no later, or stable-earlier on an
///    exact tie) already blocks it.
///
/// Witnesses may themselves be pruned: chasing a pruned witness's own
/// witness strictly decreases (actuals, grid index) lexicographically,
/// so a *surviving* witness always exists — pruning is closed under
/// composition and the surviving set's front equals the exhaustive
/// front exactly.
pub fn prune_mask(estimates: &[QorEstimate]) -> Vec<bool> {
    let n = estimates.len();
    let mut mask = vec![false; n];
    // Rule 1: identity with an earlier point.
    let mut seen: HashSet<u64> = HashSet::new();
    for (i, e) in estimates.iter().enumerate() {
        if !seen.insert(e.fingerprint) {
            mask[i] = true;
        }
    }
    // Rules 2 and 3: interval dominance.
    for i in 0..n {
        if mask[i] || !estimates[i].bounded {
            continue;
        }
        let p = &estimates[i];
        for (j, q) in estimates.iter().enumerate() {
            if i == j || !q.bounded {
                continue;
            }
            let strict = q.latency.1 < p.latency.0 && q.area.1 < p.area.0;
            let weak = j < i && q.latency.1 <= p.latency.0 && q.area.1 <= p.area.0;
            if strict || weak {
                mask[i] = true;
                break;
            }
        }
    }
    mask
}

/// Outcome counters of one pruned sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PruneStats {
    /// Grid points estimated (the full expanded grid).
    pub estimated: usize,
    /// Points skipped by the dominance pre-pass.
    pub pruned: usize,
    /// Points that ran full synthesis (or hit the memo cache).
    pub synthesized: usize,
    /// Fraction of synthesized, bounded points whose actual
    /// `(latency, area)` landed inside the predicted interval — a
    /// self-check that should always read `1.0`; anything lower means
    /// an estimator bound is wrong.
    pub agreement: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::GridSpec;
    use hls_sched::Priority;

    fn grid(fus: Vec<usize>, algorithms: Vec<Algorithm>) -> Vec<GridPoint> {
        GridSpec {
            fus,
            algorithms,
            controls: vec![
                ControlStyle::Hardwired(hls_ctrl::EncodingStyle::Binary),
                ControlStyle::Microcode,
            ],
        }
        .expand()
    }

    fn all_algorithms() -> Vec<Algorithm> {
        vec![
            Algorithm::Asap,
            Algorithm::Alap { slack: 1 },
            Algorithm::List(Priority::PathLength),
            Algorithm::List(Priority::Urgency),
            Algorithm::ForceDirected { slack: 0 },
            Algorithm::ForceDirected { slack: 2 },
            Algorithm::HierForce {
                slack: 1,
                window: 8,
            },
            Algorithm::FreedomBased { slack: 0 },
            Algorithm::BranchAndBound {
                node_budget: 200_000,
            },
        ]
    }

    /// The soundness contract on a real workload: every bounded
    /// estimate contains the real pipeline's outcome.
    #[test]
    fn estimates_bound_the_real_pipeline_on_sqrt_and_gcd() {
        for src in [hls_workloads::sources::SQRT, hls_workloads::sources::GCD] {
            let base = Synthesizer::new();
            let cdfg = hls_lang::compile(src).unwrap();
            let prepared = base.prepare(cdfg).unwrap();
            let est = Estimator::new(&base, &prepared);
            for point in grid(vec![1, 2, 3], all_algorithms()) {
                let e = est.estimate(&point);
                let syn = configure(&base, &point);
                let r = syn.synthesize_prepared(&prepared).unwrap();
                assert!(e.latency.0 <= e.latency.1);
                assert!(e.area.0 <= e.area.1);
                if e.bounded {
                    assert!(
                        e.contains(r.latency, r.area.total()),
                        "{point:?}: actual ({}, {}) outside {:?}/{:?}",
                        r.latency,
                        r.area.total(),
                        e.latency,
                        e.area,
                    );
                }
            }
        }
    }

    /// Control style never enters latency or area: the two control
    /// variants of a point share one effective fingerprint.
    #[test]
    fn control_styles_share_a_fingerprint() {
        let base = Synthesizer::new();
        let cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        let prepared = base.prepare(cdfg).unwrap();
        let est = Estimator::new(&base, &prepared);
        let points = grid(vec![2], vec![Algorithm::Asap]);
        assert_eq!(points.len(), 2);
        let a = est.estimate(&points[0]);
        let b = est.estimate(&points[1]);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    /// Past the saturation point, extra FUs change nothing: the
    /// fingerprints collapse. Time-constrained algorithms ignore FUs
    /// entirely.
    #[test]
    fn saturated_and_time_constrained_fingerprints_collapse() {
        let base = Synthesizer::new();
        let cdfg = hls_lang::compile(hls_workloads::sources::SQRT).unwrap();
        let prepared = base.prepare(cdfg).unwrap();
        let est = Estimator::new(&base, &prepared);
        for alg in [Algorithm::Asap, Algorithm::ForceDirected { slack: 1 }] {
            let mk = |fus| {
                est.estimate(&GridPoint {
                    fus,
                    algorithm: alg,
                    control: ControlStyle::Microcode,
                })
            };
            assert_eq!(mk(8).fingerprint, mk(16).fingerprint, "{alg:?}");
        }
        // Below saturation the fingerprints must differ.
        let one = est.estimate(&GridPoint {
            fus: 1,
            algorithm: Algorithm::Asap,
            control: ControlStyle::Microcode,
        });
        let many = est.estimate(&GridPoint {
            fus: 16,
            algorithm: Algorithm::Asap,
            control: ControlStyle::Microcode,
        });
        assert_ne!(one.fingerprint, many.fingerprint);
    }

    fn fixture(lo: u64, hi: u64, alo: f64, ahi: f64, fp: u64) -> QorEstimate {
        QorEstimate {
            latency: (lo, hi),
            fu_cost: (0.0, 0.0),
            register_cost: (0.0, 0.0),
            area: (alo, ahi),
            fingerprint: fp,
            bounded: true,
        }
    }

    #[test]
    fn prune_mask_rules() {
        // 0 dominates 2 strictly (rule 2, even though 2 precedes
        // nothing), 1 is an identity twin of 0 (rule 1), 3 is weakly
        // dominated by the earlier 0 (rule 3), 4 overlaps and survives,
        // 5 is unbounded and survives.
        let mut e5 = fixture(1, 1, 1.0, 1.0, 105);
        e5.bounded = false;
        let es = vec![
            fixture(10, 12, 100.0, 110.0, 100),
            fixture(10, 12, 100.0, 110.0, 100),
            fixture(20, 30, 200.0, 300.0, 102),
            fixture(12, 30, 110.0, 300.0, 103),
            fixture(8, 30, 90.0, 300.0, 104),
            e5,
        ];
        assert_eq!(prune_mask(&es), vec![false, true, true, true, false, false]);
    }

    #[test]
    fn unbounded_estimates_never_witness() {
        let mut q = fixture(1, 1, 1.0, 1.0, 1);
        q.bounded = false;
        let p = fixture(10, 20, 100.0, 200.0, 2);
        assert_eq!(prune_mask(&[q, p]), vec![false, false]);
    }

    #[test]
    fn mutual_weak_dominance_keeps_the_earlier_point() {
        // Identical intervals, distinct fingerprints: only the later
        // one may be pruned (rule 3 requires an earlier witness).
        let a = fixture(5, 5, 50.0, 50.0, 1);
        let b = fixture(5, 5, 50.0, 50.0, 2);
        assert_eq!(prune_mask(&[a, b]), vec![false, true]);
    }
}
