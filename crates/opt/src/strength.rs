//! Strength reduction: expensive operators become cheap ones.
//!
//! The tutorial's Fig. 2 transformations: "the multiplication times 0.5 can
//! be replaced by a right shift by one; the addition of 1 to I can be
//! replaced by an increment operation."

use hls_cdfg::{Cdfg, DataFlowGraph, Fx, OpKind, ValueDef, ValueId};

/// Applies strength reduction to every block:
///
/// * `x * 2^k` → `x << k` (or `x >> -k` for fractional powers like `0.5`)
/// * `x / 2^k` → `x >> k`
/// * `x + 1` → `inc x`, `x - 1` → `dec x`
///
/// Returns the number of rewrites.
pub fn reduce_strength(cdfg: &mut Cdfg) -> usize {
    let blocks: Vec<_> = cdfg.blocks().map(|(id, _)| id).collect();
    let mut changed = 0;
    for b in blocks {
        changed += reduce_block(&mut cdfg.block_mut(b).dfg);
    }
    changed
}

fn const_of(dfg: &DataFlowGraph, v: ValueId) -> Option<Fx> {
    match dfg.value(v).def {
        ValueDef::Op(p) if dfg.op(p).kind == OpKind::Const => dfg.op(p).constant,
        _ => None,
    }
}

fn reduce_block(dfg: &mut DataFlowGraph) -> usize {
    let mut changed = 0;
    let ids: Vec<_> = dfg.op_ids().collect();
    for id in ids {
        let op = dfg.op(id);
        let kind = op.kind;
        let operands = op.operands.clone();
        let label = op.label.clone();
        let rewrite = match kind {
            OpKind::Mul => {
                let (x, k) = match (const_of(dfg, operands[0]), const_of(dfg, operands[1])) {
                    (None, Some(c)) => (operands[0], c.log2_exact()),
                    (Some(c), None) => (operands[1], c.log2_exact()),
                    _ => (operands[0], None),
                };
                k.filter(|k| *k != 0).map(|k| shift_for(x, k))
            }
            OpKind::Div => const_of(dfg, operands[1])
                .and_then(Fx::log2_exact)
                .filter(|k| *k != 0)
                .map(|k| shift_for(operands[0], -k)),
            OpKind::Add => one_operand(dfg, &operands).map(|x| (OpKind::Inc, x, 0)),
            OpKind::Sub => const_of(dfg, operands[1])
                .filter(|c| *c == Fx::ONE)
                .map(|_| (OpKind::Dec, operands[0], 0)),
            _ => None,
        };
        let Some((new_kind, x, amount)) = rewrite else {
            continue;
        };
        let new_id = match new_kind {
            OpKind::Shl | OpKind::Shr => {
                let amt = dfg.add_const_value(Fx::from_i64(amount as i64));
                dfg.add_op(new_kind, vec![x, amt])
            }
            _ => dfg.add_op(new_kind, vec![x]),
        };
        if !label.is_empty() {
            dfg.op_mut(new_id).label = label;
        }
        // Arithmetic ops always carry a result; if that ever fails, drop
        // the speculative replacement instead of panicking mid-pass.
        let (Some(old_res), Some(new_res)) = (dfg.result(id), dfg.result(new_id)) else {
            dfg.kill_op(new_id);
            continue;
        };
        let width = dfg.value(old_res).width;
        let name = dfg.value(old_res).name.clone();
        dfg.value_mut(new_res).width = width;
        dfg.value_mut(new_res).name = name;
        dfg.replace_value_uses(old_res, new_res);
        dfg.kill_op(id);
        changed += 1;
    }
    changed
}

/// `x * 2^k`: positive `k` shifts left, negative shifts right.
fn shift_for(x: ValueId, k: i32) -> (OpKind, ValueId, u32) {
    if k > 0 {
        (OpKind::Shl, x, k as u32)
    } else {
        (OpKind::Shr, x, (-k) as u32)
    }
}

/// For `Add`, returns the non-constant operand when the other is the
/// constant one.
fn one_operand(dfg: &DataFlowGraph, operands: &[ValueId]) -> Option<ValueId> {
    match (const_of(dfg, operands[0]), const_of(dfg, operands[1])) {
        (None, Some(c)) if c == Fx::ONE => Some(operands[0]),
        (Some(c), None) if c == Fx::ONE => Some(operands[1]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_cdfg::Region;

    fn wrap(dfg: DataFlowGraph) -> (Cdfg, hls_cdfg::BlockId) {
        let mut cdfg = Cdfg::new("t");
        let b = cdfg.add_block("b", dfg);
        cdfg.set_body(Region::Block(b));
        (cdfg, b)
    }

    fn kinds(cdfg: &Cdfg, b: hls_cdfg::BlockId) -> Vec<OpKind> {
        cdfg.block(b)
            .dfg
            .op_ids()
            .map(|i| cdfg.block(b).dfg.op(i).kind)
            .filter(|k| *k != OpKind::Const)
            .collect()
    }

    #[test]
    fn mul_by_half_becomes_shr_one() {
        // The exact Fig. 2 rewrite.
        let mut dfg = DataFlowGraph::new();
        let y = dfg.add_input("y", 32);
        let half = dfg.add_const_value(Fx::from_f64(0.5));
        let m = dfg.add_op(OpKind::Mul, vec![half, y]);
        dfg.set_output("y", dfg.result(m).unwrap());
        let (mut cdfg, b) = wrap(dfg);
        assert_eq!(reduce_strength(&mut cdfg), 1);
        assert_eq!(kinds(&cdfg, b), vec![OpKind::Shr]);
        cdfg.validate().unwrap();
    }

    #[test]
    fn add_one_becomes_inc() {
        let mut dfg = DataFlowGraph::new();
        let i = dfg.add_input("i", 4);
        let one = dfg.add_const_value(Fx::ONE);
        let a = dfg.add_op(OpKind::Add, vec![i, one]);
        let r = dfg.result(a).unwrap();
        dfg.value_mut(r).width = 4; // lowering narrows assigned values
        dfg.set_output("i", r);
        let (mut cdfg, b) = wrap(dfg);
        assert_eq!(reduce_strength(&mut cdfg), 1);
        assert_eq!(kinds(&cdfg, b), vec![OpKind::Inc]);
        // Width of the assigned value is preserved.
        let dfg = &cdfg.block(b).dfg;
        assert_eq!(dfg.value(dfg.outputs()[0].1).width, 4);
    }

    #[test]
    fn mul_by_eight_becomes_shl_three() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let eight = dfg.add_const_value(Fx::from_i64(8));
        let m = dfg.add_op(OpKind::Mul, vec![x, eight]);
        dfg.set_output("y", dfg.result(m).unwrap());
        let (mut cdfg, b) = wrap(dfg);
        assert_eq!(reduce_strength(&mut cdfg), 1);
        assert_eq!(kinds(&cdfg, b), vec![OpKind::Shl]);
    }

    #[test]
    fn div_by_four_becomes_shr_two() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let four = dfg.add_const_value(Fx::from_i64(4));
        let d = dfg.add_op(OpKind::Div, vec![x, four]);
        dfg.set_output("y", dfg.result(d).unwrap());
        let (mut cdfg, b) = wrap(dfg);
        assert_eq!(reduce_strength(&mut cdfg), 1);
        assert_eq!(kinds(&cdfg, b), vec![OpKind::Shr]);
    }

    #[test]
    fn mul_by_three_untouched() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let three = dfg.add_const_value(Fx::from_i64(3));
        let m = dfg.add_op(OpKind::Mul, vec![x, three]);
        dfg.set_output("y", dfg.result(m).unwrap());
        let (mut cdfg, _) = wrap(dfg);
        assert_eq!(reduce_strength(&mut cdfg), 0);
    }

    #[test]
    fn sub_one_becomes_dec() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let one = dfg.add_const_value(Fx::ONE);
        let s = dfg.add_op(OpKind::Sub, vec![x, one]);
        dfg.set_output("y", dfg.result(s).unwrap());
        let (mut cdfg, b) = wrap(dfg);
        assert_eq!(reduce_strength(&mut cdfg), 1);
        assert_eq!(kinds(&cdfg, b), vec![OpKind::Dec]);
    }

    #[test]
    fn one_minus_x_not_dec() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let one = dfg.add_const_value(Fx::ONE);
        let s = dfg.add_op(OpKind::Sub, vec![one, x]);
        dfg.set_output("y", dfg.result(s).unwrap());
        let (mut cdfg, _) = wrap(dfg);
        assert_eq!(reduce_strength(&mut cdfg), 0);
    }
}
