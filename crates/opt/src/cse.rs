//! Common-subexpression elimination by value numbering.

use std::collections::HashMap;

use hls_cdfg::{Cdfg, DataFlowGraph, OpKind, ValueId};

/// Key identifying an expression: kind, (normalized) operands, constant
/// payload, memory name.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct ExprKey {
    kind: OpKind,
    operands: Vec<ValueId>,
    constant: Option<i64>,
    memory: Option<String>,
}

/// Merges operations computing the same expression within each block.
///
/// Commutative operands are sorted first, so `a + b` and `b + a` merge;
/// comparisons merge with their operand-swapped mirror (`a < b` ≡ `b > a`).
/// `Copy`, `Load` and `Store` are never merged (`Copy` is a register
/// transfer; memory may change between accesses).
///
/// Returns the number of operations removed.
pub fn eliminate_common_subexpressions(cdfg: &mut Cdfg) -> usize {
    let blocks: Vec<_> = cdfg.blocks().map(|(id, _)| id).collect();
    let mut removed = 0;
    for b in blocks {
        removed += cse_block(&mut cdfg.block_mut(b).dfg);
    }
    removed
}

fn cse_block(dfg: &mut DataFlowGraph) -> usize {
    let mut removed = 0;
    let order = match dfg.topological_order() {
        Ok(o) => o,
        Err(_) => return 0,
    };
    let mut seen: HashMap<ExprKey, ValueId> = HashMap::new();
    for id in order {
        let op = dfg.op(id);
        if op.dead || matches!(op.kind, OpKind::Copy | OpKind::Load | OpKind::Store) {
            continue;
        }
        let Some(result) = op.result else { continue };
        let mut kind = op.kind;
        let mut operands = op.operands.clone();
        if kind.is_commutative() {
            operands.sort();
        } else if let Some(sw) = kind.swapped_comparison() {
            // Canonicalize `a cmp b` so the smaller value id comes first.
            if operands.len() == 2 && operands[1] < operands[0] {
                operands.swap(0, 1);
                kind = sw;
            }
        }
        let key = ExprKey {
            kind,
            operands,
            constant: op.constant.map(|c| c.raw()),
            memory: op.memory.clone(),
        };
        match seen.get(&key) {
            Some(&existing) => {
                dfg.replace_value_uses(result, existing);
                dfg.kill_op(id);
                removed += 1;
            }
            None => {
                seen.insert(key, result);
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_cdfg::{Fx, Region};

    fn wrap(dfg: DataFlowGraph) -> (Cdfg, hls_cdfg::BlockId) {
        let mut cdfg = Cdfg::new("t");
        let b = cdfg.add_block("b", dfg);
        cdfg.set_body(Region::Block(b));
        (cdfg, b)
    }

    #[test]
    fn merges_identical_adds() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let y = dfg.add_input("y", 32);
        let a1 = dfg.add_op(OpKind::Add, vec![x, y]);
        let a2 = dfg.add_op(OpKind::Add, vec![x, y]);
        let m = dfg.add_op(
            OpKind::Mul,
            vec![dfg.result(a1).unwrap(), dfg.result(a2).unwrap()],
        );
        dfg.set_output("z", dfg.result(m).unwrap());
        let (mut cdfg, b) = wrap(dfg);
        assert_eq!(eliminate_common_subexpressions(&mut cdfg), 1);
        let dfg = &cdfg.block(b).dfg;
        assert_eq!(dfg.live_op_count(), 2);
        dfg.validate().unwrap();
    }

    #[test]
    fn commutative_merge() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let y = dfg.add_input("y", 32);
        let a1 = dfg.add_op(OpKind::Add, vec![x, y]);
        let a2 = dfg.add_op(OpKind::Add, vec![y, x]);
        dfg.set_output("p", dfg.result(a1).unwrap());
        dfg.set_output("q", dfg.result(a2).unwrap());
        let (mut cdfg, _) = wrap(dfg);
        assert_eq!(eliminate_common_subexpressions(&mut cdfg), 1);
    }

    #[test]
    fn swapped_comparison_merges() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let y = dfg.add_input("y", 32);
        let lt = dfg.add_op(OpKind::Lt, vec![x, y]);
        let gt = dfg.add_op(OpKind::Gt, vec![y, x]);
        dfg.set_output("p", dfg.result(lt).unwrap());
        dfg.set_output("q", dfg.result(gt).unwrap());
        let (mut cdfg, _) = wrap(dfg);
        assert_eq!(eliminate_common_subexpressions(&mut cdfg), 1);
    }

    #[test]
    fn non_commutative_not_merged() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let y = dfg.add_input("y", 32);
        let s1 = dfg.add_op(OpKind::Sub, vec![x, y]);
        let s2 = dfg.add_op(OpKind::Sub, vec![y, x]);
        dfg.set_output("p", dfg.result(s1).unwrap());
        dfg.set_output("q", dfg.result(s2).unwrap());
        let (mut cdfg, _) = wrap(dfg);
        assert_eq!(eliminate_common_subexpressions(&mut cdfg), 0);
    }

    #[test]
    fn duplicate_constants_merge() {
        let mut dfg = DataFlowGraph::new();
        let c1 = dfg.add_const_value(Fx::from_f64(0.5));
        let c2 = dfg.add_const_value(Fx::from_f64(0.5));
        let x = dfg.add_input("x", 32);
        let m1 = dfg.add_op(OpKind::Mul, vec![x, c1]);
        let m2 = dfg.add_op(OpKind::Mul, vec![x, c2]);
        dfg.set_output("p", dfg.result(m1).unwrap());
        dfg.set_output("q", dfg.result(m2).unwrap());
        let (mut cdfg, b) = wrap(dfg);
        // One pass merges the constants, which rewrites the second multiply's
        // operands in place, so the multiplies merge in the same pass.
        let n = eliminate_common_subexpressions(&mut cdfg);
        assert_eq!(n, 2);
        assert_eq!(cdfg.block(b).dfg.live_op_count(), 2);
    }

    #[test]
    fn copies_never_merge() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let c1 = dfg.add_op(OpKind::Copy, vec![x]);
        let c2 = dfg.add_op(OpKind::Copy, vec![x]);
        dfg.set_output("p", dfg.result(c1).unwrap());
        dfg.set_output("q", dfg.result(c2).unwrap());
        let (mut cdfg, _) = wrap(dfg);
        assert_eq!(eliminate_common_subexpressions(&mut cdfg), 0);
    }
}
