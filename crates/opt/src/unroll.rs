//! Loop unrolling.
//!
//! "Loop unrolling can also be done in this case since the number of
//! iterations is fixed and small" (tutorial §2). Full unrolling merges all
//! iterations of a counted loop into a single basic block, letting the
//! scheduler overlap operations from different iterations.

use std::collections::HashMap;

use hls_cdfg::{Cdfg, DataFlowGraph, OpId, Region, ValueId};

/// Maximum total operations an unrolled block may contain; bigger loops are
/// left rolled to avoid code explosion.
pub const UNROLL_OP_BUDGET: usize = 4096;

/// Fully unrolls every counted loop whose body is a single block and whose
/// unrolled size stays within [`UNROLL_OP_BUDGET`]. Returns the number of
/// loops unrolled.
pub fn unroll_counted_loops(cdfg: &mut Cdfg) -> usize {
    let body = cdfg.body().clone();
    let mut count = 0;
    let new_body = unroll_region(cdfg, body, &mut count);
    cdfg.set_body(new_body);
    count
}

fn unroll_region(cdfg: &mut Cdfg, region: Region, count: &mut usize) -> Region {
    match region {
        Region::Block(b) => Region::Block(b),
        Region::Seq(rs) => Region::Seq(
            rs.into_iter()
                .map(|r| unroll_region(cdfg, r, count))
                .collect(),
        ),
        Region::If(mut i) => {
            i.then_region = Box::new(unroll_region(cdfg, *i.then_region, count));
            i.else_region = i
                .else_region
                .map(|e| Box::new(unroll_region(cdfg, *e, count)));
            Region::If(i)
        }
        Region::Loop(mut l) => {
            let inner = unroll_region(cdfg, *l.body, count);
            l.body = Box::new(inner);
            let Some(n) = l.trip_hint else {
                return Region::Loop(l);
            };
            let Region::Block(b) = *l.body else {
                return Region::Loop(l);
            };
            let body_ops = cdfg.block(b).dfg.live_op_count();
            if n == 0 || body_ops.saturating_mul(n as usize) > UNROLL_OP_BUDGET {
                return Region::Loop(l);
            }
            let Some(merged) = merge_iterations(&cdfg.block(b).dfg, n as usize, &l.exit_var) else {
                return Region::Loop(l);
            };
            let name = format!("{}_x{}", cdfg.block(b).name, n);
            let nb = cdfg.add_block(&name, merged);
            *count += 1;
            Region::Block(nb)
        }
    }
}

/// Builds one DFG equivalent to `n` sequential executions of `body`, or
/// `None` when the body is not schedulable (cyclic) and must stay rolled.
///
/// Live-outs of iteration *k* feed the matching live-ins of iteration
/// *k+1*; the loop-exit computation is dropped (the trip count is static).
fn merge_iterations(body: &DataFlowGraph, n: usize, exit_var: &str) -> Option<DataFlowGraph> {
    let order = body.topological_order().ok()?;
    let mut out = DataFlowGraph::new();
    // Current value of each variable in the merged block.
    let mut env: HashMap<String, ValueId> = HashMap::new();
    for _iter in 0..n {
        let mut vmap: HashMap<ValueId, ValueId> = HashMap::new();
        for &iv in body.inputs() {
            let v = body.value(iv);
            let merged_v = *env
                .entry(v.name.clone())
                .or_insert_with(|| out.add_input(&v.name, v.width));
            vmap.insert(iv, merged_v);
        }
        for &id in &order {
            let op = body.op(id);
            let operands: Vec<ValueId> = op.operands.iter().map(|v| vmap[v]).collect();
            let nid: OpId = out.add_op(op.kind, operands);
            out.op_mut(nid).constant = op.constant;
            out.op_mut(nid).memory = op.memory.clone();
            out.op_mut(nid).label = op.label.clone();
            if let (Some(old_r), Some(new_r)) = (op.result, out.result(nid)) {
                out.value_mut(new_r).width = body.value(old_r).width;
                out.value_mut(new_r).name = body.value(old_r).name.clone();
                vmap.insert(old_r, new_r);
            }
        }
        for (name, v) in body.outputs() {
            if name != exit_var {
                env.insert(name.clone(), vmap[v]);
            }
        }
    }
    for (name, v) in env {
        out.set_output(&name, v);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_cdfg::OpKind;

    const SQRT: &str = "
        program sqrt;
        input X; output Y; var I : int<4>;
        begin
          Y := 0.222222 + 0.888889 * X;
          I := 0;
          do
            Y := 0.5 * (Y + X / Y);
            I := I + 1;
          until I > 3;
        end.
    ";

    #[test]
    fn sqrt_loop_unrolls_four_times() {
        let mut cdfg = hls_lang::compile(SQRT).unwrap();
        assert_eq!(unroll_counted_loops(&mut cdfg), 1);
        cdfg.validate().unwrap();
        let blocks = cdfg.block_order();
        assert_eq!(blocks.len(), 2, "entry + unrolled body");
        let merged = &cdfg.block(blocks[1]).dfg;
        // 4 iterations x (div, add, mul, add(I+1)) step ops, plus 4 copies
        // of consts and 4 exit-test Gt ops (dead until DCE).
        let divs = merged
            .op_ids()
            .filter(|&i| merged.op(i).kind == OpKind::Div)
            .count();
        assert_eq!(divs, 4);
        // Iterations chain: Y of iter k feeds iter k+1, so only one X and
        // one Y input exist.
        let names: Vec<&str> = merged
            .inputs()
            .iter()
            .map(|&v| merged.value(v).name.as_str())
            .collect();
        assert!(names.contains(&"X") && names.contains(&"Y"));
        assert_eq!(names.len(), 3, "X, Y, I");
    }

    #[test]
    fn exit_tests_become_dead_after_unroll() {
        let mut cdfg = hls_lang::compile(SQRT).unwrap();
        unroll_counted_loops(&mut cdfg);
        let removed = crate::dce::eliminate_dead_code(&mut cdfg);
        // The four Gt tests and their bound constants die.
        assert!(removed >= 4, "removed {removed}");
        cdfg.validate().unwrap();
    }

    #[test]
    fn unknown_trip_count_left_rolled() {
        let mut cdfg = hls_lang::compile(
            "program t; input x; output y; var d : bit; begin
               y := x;
               do
                 y := y >> 1;
                 d := y < 1;
               until d = 1;
             end",
        )
        .unwrap();
        assert_eq!(unroll_counted_loops(&mut cdfg), 0);
        assert!(matches!(cdfg.body(), Region::Seq(_)));
    }

    #[test]
    fn unrolled_critical_path_shorter_than_serial() {
        use hls_cdfg::analysis;
        let mut cdfg = hls_lang::compile(SQRT).unwrap();
        unroll_counted_loops(&mut cdfg);
        crate::dce::eliminate_dead_code(&mut cdfg);
        let merged = cdfg.block_order()[1];
        let (_, cp) =
            analysis::asap_levels(&cdfg.block(merged).dfg, &analysis::no_free_ops).unwrap();
        // Serial loop: 4 iterations x 5 steps = 20. Unrolled critical path
        // (div+add+mul chained through Y, consts add one level) is shorter —
        // the I-increments run in parallel with the Y chain.
        assert!(cp < 20, "cp = {cp}");
    }
}
