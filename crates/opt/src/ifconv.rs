//! If-conversion: turns small two-way conditionals into straight-line
//! dataflow with `Mux` selection.
//!
//! The tutorial lists "trading off complexity between the control and the
//! data paths" among the open system-level issues (§4). This pass moves
//! work from the controller (branch states) into the datapath (both sides
//! execute, a mux picks): fewer FSM states and no branch flags, at the
//! price of speculative execution of both arms.
//!
//! Safety: a conditional is converted only when both arms are single
//! straight-line blocks containing neither memory operations (speculative
//! stores would be wrong) nor division (a speculative divide-by-zero
//! would trap where the program would not).

use std::collections::HashMap;

use hls_cdfg::{Cdfg, DataFlowGraph, OpId, OpKind, Region, ValueId};

/// Converts every eligible `if` into mux dataflow. Returns the number of
/// conditionals converted.
pub fn convert_ifs(cdfg: &mut Cdfg) -> usize {
    let body = cdfg.body().clone();
    let mut count = 0;
    let new_body = walk(cdfg, body, &mut count);
    cdfg.set_body(new_body);
    count
}

fn walk(cdfg: &mut Cdfg, region: Region, count: &mut usize) -> Region {
    match region {
        Region::Block(b) => Region::Block(b),
        Region::Seq(rs) => Region::Seq(rs.into_iter().map(|r| walk(cdfg, r, count)).collect()),
        Region::Loop(mut l) => {
            l.body = Box::new(walk(cdfg, *l.body, count));
            Region::Loop(l)
        }
        Region::If(mut i) => {
            i.then_region = Box::new(walk(cdfg, *i.then_region, count));
            i.else_region = i.else_region.map(|e| Box::new(walk(cdfg, *e, count)));
            // Eligible shape: both arms single blocks (or absent).
            let then_block = match &*i.then_region {
                Region::Block(b) => *b,
                _ => return Region::If(i),
            };
            let else_block = match i.else_region.as_deref() {
                None => None,
                Some(Region::Block(b)) => Some(*b),
                Some(_) => return Region::If(i),
            };
            let mut blocks = vec![i.cond_block, then_block];
            blocks.extend(else_block);
            if !blocks.iter().all(|&b| speculation_safe(&cdfg.block(b).dfg)) {
                return Region::If(i);
            }
            let Some(merged) = fuse(cdfg, i.cond_block, &i.cond_var, then_block, else_block) else {
                return Region::If(i);
            };
            let name = format!("{}_ifconv", cdfg.block(i.cond_block).name);
            let nb = cdfg.add_block(&name, merged);
            *count += 1;
            Region::Block(nb)
        }
    }
}

/// `true` when every op in the block may execute speculatively.
fn speculation_safe(dfg: &DataFlowGraph) -> bool {
    dfg.op_ids().all(|op| {
        !matches!(
            dfg.op(op).kind,
            OpKind::Load | OpKind::Store | OpKind::Div | OpKind::Mod
        )
    })
}

/// Splices `src`'s ops into `out`, resolving block inputs through `env`
/// (creating fresh inputs on first use). Returns the live-out map, or
/// `None` when the block is malformed (cyclic, dangling operand) and the
/// conversion must be abandoned.
fn splice(
    src: &DataFlowGraph,
    out: &mut DataFlowGraph,
    env: &mut HashMap<String, ValueId>,
) -> Option<HashMap<String, ValueId>> {
    let mut vmap: HashMap<ValueId, ValueId> = HashMap::new();
    for &iv in src.inputs() {
        let v = src.value(iv);
        let merged = *env
            .entry(v.name.clone())
            .or_insert_with(|| out.add_input(&v.name, v.width));
        vmap.insert(iv, merged);
    }
    for id in src.topological_order().ok()? {
        let op = src.op(id);
        let operands: Vec<ValueId> = op
            .operands
            .iter()
            .map(|v| vmap.get(v).copied())
            .collect::<Option<_>>()?;
        let nid: OpId = out.add_op(op.kind, operands);
        out.op_mut(nid).constant = op.constant;
        out.op_mut(nid).memory = op.memory.clone();
        out.op_mut(nid).label = op.label.clone();
        if let (Some(old), Some(new)) = (op.result, out.result(nid)) {
            out.value_mut(new).width = src.value(old).width;
            out.value_mut(new).name = src.value(old).name.clone();
            vmap.insert(old, new);
        }
    }
    src.outputs()
        .iter()
        .map(|(n, v)| vmap.get(v).map(|&m| (n.clone(), m)))
        .collect()
}

fn fuse(
    cdfg: &Cdfg,
    cond_block: hls_cdfg::BlockId,
    cond_var: &str,
    then_block: hls_cdfg::BlockId,
    else_block: Option<hls_cdfg::BlockId>,
) -> Option<DataFlowGraph> {
    let mut out = DataFlowGraph::new();
    let mut env: HashMap<String, ValueId> = HashMap::new();
    let cond_outs = splice(&cdfg.block(cond_block).dfg, &mut out, &mut env)?;
    let cv = *cond_outs.get(cond_var)?;
    // Both arms read the post-condition environment; their writes stay
    // local until muxed.
    let then_outs = splice(&cdfg.block(then_block).dfg, &mut out, &mut env.clone())?;
    let else_outs = match else_block {
        Some(b) => splice(&cdfg.block(b).dfg, &mut out, &mut env.clone())?,
        None => HashMap::new(),
    };
    let mut vars: Vec<&String> = then_outs.keys().chain(else_outs.keys()).collect();
    vars.sort();
    vars.dedup();
    for var in vars {
        let base = |out: &mut DataFlowGraph, env: &mut HashMap<String, ValueId>| {
            *env.entry(var.clone())
                .or_insert_with(|| out.add_input(var, 32))
        };
        let t = match then_outs.get(var) {
            Some(&v) => v,
            None => base(&mut out, &mut env),
        };
        let e = match else_outs.get(var) {
            Some(&v) => v,
            None => base(&mut out, &mut env),
        };
        let mux = out.add_op(OpKind::Mux, vec![cv, t, e]);
        let mv = out.result(mux)?;
        let width = out.value(t).width.max(out.value(e).width);
        out.value_mut(mv).width = width;
        out.value_mut(mv).name = var.clone();
        out.set_output(var, mv);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    const ABSDIFF: &str = "
        program absdiff; input a, b; output d;
        begin
          if a > b then d := a - b; else d := b - a; end;
        end.
    ";

    #[test]
    fn converts_simple_if_to_mux() {
        let mut cdfg = hls_lang::compile(ABSDIFF).unwrap();
        assert!(matches!(cdfg.body(), Region::If(_)));
        assert_eq!(convert_ifs(&mut cdfg), 1);
        cdfg.validate().unwrap();
        assert!(matches!(cdfg.body(), Region::Block(_)));
        let b = cdfg.block_order()[0];
        let dfg = &cdfg.block(b).dfg;
        assert_eq!(
            dfg.op_ids()
                .filter(|&i| dfg.op(i).kind == OpKind::Mux)
                .count(),
            1
        );
    }

    #[test]
    fn converted_if_preserves_behavior() {
        let cdfg = hls_lang::compile(ABSDIFF).unwrap();
        let mut conv = cdfg.clone();
        convert_ifs(&mut conv);
        for (a, b) in [(5.0, 3.0), (3.0, 5.0), (4.0, 4.0), (-2.0, 7.0)] {
            let inputs = BTreeMap::from([
                ("a".to_string(), hls_cdfg::Fx::from_f64(a)),
                ("b".to_string(), hls_cdfg::Fx::from_f64(b)),
            ]);
            assert_eq!(
                hls_sim::interpret(&cdfg, &inputs).unwrap().outputs,
                hls_sim::interpret(&conv, &inputs).unwrap().outputs,
                "a={a} b={b}"
            );
        }
    }

    #[test]
    fn gcd_if_converts_inside_the_loop() {
        let mut cdfg = hls_lang::compile(hls_workloads::sources::GCD).unwrap();
        assert_eq!(convert_ifs(&mut cdfg), 1);
        cdfg.validate().unwrap();
        for (a, b, g) in [(12i64, 18, 6), (35, 14, 7), (9, 9, 9)] {
            let inputs = BTreeMap::from([
                ("A".to_string(), hls_cdfg::Fx::from_i64(a)),
                ("B".to_string(), hls_cdfg::Fx::from_i64(b)),
            ]);
            let r = hls_sim::interpret(&cdfg, &inputs).unwrap();
            assert_eq!(r.outputs["G"], hls_cdfg::Fx::from_i64(g), "gcd({a},{b})");
        }
    }

    #[test]
    fn division_blocks_conversion() {
        let mut cdfg = hls_lang::compile(
            "program t; input a, b; output d;
             begin
               if b > 0 then d := a / b; else d := 0 - a; end;
             end.",
        )
        .unwrap();
        assert_eq!(convert_ifs(&mut cdfg), 0, "speculative division is unsafe");
        assert!(matches!(cdfg.body(), Region::If(_)));
    }

    #[test]
    fn memory_ops_block_conversion() {
        let mut cdfg = hls_lang::compile(
            "program t; input a, i; output d; array M[8];
             begin
               if a > 0 then M[i] := a; else d := 0; end;
               d := M[0];
             end.",
        )
        .unwrap();
        assert_eq!(convert_ifs(&mut cdfg), 0, "speculative stores are unsafe");
    }

    #[test]
    fn missing_else_uses_passthrough() {
        let mut cdfg = hls_lang::compile(
            "program t; input a; output d;
             begin
               d := a;
               if a > 2 then d := a + 1; end;
             end.",
        )
        .unwrap();
        assert_eq!(convert_ifs(&mut cdfg), 1);
        cdfg.validate().unwrap();
        for a in [1.0, 5.0] {
            let inputs = BTreeMap::from([("a".to_string(), hls_cdfg::Fx::from_f64(a))]);
            let r = hls_sim::interpret(&cdfg, &inputs).unwrap();
            let expected = if a > 2.0 { a + 1.0 } else { a };
            assert_eq!(r.outputs["d"].to_f64(), expected, "a={a}");
        }
    }
}
