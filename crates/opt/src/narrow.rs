//! Induction-variable narrowing and loop-exit-test rewriting.
//!
//! The tutorial's Fig. 2: "the loop-ending criterion can be changed to
//! `I = 0` using a two-bit variable for `I`". A counter that runs `0..=n-1`
//! with `n` a power of two wraps to zero in a `log2(n)`-bit register exactly
//! when the original `I > n-1` test would have fired, so the wide magnitude
//! comparator becomes a narrow zero-equality test.

use hls_cdfg::{Cdfg, DataFlowGraph, Fx, LoopKind, OpKind, Region, ValueDef};

/// Applies the counter-narrowing rewrite to every eligible `do..until`
/// loop. Returns the number of loops rewritten.
///
/// Eligibility: known trip count `n`, `n` a power of two, exit test
/// `iv > n-1` where `iv` is produced by an increment (`Inc` or `x + 1`)
/// and stored to a named variable.
pub fn narrow_loop_counters(cdfg: &mut Cdfg) -> usize {
    let mut rewrites = Vec::new();
    collect(cdfg, cdfg.body(), &mut rewrites);
    // The rewrite changes the counter's final value (it wraps to zero), so
    // it must not touch program outputs.
    rewrites.retain(|rw| !cdfg.outputs().contains(&rw.iv_name));
    let count = rewrites.len();
    for rw in rewrites {
        apply(cdfg, &rw);
    }
    count
}

struct Rewrite {
    block: hls_cdfg::BlockId,
    exit_var: String,
    iv_name: String,
    width: u8,
}

fn collect(cdfg: &Cdfg, region: &Region, out: &mut Vec<Rewrite>) {
    match region {
        Region::Block(_) => {}
        Region::Seq(rs) => {
            for r in rs {
                collect(cdfg, r, out);
            }
        }
        Region::If(i) => {
            collect(cdfg, &i.then_region, out);
            if let Some(e) = &i.else_region {
                collect(cdfg, e, out);
            }
        }
        Region::Loop(l) => {
            collect(cdfg, &l.body, out);
            let Some(n) = l.trip_hint else { return };
            if l.kind != LoopKind::DoUntil || !n.is_power_of_two() || n < 2 {
                return;
            }
            for b in l.body.blocks() {
                if let Some(rw) = eligible(cdfg, b, &l.exit_var, n) {
                    out.push(rw);
                    return;
                }
            }
        }
    }
}

/// Checks whether `block` computes `exit_var := iv > n-1` with `iv` an
/// incremented counter variable.
fn eligible(cdfg: &Cdfg, block: hls_cdfg::BlockId, exit_var: &str, n: u64) -> Option<Rewrite> {
    let dfg = &cdfg.block(block).dfg;
    let (_, exit_val) = dfg.outputs().iter().find(|(name, _)| name == exit_var)?;
    let ValueDef::Op(test) = dfg.value(*exit_val).def else {
        return None;
    };
    let test_op = dfg.op(test);
    if test_op.kind != OpKind::Gt {
        return None;
    }
    let bound = const_of(dfg, test_op.operands[1])?;
    if !bound.is_integer() || bound.to_i64() != (n as i64) - 1 {
        return None;
    }
    let iv_val = test_op.operands[0];
    let ValueDef::Op(upd) = dfg.value(iv_val).def else {
        return None;
    };
    let upd_op = dfg.op(upd);
    let is_increment = upd_op.kind == OpKind::Inc
        || (upd_op.kind == OpKind::Add
            && upd_op
                .operands
                .iter()
                .any(|&o| const_of(dfg, o) == Some(Fx::ONE)));
    if !is_increment {
        return None;
    }
    // The incremented value must be stored back to a named variable.
    let iv_name = dfg
        .outputs()
        .iter()
        .find(|(_, v)| *v == iv_val)
        .map(|(name, _)| name.clone())?;
    let width = (64 - (n - 1).leading_zeros()) as u8; // log2(n) for powers of two
    Some(Rewrite {
        block,
        exit_var: exit_var.to_string(),
        iv_name,
        width,
    })
}

fn const_of(dfg: &DataFlowGraph, v: hls_cdfg::ValueId) -> Option<Fx> {
    match dfg.value(v).def {
        ValueDef::Op(p) if dfg.op(p).kind == OpKind::Const => dfg.op(p).constant,
        _ => None,
    }
}

fn apply(cdfg: &mut Cdfg, rw: &Rewrite) {
    // 1. Replace the `iv > n-1` test with `iv = 0` in the exit block.
    // The eligibility check already located the exit output and its
    // defining comparison; if either has vanished the rewrite is stale,
    // so leave the loop untouched rather than panic.
    {
        let dfg = &mut cdfg.block_mut(rw.block).dfg;
        let Some(exit_val) = dfg
            .outputs()
            .iter()
            .find(|(name, _)| *name == rw.exit_var)
            .map(|(_, v)| *v)
        else {
            return;
        };
        let ValueDef::Op(test) = dfg.value(exit_val).def else {
            return;
        };
        let Some(&iv_val) = dfg.op(test).operands.first() else {
            return;
        };
        let zero = dfg.add_const_value(Fx::ZERO);
        let eq = dfg.add_op(OpKind::Eq, vec![iv_val, zero]);
        let Some(new_exit) = dfg.result(eq) else {
            return;
        };
        dfg.replace_value_uses(exit_val, new_exit);
        dfg.kill_op(test);
    }
    // 2. Narrow every value carrying the induction variable, in all blocks.
    let blocks: Vec<_> = cdfg.blocks().map(|(id, _)| id).collect();
    for b in blocks {
        let dfg = &mut cdfg.block_mut(b).dfg;
        let mut targets: Vec<hls_cdfg::ValueId> = Vec::new();
        for &iv in dfg.inputs() {
            if dfg.value(iv).name == rw.iv_name {
                targets.push(iv);
            }
        }
        for (name, v) in dfg.outputs() {
            if *name == rw.iv_name {
                targets.push(*v);
            }
        }
        for v in targets {
            dfg.value_mut(v).width = rw.width;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strength::reduce_strength;

    const SQRT: &str = "
        program sqrt;
        input X; output Y; var I : int<4>;
        begin
          Y := 0.222222 + 0.888889 * X;
          I := 0;
          do
            Y := 0.5 * (Y + X / Y);
            I := I + 1;
          until I > 3;
        end.
    ";

    #[test]
    fn sqrt_counter_narrows_to_two_bits() {
        let mut cdfg = hls_lang::compile(SQRT).unwrap();
        reduce_strength(&mut cdfg);
        assert_eq!(narrow_loop_counters(&mut cdfg), 1);
        cdfg.validate().unwrap();
        // Exit test is now `I = 0`.
        let body = cdfg.block_order()[1];
        let dfg = &cdfg.block(body).dfg;
        let has_eq = dfg.op_ids().any(|id| dfg.op(id).kind == OpKind::Eq);
        let has_gt = dfg.op_ids().any(|id| dfg.op(id).kind == OpKind::Gt);
        assert!(has_eq && !has_gt);
        // The counter is 2 bits wide everywhere it crosses a block boundary.
        let (_, iv) = dfg.outputs().iter().find(|(n, _)| n == "I").unwrap();
        assert_eq!(dfg.value(*iv).width, 2);
        let iv_in = dfg
            .inputs()
            .iter()
            .find(|&&v| dfg.value(v).name == "I")
            .unwrap();
        assert_eq!(dfg.value(*iv_in).width, 2);
    }

    #[test]
    fn works_without_strength_reduction() {
        // `I := I + 1` (plain Add) is also recognized.
        let mut cdfg = hls_lang::compile(SQRT).unwrap();
        assert_eq!(narrow_loop_counters(&mut cdfg), 1);
    }

    #[test]
    fn non_power_of_two_trip_not_rewritten() {
        let mut cdfg = hls_lang::compile(
            "program t; input x; output y; var i : int<4>; begin
               y := x; i := 0;
               do y := y + x; i := i + 1; until i > 4;
             end",
        )
        .unwrap();
        // trip = 5, not a power of two.
        assert_eq!(narrow_loop_counters(&mut cdfg), 0);
    }

    #[test]
    fn simulated_trip_count_is_preserved() {
        // Narrowed counter in a 2-bit register: 0,1,2,3 -> wraps to 0 and
        // exits — still exactly 4 iterations (checked here by direct
        // fixed-point simulation of the rewritten semantics).
        let mut i = Fx::ZERO;
        let mut iters = 0;
        loop {
            iters += 1;
            i = (i + Fx::ONE).wrap_int_bits(2);
            if i == Fx::ZERO {
                break;
            }
        }
        assert_eq!(iters, 4);
    }
}
