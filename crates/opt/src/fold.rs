//! Constant folding, constant propagation, and algebraic simplification.

use hls_cdfg::{Cdfg, DataFlowGraph, Fx, OpId, OpKind, ValueDef, ValueId};

/// Folds operations whose operands are all constants and applies algebraic
/// identities (`x+0`, `x*1`, `x*0`, `x/1`, `x<<0`, ...).
///
/// Returns the number of rewrites performed.
pub fn fold_constants(cdfg: &mut Cdfg) -> usize {
    let blocks: Vec<_> = cdfg.blocks().map(|(id, _)| id).collect();
    let mut changed = 0;
    for b in blocks {
        changed += fold_block(&mut cdfg.block_mut(b).dfg);
    }
    changed
}

/// Evaluates `kind` over constant operands.
///
/// Division by zero and unknown kinds yield `None` (left for runtime).
pub fn eval_const(kind: OpKind, args: &[Fx]) -> Option<Fx> {
    use OpKind::*;
    Some(match (kind, args) {
        (Add, [a, b]) => *a + *b,
        (Sub, [a, b]) => *a - *b,
        (Mul, [a, b]) => *a * *b,
        (Div, [a, b]) => {
            if b.is_zero() {
                return None;
            }
            *a / *b
        }
        (Mod, [a, b]) => {
            if b.is_zero() {
                return None;
            }
            *a % *b
        }
        (Neg, [a]) => -*a,
        (Inc, [a]) => *a + Fx::ONE,
        (Dec, [a]) => *a - Fx::ONE,
        (Shl, [a, b]) => *a << (b.to_i64().clamp(0, 63) as u32),
        (Shr, [a, b]) => *a >> (b.to_i64().clamp(0, 63) as u32),
        (And, [a, b]) => Fx::from_raw(a.raw() & b.raw()),
        (Or, [a, b]) => Fx::from_raw(a.raw() | b.raw()),
        (Xor, [a, b]) => Fx::from_raw(a.raw() ^ b.raw()),
        (Not, [a]) => Fx::from_raw(!a.raw()),
        (Eq, [a, b]) => bool_fx(a == b),
        (Ne, [a, b]) => bool_fx(a != b),
        (Lt, [a, b]) => bool_fx(a < b),
        (Le, [a, b]) => bool_fx(a <= b),
        (Gt, [a, b]) => bool_fx(a > b),
        (Ge, [a, b]) => bool_fx(a >= b),
        (Copy, [a]) => *a,
        _ => return None,
    })
}

fn bool_fx(b: bool) -> Fx {
    if b {
        Fx::ONE
    } else {
        Fx::ZERO
    }
}

fn const_of(dfg: &DataFlowGraph, v: ValueId) -> Option<Fx> {
    match dfg.value(v).def {
        ValueDef::Op(p) if dfg.op(p).kind == OpKind::Const => dfg.op(p).constant,
        _ => None,
    }
}

fn fold_block(dfg: &mut DataFlowGraph) -> usize {
    let mut changed = 0;
    let order = match dfg.topological_order() {
        Ok(o) => o,
        Err(_) => return 0,
    };
    for id in order {
        if dfg.op(id).dead {
            continue;
        }
        let kind = dfg.op(id).kind;
        if matches!(
            kind,
            OpKind::Const | OpKind::Copy | OpKind::Load | OpKind::Store
        ) {
            continue;
        }
        let operands = dfg.op(id).operands.clone();
        let consts: Vec<Option<Fx>> = operands.iter().map(|&v| const_of(dfg, v)).collect();

        // Full fold when every operand is constant.
        let args: Vec<Fx> = consts.iter().copied().flatten().collect();
        if args.len() == operands.len() {
            if let Some(v) = eval_const(kind, &args) {
                replace_with_value(dfg, id, ReplaceWith::Const(v));
                changed += 1;
                continue;
            }
        }

        // Algebraic identities with one constant operand.
        if let Some(rw) = identity_rewrite(kind, &operands, &consts) {
            replace_with_value(dfg, id, rw);
            changed += 1;
        }
    }
    changed
}

enum ReplaceWith {
    Const(Fx),
    Value(ValueId),
}

fn replace_with_value(dfg: &mut DataFlowGraph, id: OpId, rw: ReplaceWith) {
    let Some(old) = dfg.result(id) else { return };
    let new = match rw {
        ReplaceWith::Const(c) => dfg.add_const_value(c),
        ReplaceWith::Value(v) => v,
    };
    dfg.replace_value_uses(old, new);
    dfg.kill_op(id);
}

/// `x+0 → x`, `x-0 → x`, `x*1 → x`, `x*0 → 0`, `x/1 → x`, `x<<0 → x`,
/// `x>>0 → x`, `x|0 → x`, `x^0 → x`, `x&0 → 0`.
fn identity_rewrite(
    kind: OpKind,
    operands: &[ValueId],
    consts: &[Option<Fx>],
) -> Option<ReplaceWith> {
    use OpKind::*;
    let (lhs, rhs) = match operands {
        [l, r] => (*l, *r),
        _ => return None,
    };
    let (lc, rc) = (consts[0], consts[1]);
    match kind {
        Add | Or | Xor => {
            if rc == Some(Fx::ZERO) {
                return Some(ReplaceWith::Value(lhs));
            }
            if lc == Some(Fx::ZERO) {
                return Some(ReplaceWith::Value(rhs));
            }
        }
        Sub | Shl | Shr if rc == Some(Fx::ZERO) => {
            return Some(ReplaceWith::Value(lhs));
        }
        Mul => {
            if rc == Some(Fx::ONE) {
                return Some(ReplaceWith::Value(lhs));
            }
            if lc == Some(Fx::ONE) {
                return Some(ReplaceWith::Value(rhs));
            }
            if rc == Some(Fx::ZERO) || lc == Some(Fx::ZERO) {
                return Some(ReplaceWith::Const(Fx::ZERO));
            }
        }
        Div if rc == Some(Fx::ONE) => {
            return Some(ReplaceWith::Value(lhs));
        }
        And if (rc == Some(Fx::ZERO) || lc == Some(Fx::ZERO)) => {
            return Some(ReplaceWith::Const(Fx::ZERO));
        }
        _ => {}
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_constant_expression() {
        // y := (2 + 3) * 4
        let mut dfg = DataFlowGraph::new();
        let two = dfg.add_const_value(Fx::from_i64(2));
        let three = dfg.add_const_value(Fx::from_i64(3));
        let add = dfg.add_op(OpKind::Add, vec![two, three]);
        let four = dfg.add_const_value(Fx::from_i64(4));
        let mul = dfg.add_op(OpKind::Mul, vec![dfg.result(add).unwrap(), four]);
        dfg.set_output("y", dfg.result(mul).unwrap());

        let mut cdfg = Cdfg::new("t");
        let b = cdfg.add_block("b", dfg);
        cdfg.set_body(hls_cdfg::Region::Block(b));
        let n = fold_constants(&mut cdfg);
        assert!(n >= 2);
        let dfg = &cdfg.block(b).dfg;
        let (_, out) = &dfg.outputs()[0];
        assert_eq!(
            super::const_of(dfg, *out),
            Some(Fx::from_i64(20)),
            "folded to 20"
        );
    }

    #[test]
    fn mul_by_one_simplifies() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let one = dfg.add_const_value(Fx::ONE);
        let mul = dfg.add_op(OpKind::Mul, vec![x, one]);
        dfg.set_output("y", dfg.result(mul).unwrap());
        let mut cdfg = Cdfg::new("t");
        let b = cdfg.add_block("b", dfg);
        cdfg.set_body(hls_cdfg::Region::Block(b));
        assert_eq!(fold_constants(&mut cdfg), 1);
        assert_eq!(cdfg.block(b).dfg.outputs()[0].1, x);
    }

    #[test]
    fn mul_by_zero_becomes_zero() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let z = dfg.add_const_value(Fx::ZERO);
        let mul = dfg.add_op(OpKind::Mul, vec![x, z]);
        dfg.set_output("y", dfg.result(mul).unwrap());
        let mut cdfg = Cdfg::new("t");
        let b = cdfg.add_block("b", dfg);
        cdfg.set_body(hls_cdfg::Region::Block(b));
        assert_eq!(fold_constants(&mut cdfg), 1);
        let dfg = &cdfg.block(b).dfg;
        assert_eq!(super::const_of(dfg, dfg.outputs()[0].1), Some(Fx::ZERO));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let mut dfg = DataFlowGraph::new();
        let a = dfg.add_const_value(Fx::ONE);
        let z = dfg.add_const_value(Fx::ZERO);
        let div = dfg.add_op(OpKind::Div, vec![a, z]);
        dfg.set_output("y", dfg.result(div).unwrap());
        let mut cdfg = Cdfg::new("t");
        let b = cdfg.add_block("b", dfg);
        cdfg.set_body(hls_cdfg::Region::Block(b));
        assert_eq!(fold_constants(&mut cdfg), 0);
    }

    #[test]
    fn eval_const_comparisons() {
        assert_eq!(
            eval_const(OpKind::Gt, &[Fx::from_i64(4), Fx::from_i64(3)]),
            Some(Fx::ONE)
        );
        assert_eq!(
            eval_const(OpKind::Gt, &[Fx::from_i64(3), Fx::from_i64(3)]),
            Some(Fx::ZERO)
        );
        assert_eq!(eval_const(OpKind::Eq, &[Fx::ZERO, Fx::ZERO]), Some(Fx::ONE));
    }

    #[test]
    fn fold_cascades_through_chain() {
        // ((1+1)+1)+x : two inner folds happen in one run (topo order).
        let mut dfg = DataFlowGraph::new();
        let one = dfg.add_const_value(Fx::ONE);
        let a = dfg.add_op(OpKind::Add, vec![one, one]);
        let b = dfg.add_op(OpKind::Add, vec![dfg.result(a).unwrap(), one]);
        let x = dfg.add_input("x", 32);
        let c = dfg.add_op(OpKind::Add, vec![dfg.result(b).unwrap(), x]);
        dfg.set_output("y", dfg.result(c).unwrap());
        let mut cdfg = Cdfg::new("t");
        let blk = cdfg.add_block("b", dfg);
        cdfg.set_body(hls_cdfg::Region::Block(blk));
        assert_eq!(fold_constants(&mut cdfg), 2);
        let dfg = &cdfg.block(blk).dfg;
        // c now adds x to the constant 3.
        let ops: Vec<OpKind> = dfg.op_ids().map(|i| dfg.op(i).kind).collect();
        assert_eq!(ops.iter().filter(|k| **k == OpKind::Add).count(), 1);
    }
}
