//! # hls-opt — high-level transformations
//!
//! The tutorial's §2 "compiler-like optimizations" over the CDFG: constant
//! folding/propagation, dead-code elimination, common-subexpression
//! elimination, copy propagation, strength reduction (`×0.5` → `>>1`,
//! `+1` → increment), induction-variable narrowing with exit-test rewriting
//! (`I > 3` → 2-bit `I = 0`), and loop unrolling.
//!
//! Passes run through a small pass manager:
//!
//! ```
//! let mut cdfg = hls_lang::compile(
//!     "program t; input x; output y; begin y := (x * 0.5) + 0; end."
//! )?;
//! let stats = hls_opt::optimize(&mut cdfg);
//! assert!(stats.iter().map(|s| s.rewrites).sum::<usize>() > 0);
//! # Ok::<(), hls_lang::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod copyprop;
mod cse;
mod dce;
mod fold;
mod ifconv;
mod narrow;
mod strength;
mod unroll;

pub use copyprop::propagate_copies;
pub use cse::eliminate_common_subexpressions;
pub use dce::eliminate_dead_code;
pub use fold::{eval_const, fold_constants};
pub use ifconv::convert_ifs;
pub use narrow::narrow_loop_counters;
pub use strength::reduce_strength;
pub use unroll::{unroll_counted_loops, UNROLL_OP_BUDGET};

use hls_cdfg::Cdfg;

/// One of the available transformation passes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Constant folding + algebraic identities.
    Fold,
    /// Copy propagation.
    CopyProp,
    /// Common-subexpression elimination.
    Cse,
    /// Strength reduction.
    Strength,
    /// Induction-variable narrowing + exit-test rewrite.
    Narrow,
    /// Dead-code elimination.
    Dce,
    /// Full unrolling of counted loops.
    Unroll,
    /// If-conversion: small conditionals become mux dataflow.
    IfConvert,
}

impl PassKind {
    /// Stable display name of the pass.
    pub fn name(self) -> &'static str {
        match self {
            PassKind::Fold => "const-fold",
            PassKind::CopyProp => "copy-prop",
            PassKind::Cse => "cse",
            PassKind::Strength => "strength-reduce",
            PassKind::Narrow => "narrow-counters",
            PassKind::Dce => "dce",
            PassKind::Unroll => "unroll",
            PassKind::IfConvert => "if-convert",
        }
    }
}

/// Number of rewrites a pass performed during [`optimize_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassStats {
    /// Which pass ran.
    pub pass: PassKind,
    /// How many rewrites it made (summed across fix-point iterations).
    pub rewrites: usize,
}

/// Runs a single pass once, returning its rewrite count.
pub fn run_pass(cdfg: &mut Cdfg, pass: PassKind) -> usize {
    match pass {
        PassKind::Fold => fold_constants(cdfg),
        PassKind::CopyProp => propagate_copies(cdfg),
        PassKind::Cse => eliminate_common_subexpressions(cdfg),
        PassKind::Strength => reduce_strength(cdfg),
        PassKind::Narrow => narrow_loop_counters(cdfg),
        PassKind::Dce => eliminate_dead_code(cdfg),
        PassKind::Unroll => unroll_counted_loops(cdfg),
        PassKind::IfConvert => convert_ifs(cdfg),
    }
}

/// The standard optimization pipeline (no unrolling), iterated to a fix
/// point.
pub const STANDARD_PASSES: [PassKind; 6] = [
    PassKind::Fold,
    PassKind::CopyProp,
    PassKind::Cse,
    PassKind::Strength,
    PassKind::Narrow,
    PassKind::Dce,
];

/// Runs the given passes repeatedly until no pass makes a change (bounded
/// at 16 rounds), returning per-pass rewrite totals.
pub fn optimize_with(cdfg: &mut Cdfg, passes: &[PassKind]) -> Vec<PassStats> {
    let mut stats: Vec<PassStats> = passes
        .iter()
        .map(|&p| PassStats {
            pass: p,
            rewrites: 0,
        })
        .collect();
    for _round in 0..16 {
        let mut round_changes = 0;
        for (i, &p) in passes.iter().enumerate() {
            let n = run_pass(cdfg, p);
            stats[i].rewrites += n;
            round_changes += n;
        }
        if round_changes == 0 {
            break;
        }
    }
    debug_assert!(cdfg.validate().is_ok(), "optimizer broke the CDFG");
    stats
}

/// Runs [`STANDARD_PASSES`] to a fix point.
pub fn optimize(cdfg: &mut Cdfg) -> Vec<PassStats> {
    optimize_with(cdfg, &STANDARD_PASSES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_cdfg::OpKind;

    const SQRT: &str = "
        program sqrt;
        input X; output Y; var I : int<4>;
        begin
          Y := 0.222222 + 0.888889 * X;
          I := 0;
          do
            Y := 0.5 * (Y + X / Y);
            I := I + 1;
          until I > 3;
        end.
    ";

    /// The full Fig. 2 check: after optimization the loop body holds
    /// div, add, shr (free), inc, eq — and the counter is 2 bits.
    #[test]
    fn sqrt_matches_fig2_optimized_form() {
        let mut cdfg = hls_lang::compile(SQRT).unwrap();
        optimize(&mut cdfg);
        cdfg.validate().unwrap();
        let body = cdfg.block_order()[1];
        let dfg = &cdfg.block(body).dfg;
        let mut kinds: Vec<OpKind> = dfg
            .op_ids()
            .map(|i| dfg.op(i).kind)
            .filter(|k| *k != OpKind::Const)
            .collect();
        kinds.sort();
        let mut expected = vec![
            OpKind::Div,
            OpKind::Add,
            OpKind::Shr,
            OpKind::Inc,
            OpKind::Eq,
        ];
        expected.sort();
        assert_eq!(kinds, expected);
        let (_, iv) = dfg.outputs().iter().find(|(n, _)| n == "I").unwrap();
        assert_eq!(dfg.value(*iv).width, 2);
    }

    #[test]
    fn sqrt_entry_keeps_three_step_ops() {
        let mut cdfg = hls_lang::compile(SQRT).unwrap();
        optimize(&mut cdfg);
        let entry = cdfg.block_order()[0];
        let dfg = &cdfg.block(entry).dfg;
        let step_ops = dfg
            .op_ids()
            .filter(|&i| dfg.op(i).kind != OpKind::Const)
            .count();
        assert_eq!(step_ops, 3, "mul, add, and the I:=0 transfer survive");
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut cdfg = hls_lang::compile(SQRT).unwrap();
        optimize(&mut cdfg);
        let ops_after_first = cdfg.total_ops();
        let stats = optimize(&mut cdfg);
        assert_eq!(cdfg.total_ops(), ops_after_first);
        assert!(stats.iter().all(|s| s.rewrites == 0));
    }

    #[test]
    fn unroll_plus_optimize_pipeline() {
        let mut cdfg = hls_lang::compile(SQRT).unwrap();
        run_pass(&mut cdfg, PassKind::Unroll);
        optimize(&mut cdfg);
        cdfg.validate().unwrap();
        // Entire loop flattened into the second block; exit tests folded away.
        let body = cdfg.block_order()[1];
        let dfg = &cdfg.block(body).dfg;
        assert_eq!(
            dfg.op_ids()
                .filter(|&i| dfg.op(i).kind == OpKind::Div)
                .count(),
            4
        );
        assert_eq!(
            dfg.op_ids()
                .filter(|&i| dfg.op(i).kind.is_comparison())
                .count(),
            0
        );
    }

    #[test]
    fn pass_names_are_stable() {
        assert_eq!(PassKind::Fold.name(), "const-fold");
        assert_eq!(PassKind::Narrow.name(), "narrow-counters");
    }
}
