//! Copy propagation.

use hls_cdfg::{Cdfg, DataFlowGraph, OpKind};

/// Forwards the source of every `Copy` to the copy's consumers.
///
/// The `Copy` itself survives when it defines a block output (it is a
/// register transfer with architectural meaning — e.g. the paper's
/// `I := 0`); otherwise dead-code elimination will collect it.
///
/// Returns the number of copies whose uses were forwarded.
pub fn propagate_copies(cdfg: &mut Cdfg) -> usize {
    let blocks: Vec<_> = cdfg.blocks().map(|(id, _)| id).collect();
    let mut changed = 0;
    for b in blocks {
        changed += prop_block(&mut cdfg.block_mut(b).dfg);
    }
    changed
}

fn prop_block(dfg: &mut DataFlowGraph) -> usize {
    let mut changed = 0;
    let ids: Vec<_> = dfg.op_ids().collect();
    for id in ids {
        if dfg.op(id).kind != OpKind::Copy {
            continue;
        }
        let src = dfg.op(id).operands[0];
        let Some(res) = dfg.result(id) else { continue };
        let users: Vec<_> = dfg.value(res).uses.clone();
        if users.is_empty() {
            continue;
        }
        // Rewire op uses only; keep outputs pointing at the copy.
        for u in users {
            let operands = dfg.op(u).operands.clone();
            for (slot, v) in operands.into_iter().enumerate() {
                if v == res {
                    dfg.op_mut(u).operands[slot] = src;
                    // Maintain use lists by hand for a partial rewire.
                    let uses = &mut dfg.value_mut(res).uses;
                    if let Some(pos) = uses.iter().position(|&x| x == u) {
                        uses.remove(pos);
                    }
                    dfg.value_mut(src).uses.push(u);
                }
            }
        }
        changed += 1;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_cdfg::{Fx, Region};

    #[test]
    fn forwards_copy_source_to_consumers() {
        // i := 0 (copy); j := i + 1 — the add should read the const.
        let mut dfg = DataFlowGraph::new();
        let zero = dfg.add_const_value(Fx::ZERO);
        let cp = dfg.add_op(OpKind::Copy, vec![zero]);
        let cp_v = dfg.result(cp).unwrap();
        let one = dfg.add_const_value(Fx::ONE);
        let add = dfg.add_op(OpKind::Add, vec![cp_v, one]);
        dfg.set_output("i", cp_v);
        dfg.set_output("j", dfg.result(add).unwrap());
        let mut cdfg = Cdfg::new("t");
        let b = cdfg.add_block("b", dfg);
        cdfg.set_body(Region::Block(b));
        assert_eq!(propagate_copies(&mut cdfg), 1);
        let dfg = &cdfg.block(b).dfg;
        dfg.validate().unwrap();
        assert_eq!(dfg.op(add).operands[0], zero);
        // Copy still defines the `i` output.
        assert_eq!(dfg.outputs()[0].1, cp_v);
        // Now the add folds to a constant.
        assert_eq!(crate::fold::fold_constants(&mut cdfg), 1);
    }

    #[test]
    fn copy_without_uses_untouched() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let cp = dfg.add_op(OpKind::Copy, vec![x]);
        dfg.set_output("y", dfg.result(cp).unwrap());
        let mut cdfg = Cdfg::new("t");
        let b = cdfg.add_block("b", dfg);
        cdfg.set_body(Region::Block(b));
        assert_eq!(propagate_copies(&mut cdfg), 0);
    }
}
