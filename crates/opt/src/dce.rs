//! Dead-code elimination.

use hls_cdfg::{Cdfg, DataFlowGraph, OpKind};

/// Removes operations whose results are never used and do not define a
/// block output. `Store`s are always live (they have side effects).
///
/// Returns the number of operations removed.
pub fn eliminate_dead_code(cdfg: &mut Cdfg) -> usize {
    let blocks: Vec<_> = cdfg.blocks().map(|(id, _)| id).collect();
    let mut removed = 0;
    for b in blocks {
        removed += dce_block(&mut cdfg.block_mut(b).dfg);
    }
    removed
}

fn dce_block(dfg: &mut DataFlowGraph) -> usize {
    let mut removed = 0;
    loop {
        let mut killed_this_round = 0;
        let ids: Vec<_> = dfg.op_ids().collect();
        for id in ids.into_iter().rev() {
            let op = dfg.op(id);
            if op.kind == OpKind::Store {
                continue;
            }
            let Some(r) = op.result else { continue };
            let used = !dfg.value(r).uses.is_empty();
            let is_output = dfg.outputs().iter().any(|(_, v)| *v == r);
            if !used && !is_output {
                dfg.kill_op(id);
                killed_this_round += 1;
            }
        }
        removed += killed_this_round;
        if killed_this_round == 0 {
            return removed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_cdfg::{Fx, Region};

    #[test]
    fn removes_unused_chain() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let used = dfg.add_op(OpKind::Inc, vec![x]);
        dfg.set_output("y", dfg.result(used).unwrap());
        // Dead chain: neg -> add(neg, x), neither used.
        let n = dfg.add_op(OpKind::Neg, vec![x]);
        let _a = dfg.add_op(OpKind::Add, vec![dfg.result(n).unwrap(), x]);
        let mut cdfg = Cdfg::new("t");
        let b = cdfg.add_block("b", dfg);
        cdfg.set_body(Region::Block(b));
        assert_eq!(eliminate_dead_code(&mut cdfg), 2);
        assert_eq!(cdfg.block(b).dfg.live_op_count(), 1);
        cdfg.block(b).dfg.validate().unwrap();
    }

    #[test]
    fn keeps_outputs_and_stores() {
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let addr = dfg.add_const_value(Fx::ZERO);
        let token = dfg.add_const_value(Fx::ZERO);
        let st = dfg.add_op(OpKind::Store, vec![addr, x, token]);
        dfg.op_mut(st).memory = Some("m".into());
        let cp = dfg.add_op(OpKind::Copy, vec![x]);
        dfg.set_output("y", dfg.result(cp).unwrap());
        let mut cdfg = Cdfg::new("t");
        let b = cdfg.add_block("b", dfg);
        cdfg.set_body(Region::Block(b));
        assert_eq!(eliminate_dead_code(&mut cdfg), 0);
        // Two consts, the store, and the output-defining copy all survive.
        assert_eq!(cdfg.block(b).dfg.live_op_count(), 4);
    }

    #[test]
    fn iterates_to_fixpoint_within_block() {
        // A chain a -> b -> c where only nothing is used: all three go in
        // one call even though uses cascade.
        let mut dfg = DataFlowGraph::new();
        let x = dfg.add_input("x", 32);
        let a = dfg.add_op(OpKind::Inc, vec![x]);
        let b = dfg.add_op(OpKind::Inc, vec![dfg.result(a).unwrap()]);
        let _c = dfg.add_op(OpKind::Inc, vec![dfg.result(b).unwrap()]);
        let mut cdfg = Cdfg::new("t");
        let blk = cdfg.add_block("b", dfg);
        cdfg.set_body(Region::Block(blk));
        assert_eq!(eliminate_dead_code(&mut cdfg), 3);
        assert_eq!(cdfg.block(blk).dfg.live_op_count(), 0);
    }
}
