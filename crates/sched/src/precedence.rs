//! Shared precedence rules used by every scheduler.
//!
//! Three kinds of operations exist under the control-step model:
//!
//! * **wired** — constants: no hardware, no step constraint; their value is
//!   always available.
//! * **chained free** — constant-amount shifts (under the "free shift"
//!   policy) and muxes: combinational wiring that evaluates *within* the
//!   step of its producers (it may share their step); its result is
//!   registered at the end of its step.
//! * **step-taking** — everything else: occupies a functional unit for one
//!   control step; its result is available from the next step on.

use std::collections::HashMap;

use hls_cdfg::{DataFlowGraph, OpId, OpKind};

use crate::resource::OpClassifier;

/// `true` for operations with no timing footprint at all (constants).
pub fn is_wired(dfg: &DataFlowGraph, op: OpId) -> bool {
    dfg.op(op).kind == OpKind::Const
}

/// The earliest step `op` may occupy, given the steps of its already
/// scheduled predecessors.
///
/// # Panics
///
/// Panics if a non-wired predecessor of `op` is unscheduled.
pub fn earliest_start(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
    steps: &HashMap<OpId, u32>,
    op: OpId,
) -> u32 {
    let op_free = classifier.is_free(dfg, op);
    let mut earliest = 0;
    for pred in dfg.preds(op) {
        if is_wired(dfg, pred) {
            continue;
        }
        let ps = steps[&pred];
        let min = if op_free { ps } else { ps + 1 };
        earliest = earliest.max(min);
    }
    earliest
}

/// `true` when every non-wired predecessor of `op` is in `steps`.
pub fn preds_scheduled(dfg: &DataFlowGraph, steps: &HashMap<OpId, u32>, op: OpId) -> bool {
    dfg.preds(op)
        .into_iter()
        .all(|p| is_wired(dfg, p) || steps.contains_key(&p))
}

/// Dependence-only ASAP steps under the chaining rules above (no resource
/// limits). Returns `(steps, total)`.
///
/// Thin `HashMap` facade over [`crate::bounds::SchedGraph::asap`]; callers
/// that schedule the same block repeatedly should build a
/// [`crate::bounds::SchedGraph`] once instead.
pub fn unconstrained_asap(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
) -> Result<(HashMap<OpId, u32>, u32), crate::ScheduleError> {
    let sg = crate::bounds::SchedGraph::build(dfg, classifier)?;
    let (dense, total) = sg.asap();
    let steps = (0..sg.len()).map(|i| (sg.op(i), dense[i])).collect();
    Ok((steps, total))
}

/// Dependence-only ALAP steps against a `deadline`, mirroring
/// [`unconstrained_asap`] (facade over
/// [`crate::bounds::SchedGraph::alap`]).
pub fn unconstrained_alap(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
    deadline: u32,
) -> Result<HashMap<OpId, u32>, crate::ScheduleError> {
    let sg = crate::bounds::SchedGraph::build(dfg, classifier)?;
    let dense = sg.alap(deadline);
    Ok((0..sg.len()).map(|i| (sg.op(i), dense[i])).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::OpClassifier;
    use hls_cdfg::Fx;

    /// div -> add -> shr(free) with inc independent: the Fig. 2 loop body.
    fn fig2_body() -> (DataFlowGraph, OpId, OpId, OpId, OpId) {
        let mut g = DataFlowGraph::new();
        let y = g.add_input("y", 32);
        let x = g.add_input("x", 32);
        let i = g.add_input("i", 2);
        let div = g.add_op(OpKind::Div, vec![x, y]);
        let add = g.add_op(OpKind::Add, vec![y, g.result(div).unwrap()]);
        let one = g.add_const_value(Fx::ONE);
        let shr = g.add_op(OpKind::Shr, vec![g.result(add).unwrap(), one]);
        let inc = g.add_op(OpKind::Inc, vec![i]);
        g.set_output("y", g.result(shr).unwrap());
        g.set_output("i", g.result(inc).unwrap());
        (g, div, add, shr, inc)
    }

    #[test]
    fn chained_shift_shares_producer_step() {
        let (g, div, add, shr, inc) = fig2_body();
        let cls = OpClassifier::universal_free_shifts();
        let (steps, total) = unconstrained_asap(&g, &cls).unwrap();
        assert_eq!(steps[&div], 0);
        assert_eq!(steps[&add], 1);
        assert_eq!(steps[&shr], 1, "free shift chains in the adder's step");
        assert_eq!(steps[&inc], 0);
        assert_eq!(total, 2, "the paper's 2-step loop body");
    }

    #[test]
    fn without_free_shifts_chain_is_three_steps() {
        let (g, _, _, shr, _) = fig2_body();
        let cls = OpClassifier::universal();
        let (steps, total) = unconstrained_asap(&g, &cls).unwrap();
        assert_eq!(steps[&shr], 2);
        assert_eq!(total, 3);
    }

    #[test]
    fn alap_mirrors_asap_on_critical_path() {
        let (g, div, add, shr, inc) = fig2_body();
        let cls = OpClassifier::universal_free_shifts();
        let alap = unconstrained_alap(&g, &cls, 2).unwrap();
        assert_eq!(alap[&div], 0);
        assert_eq!(alap[&add], 1);
        assert_eq!(alap[&shr], 1);
        assert_eq!(alap[&inc], 1, "inc can slide to the last step");
    }

    #[test]
    fn earliest_start_skips_wired_preds() {
        let mut g = DataFlowGraph::new();
        let c = g.add_const_value(Fx::ONE);
        let x = g.add_input("x", 32);
        let add = g.add_op(OpKind::Add, vec![x, c]);
        g.set_output("y", g.result(add).unwrap());
        let steps = HashMap::new();
        let cls = OpClassifier::universal();
        assert_eq!(earliest_start(&g, &cls, &steps, add), 0);
        assert!(preds_scheduled(&g, &steps, add));
    }
}
