//! As-soon-as-possible (ASAP) scheduling — resource-constrained, purely
//! local (Fig. 3).
//!
//! "Operations are taken from the list in [topological] order and each is
//! put into the earliest control step possible, given its dependence on
//! other operations and the limits on resource usage" (§3.1.2). Because the
//! order gives no priority to the critical path, a less critical op can
//! grab a limited unit first and push critical ops later — the Fig. 3
//! pathology, demonstrated in this module's tests and in experiment E3.

use std::collections::HashMap;

use hls_cdfg::DataFlowGraph;

use crate::precedence::earliest_start;
use crate::resource::{OpClassifier, ResourceLimits};
use crate::schedule::Schedule;
use crate::ScheduleError;

/// Schedules `dfg` with the ASAP algorithm (CMUDA/MIMOLA/Flamel style).
///
/// # Errors
///
/// Returns [`ScheduleError::Cycle`] on cyclic graphs and
/// [`ScheduleError::ZeroResource`] when a required class has zero units.
pub fn asap_schedule(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
    limits: &ResourceLimits,
) -> Result<Schedule, ScheduleError> {
    let order = dfg.topological_order()?;
    let mut steps: HashMap<hls_cdfg::OpId, u32> = HashMap::new();
    let mut usage: HashMap<(crate::FuClass, u32), usize> = HashMap::new();
    let mut schedule = Schedule::new();
    for op in order {
        let ready = earliest_start(dfg, classifier, &steps, op);
        let step = match classifier.classify(dfg, op) {
            None => ready, // wired or chained-free: no resource needed
            Some(class) => {
                let limit = limits.limit(class);
                if limit == 0 {
                    return Err(ScheduleError::ZeroResource { class });
                }
                let mut s = ready;
                while *usage.get(&(class, s)).unwrap_or(&0) >= limit {
                    s += 1;
                }
                *usage.entry((class, s)).or_insert(0) += 1;
                s
            }
        };
        steps.insert(op, step);
        schedule.assign(op, step);
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::FuClass;
    use hls_cdfg::OpKind;
    use hls_workloads::figures::fig3_graph;

    #[test]
    fn fig3_asap_blocks_critical_path() {
        let (g, ops) = fig3_graph();
        let cls = OpClassifier::universal();
        let limits = ResourceLimits::universal(2);
        let s = asap_schedule(&g, &cls, &limits).unwrap();
        s.validate(&g, &cls, &limits).unwrap();
        // op1 and op3 grabbed both adders in step 0.
        assert_eq!(s.step(ops[0]), Some(0));
        assert_eq!(s.step(ops[2]), Some(0));
        // The critical chain starts late: 4-step schedule.
        assert_eq!(s.step(ops[1]), Some(1), "critical op2 was blocked");
        assert_eq!(s.num_steps(), 4, "one step longer than optimal");
    }

    #[test]
    fn unlimited_resources_give_critical_path_length() {
        let (g, _) = fig3_graph();
        let cls = OpClassifier::universal();
        let s = asap_schedule(&g, &cls, &ResourceLimits::unlimited()).unwrap();
        assert_eq!(s.num_steps(), 3);
    }

    #[test]
    fn single_fu_serializes_everything() {
        let (g, _) = fig3_graph();
        let cls = OpClassifier::universal();
        let limits = ResourceLimits::single_universal();
        let s = asap_schedule(&g, &cls, &limits).unwrap();
        s.validate(&g, &cls, &limits).unwrap();
        assert_eq!(s.num_steps(), 6, "six ops, one FU");
    }

    #[test]
    fn zero_resource_is_an_error() {
        let (g, _) = fig3_graph();
        let cls = OpClassifier::universal();
        let limits = ResourceLimits::universal(0);
        assert_eq!(
            asap_schedule(&g, &cls, &limits),
            Err(ScheduleError::ZeroResource {
                class: FuClass::Universal
            })
        );
    }

    #[test]
    fn typed_resources_respected() {
        let mut g = DataFlowGraph::new();
        let x = g.add_input("x", 32);
        let y = g.add_input("y", 32);
        let m1 = g.add_op(OpKind::Mul, vec![x, y]);
        let m2 = g.add_op(OpKind::Mul, vec![x, x]);
        let a = g.add_op(
            OpKind::Add,
            vec![g.result(m1).unwrap(), g.result(m2).unwrap()],
        );
        g.set_output("z", g.result(a).unwrap());
        let cls = OpClassifier::typed();
        let limits = ResourceLimits::unlimited().with(FuClass::Multiplier, 1);
        let s = asap_schedule(&g, &cls, &limits).unwrap();
        s.validate(&g, &cls, &limits).unwrap();
        assert_eq!(s.num_steps(), 3, "serialized muls, then the add");
    }
}
