//! Schedule types and validation.

use std::collections::{BTreeMap, HashMap};

use hls_cdfg::{BlockId, Cdfg, DataFlowGraph, LoopKind, OpId, Region};

use crate::error::ScheduleError;
use crate::resource::{FuClass, OpClassifier, ResourceLimits};

/// A schedule of one basic block: a control step (0-based) for every live,
/// step-taking operation, plus the step at which free ops logically occur.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schedule {
    steps: HashMap<OpId, u32>,
    num_steps: u32,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `op` to `step`, growing the step count as needed.
    pub fn assign(&mut self, op: OpId, step: u32) {
        self.steps.insert(op, step);
        self.num_steps = self.num_steps.max(step + 1);
    }

    /// The step of `op`, if scheduled.
    pub fn step(&self, op: OpId) -> Option<u32> {
        self.steps.get(&op).copied()
    }

    /// Total number of control steps. Empty blocks take zero steps.
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// Overrides the step count (used when trailing steps are reserved).
    pub fn set_num_steps(&mut self, n: u32) {
        self.num_steps = self.num_steps.max(n);
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Iterates `(op, step)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, u32)> + '_ {
        self.steps.iter().map(|(&o, &s)| (o, s))
    }

    /// Ops in `step`, sorted by id for determinism.
    pub fn ops_in_step(&self, step: u32) -> Vec<OpId> {
        let mut v: Vec<OpId> = self
            .steps
            .iter()
            .filter(|(_, &s)| s == step)
            .map(|(&o, _)| o)
            .collect();
        v.sort();
        v
    }

    /// Per-class FU usage of each step, and the implied FU allocation
    /// (the per-step maximum — HAL's "the number of functional units
    /// allocated is the maximum number required in any control step").
    pub fn fu_usage(
        &self,
        dfg: &DataFlowGraph,
        classifier: &OpClassifier,
    ) -> BTreeMap<FuClass, usize> {
        let mut per_step: HashMap<(FuClass, u32), usize> = HashMap::new();
        for (op, step) in self.iter() {
            if let Some(class) = classifier.classify(dfg, op) {
                *per_step.entry((class, step)).or_insert(0) += 1;
            }
        }
        let mut max: BTreeMap<FuClass, usize> = BTreeMap::new();
        for ((class, _), n) in per_step {
            let e = max.entry(class).or_insert(0);
            *e = (*e).max(n);
        }
        max
    }

    /// Checks that the schedule is complete, respects data dependencies
    /// (free ops may share their consumers' step; step-taking producers
    /// must finish strictly before consumers start), and never exceeds
    /// `limits`.
    ///
    /// # Errors
    ///
    /// Returns the first violation.
    pub fn validate(
        &self,
        dfg: &DataFlowGraph,
        classifier: &OpClassifier,
        limits: &ResourceLimits,
    ) -> Result<(), ScheduleError> {
        for op in dfg.op_ids() {
            let Some(step) = self.step(op) else {
                return Err(ScheduleError::Unscheduled {
                    op: format!("{op:?}"),
                });
            };
            if crate::precedence::is_wired(dfg, op) {
                continue; // constants have no timing constraints
            }
            let op_free = classifier.is_free(dfg, op);
            for pred in dfg.preds(op) {
                if crate::precedence::is_wired(dfg, pred) {
                    continue;
                }
                let ps = self.step(pred).ok_or_else(|| ScheduleError::Unscheduled {
                    op: format!("{pred:?}"),
                })?;
                // A chained free consumer (e.g. the Fig. 2 free shift) may
                // share its producer's step; a step-taking consumer must
                // start after the producer's value registers.
                let ok = if op_free { ps <= step } else { ps < step };
                if !ok {
                    return Err(ScheduleError::PrecedenceViolated {
                        pred: format!("{pred:?}"),
                        succ: format!("{op:?}"),
                    });
                }
            }
        }
        let mut per_step: HashMap<(FuClass, u32), usize> = HashMap::new();
        for (op, step) in self.iter() {
            if dfg.op(op).dead {
                continue;
            }
            if let Some(class) = classifier.classify(dfg, op) {
                let n = per_step.entry((class, step)).or_insert(0);
                *n += 1;
                if *n > limits.limit(class) {
                    return Err(ScheduleError::ResourceExceeded {
                        class,
                        step,
                        used: *n,
                        limit: limits.limit(class),
                    });
                }
            }
        }
        Ok(())
    }

    /// Renders the schedule as a compact step table for reports.
    pub fn render(&self, dfg: &DataFlowGraph) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for step in 0..self.num_steps {
            let ops = self.ops_in_step(step);
            let labels: Vec<String> = ops
                .iter()
                .map(|&o| {
                    let op = dfg.op(o);
                    if op.label.is_empty() {
                        format!("{}", op.kind)
                    } else {
                        op.label.clone()
                    }
                })
                .collect();
            let _ = writeln!(s, "  step {:>2}: {}", step + 1, labels.join(", "));
        }
        s
    }
}

/// A schedule for a whole behavior: one [`Schedule`] per block.
#[derive(Clone, Debug, Default)]
pub struct CdfgSchedule {
    per_block: HashMap<BlockId, Schedule>,
}

impl CdfgSchedule {
    /// Creates an empty whole-behavior schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the schedule of `block`.
    pub fn insert(&mut self, block: BlockId, schedule: Schedule) {
        self.per_block.insert(block, schedule);
    }

    /// The schedule of `block`, if present.
    pub fn block(&self, block: BlockId) -> Option<&Schedule> {
        self.per_block.get(&block)
    }

    /// Total latency in control steps of one complete execution, expanding
    /// counted loops by their trip hints.
    ///
    /// Loops without a trip hint count as a single iteration (a lower
    /// bound); [`CdfgSchedule::latency_with_default_trip`] lets callers pick
    /// another assumption.
    pub fn total_latency(&self, cdfg: &Cdfg) -> u64 {
        self.latency_with_default_trip(cdfg, 1)
    }

    /// Total latency, assuming `default_trip` iterations for loops without
    /// a static trip count.
    pub fn latency_with_default_trip(&self, cdfg: &Cdfg, default_trip: u64) -> u64 {
        self.region_latency(cdfg.body(), default_trip)
    }

    fn region_latency(&self, region: &Region, default_trip: u64) -> u64 {
        match region {
            Region::Block(b) => self
                .per_block
                .get(b)
                .map(|s| s.num_steps() as u64)
                .unwrap_or(0),
            Region::Seq(rs) => rs
                .iter()
                .map(|r| self.region_latency(r, default_trip))
                .sum(),
            Region::Loop(l) => {
                let body = self.region_latency(&l.body, default_trip);
                let cond = match (l.kind, l.cond_block) {
                    (LoopKind::While, Some(c)) => self
                        .per_block
                        .get(&c)
                        .map(|s| s.num_steps() as u64)
                        .unwrap_or(0),
                    _ => 0,
                };
                let trips = l.trip_hint.unwrap_or(default_trip);
                match l.kind {
                    // A while loop evaluates its condition trips+1 times.
                    LoopKind::While => trips * body + (trips + 1) * cond,
                    LoopKind::DoUntil => trips * body,
                }
            }
            Region::If(i) => {
                let cond = self
                    .per_block
                    .get(&i.cond_block)
                    .map(|s| s.num_steps() as u64)
                    .unwrap_or(0);
                let t = self.region_latency(&i.then_region, default_trip);
                let e = i
                    .else_region
                    .as_ref()
                    .map(|r| self.region_latency(r, default_trip))
                    .unwrap_or(0);
                cond + t.max(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_cdfg::{Fx, OpKind};

    fn two_op_block() -> (DataFlowGraph, OpId, OpId) {
        let mut g = DataFlowGraph::new();
        let x = g.add_input("x", 32);
        let a = g.add_op(OpKind::Inc, vec![x]);
        let b = g.add_op(OpKind::Neg, vec![g.result(a).unwrap()]);
        g.set_output("y", g.result(b).unwrap());
        (g, a, b)
    }

    #[test]
    fn assign_and_query() {
        let (g, a, b) = two_op_block();
        let mut s = Schedule::new();
        s.assign(a, 0);
        s.assign(b, 1);
        assert_eq!(s.num_steps(), 2);
        assert_eq!(s.step(a), Some(0));
        assert_eq!(s.ops_in_step(1), vec![b]);
        s.validate(&g, &OpClassifier::universal(), &ResourceLimits::unlimited())
            .unwrap();
    }

    #[test]
    fn precedence_violation_detected() {
        let (g, a, b) = two_op_block();
        let mut s = Schedule::new();
        s.assign(a, 1);
        s.assign(b, 1);
        let err = s
            .validate(&g, &OpClassifier::universal(), &ResourceLimits::unlimited())
            .unwrap_err();
        assert!(matches!(err, ScheduleError::PrecedenceViolated { .. }));
    }

    #[test]
    fn resource_violation_detected() {
        let mut g = DataFlowGraph::new();
        let x = g.add_input("x", 32);
        let a = g.add_op(OpKind::Inc, vec![x]);
        let b = g.add_op(OpKind::Neg, vec![x]);
        g.set_output("p", g.result(a).unwrap());
        g.set_output("q", g.result(b).unwrap());
        let mut s = Schedule::new();
        s.assign(a, 0);
        s.assign(b, 0);
        let err = s
            .validate(
                &g,
                &OpClassifier::universal(),
                &ResourceLimits::single_universal(),
            )
            .unwrap_err();
        assert!(matches!(err, ScheduleError::ResourceExceeded { .. }));
        s.validate(
            &g,
            &OpClassifier::universal(),
            &ResourceLimits::universal(2),
        )
        .unwrap();
    }

    #[test]
    fn free_ops_share_steps() {
        let mut g = DataFlowGraph::new();
        let x = g.add_input("x", 32);
        let one = g.add_const_value(Fx::ONE);
        let a = g.add_op(OpKind::Add, vec![x, x]);
        let sh = g.add_op(OpKind::Shr, vec![g.result(a).unwrap(), one]);
        g.set_output("y", g.result(sh).unwrap());
        let cls = OpClassifier::universal_free_shifts();
        let mut s = Schedule::new();
        // const & shift free; shift shares the adder's step.
        let const_op = g.op_ids().find(|&i| g.op(i).kind == OpKind::Const).unwrap();
        s.assign(const_op, 0);
        s.assign(a, 0);
        s.assign(sh, 0);
        s.validate(&g, &cls, &ResourceLimits::single_universal())
            .unwrap();
        assert_eq!(s.fu_usage(&g, &cls).get(&FuClass::Universal), Some(&1));
    }

    #[test]
    fn unscheduled_op_detected() {
        let (g, a, _) = two_op_block();
        let mut s = Schedule::new();
        s.assign(a, 0);
        let err = s
            .validate(&g, &OpClassifier::universal(), &ResourceLimits::unlimited())
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Unscheduled { .. }));
    }

    #[test]
    fn fu_usage_reports_per_step_maximum() {
        let mut g = DataFlowGraph::new();
        let x = g.add_input("x", 32);
        let ops: Vec<OpId> = (0..3).map(|_| g.add_op(OpKind::Inc, vec![x])).collect();
        for (i, o) in ops.iter().enumerate() {
            g.set_output(&format!("o{i}"), g.result(*o).unwrap());
        }
        let mut s = Schedule::new();
        s.assign(ops[0], 0);
        s.assign(ops[1], 0);
        s.assign(ops[2], 1);
        let usage = s.fu_usage(&g, &OpClassifier::universal());
        assert_eq!(usage.get(&FuClass::Universal), Some(&2));
    }
}
