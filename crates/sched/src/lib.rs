//! # hls-sched — scheduling algorithms
//!
//! Every scheduling technique surveyed in §3.1 of the DAC'88 tutorial:
//!
//! * [`asap_schedule`] / [`alap_schedule`] — resource-constrained ASAP
//!   (Fig. 3, local and priority-blind) and its as-late-as-possible mirror.
//! * [`list_schedule`] — list scheduling with path-length (BUD), urgency
//!   (Elf/ISYN) or mobility priorities (Fig. 4).
//! * [`force_directed_schedule`] — HAL's time-constrained force-directed
//!   scheduling with [`distribution_graphs`] (Fig. 5).
//! * [`hier_force_schedule`] — hierarchical windowed FDS: mobility-band
//!   windows, seam propagation, independent components in parallel;
//!   scales the Fig. 5 technique to 100k-op graphs.
//! * [`freedom_based_schedule`] — MAHA's least-freedom-first scheduling.
//! * [`branch_and_bound_schedule`] — EXPL-style optimal search.
//! * [`transformational_schedule`] — YSC-style serialize-from-parallel.
//! * [`chained_schedule`] — delay-aware operator chaining.
//! * [`pipeline_loop`] — Sehwa-style loop pipelining.
//! * [`schedule_cdfg`] — whole-behavior scheduling with loop-aware latency
//!   (reproduces the paper's 23- and 10-step sqrt schedules).
//!
//! ```
//! use hls_sched::{asap_schedule, OpClassifier, ResourceLimits};
//! use hls_cdfg::{DataFlowGraph, OpKind};
//!
//! let mut dfg = DataFlowGraph::new();
//! let x = dfg.add_input("x", 32);
//! let a = dfg.add_op(OpKind::Inc, vec![x]);
//! let b = dfg.add_op(OpKind::Neg, vec![dfg.result(a).unwrap()]);
//! dfg.set_output("y", dfg.result(b).unwrap());
//!
//! let s = asap_schedule(&dfg, &OpClassifier::universal(),
//!                       &ResourceLimits::single_universal())?;
//! assert_eq!(s.num_steps(), 2);
//! # Ok::<(), hls_sched::ScheduleError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod alap;
mod asap;
mod bb;
pub mod bounds;
mod cdfg_sched;
mod chain;
mod error;
mod force;
mod freedom;
mod hforce;
mod list;
mod pipeline;
pub mod precedence;
mod resource;
mod schedule;
mod transform;

pub use alap::alap_schedule;
pub use asap::asap_schedule;
pub use bb::{branch_and_bound_schedule, DEFAULT_NODE_BUDGET};
pub use bounds::{ClassStats, SchedGraph, Windows};
pub use cdfg_sched::{schedule_cdfg, schedule_cdfg_cached, Algorithm, CdfgBoundsCache};
pub use chain::{chained_schedule, ChainedSchedule, DelayModel};
pub use error::ScheduleError;
pub use force::{distribution_graphs, force_directed_schedule, DistributionGraphs, ForceScheduler};
pub use freedom::{freedom_based_schedule, freedom_based_schedule_graph};
pub use hforce::{hier_force_schedule, HierForceScheduler, DEFAULT_WINDOW};
pub use list::{list_schedule, list_schedule_graph, Priority};
pub use pipeline::{pipeline_loop, reservation_table, PipelineResult};
pub use resource::{ClassifierStyle, FuClass, OpClassifier, ResourceLimits};
pub use schedule::{CdfgSchedule, Schedule};
pub use transform::{transformational_schedule, Move};
