//! Freedom-based scheduling (MAHA — tutorial reference [21]).
//!
//! "The operations on the critical path are scheduled first and assigned
//! to functional units. Then the other operations are scheduled and
//! assigned one at a time. At each step the unscheduled operation with the
//! least freedom ... is chosen, so that operations that might present more
//! difficult scheduling problems are taken care of first, before they
//! become blocked" (§3.1.2).
//!
//! Runs on the dense [`SchedGraph`] analysis: windows, per-step FU usage,
//! and the selection scan are flat vectors indexed by dense op index, and
//! window propagation is shared with the force-directed scheduler
//! ([`SchedGraph::pin_and_propagate`]).

use hls_cdfg::DataFlowGraph;

use crate::bounds::SchedGraph;
use crate::resource::OpClassifier;
use crate::schedule::Schedule;
use crate::ScheduleError;

/// Schedules `dfg` against `deadline` steps, choosing the least-freedom
/// operation first and the step that adds the fewest functional units.
///
/// Like force-directed scheduling this is time-constrained: the FU count
/// is an output (read it with [`Schedule::fu_usage`]).
///
/// # Errors
///
/// Returns [`ScheduleError::DeadlineTooShort`] or [`ScheduleError::Cycle`].
pub fn freedom_based_schedule(
    dfg: &DataFlowGraph,
    classifier: &OpClassifier,
    deadline: u32,
) -> Result<Schedule, ScheduleError> {
    freedom_based_schedule_graph(&SchedGraph::build(dfg, classifier)?, deadline)
}

/// [`freedom_based_schedule`] from an already-built (possibly cached)
/// [`SchedGraph`].
///
/// # Errors
///
/// As [`freedom_based_schedule`], minus [`ScheduleError::Cycle`].
pub fn freedom_based_schedule_graph(
    sg: &SchedGraph,
    deadline: u32,
) -> Result<Schedule, ScheduleError> {
    let windows = sg.windows(deadline)?;
    let (mut lo, mut hi) = (windows.lo, windows.hi);
    let n = sg.len();
    let (classes, class_idx) = sg.dense_classes();

    let mut schedule = Schedule::new();
    let mut placed = vec![false; n];
    // usage[ci * deadline + step] counts FU occupancy; the unit count per
    // class is the running maximum, and we prefer steps that do not raise
    // it.
    let mut usage = vec![0usize; classes.len() * deadline as usize];
    let mut unit_count = vec![0usize; classes.len()];
    let mut place =
        |i: usize, t: u32, placed: &mut [bool], usage: &mut [usize], unit_count: &mut [usize]| {
            placed[i] = true;
            schedule.assign(sg.op(i), t);
            if let Some(ci) = class_idx[i] {
                let u = &mut usage[ci * deadline as usize + t as usize];
                *u += 1;
                unit_count[ci] = unit_count[ci].max(*u);
            }
        };

    // Phase 1: the critical path (zero-freedom ops), in ASAP order.
    let mut critical: Vec<usize> = (0..n)
        .filter(|&i| !sg.is_wired(i) && lo[i] == hi[i])
        .collect();
    critical.sort_unstable_by_key(|&i| (lo[i], i));
    for i in critical {
        let t = lo[i];
        place(i, t, &mut placed, &mut usage, &mut unit_count);
        sg.pin_and_propagate(&mut lo, &mut hi, i, t, deadline, |_, _, _, _, _| {})?;
    }
    // Wired constants: step 0.
    for i in 0..n {
        if sg.is_wired(i) && !placed[i] {
            place(i, 0, &mut placed, &mut usage, &mut unit_count);
        }
    }

    // Phase 2: least freedom first.
    loop {
        // The unplaced classified op with the smallest window (ties to the
        // lowest op id, which dense index order preserves).
        let mut pick: Option<(u32, usize, usize)> = None;
        for i in 0..n {
            if placed[i] {
                continue;
            }
            let Some(ci) = class_idx[i] else { continue };
            let slack = hi[i].saturating_sub(lo[i]);
            if pick.is_none_or(|(ps, pi, _)| (slack, i) < (ps, pi)) {
                pick = Some((slack, i, ci));
            }
        }
        let Some((_, i, ci)) = pick else { break };
        if hi[i] < lo[i] {
            return Err(sg.infeasible(i, lo[i], hi[i], deadline));
        }
        // Least added cost: a step where current usage is below the unit
        // count; otherwise the least-used step (adding a unit).
        let current_units = unit_count[ci];
        let mut best: Option<(usize, usize, u32)> = None;
        for t in lo[i]..=hi[i] {
            let u = usage[ci * deadline as usize + t as usize];
            let adds_unit = usize::from(u + 1 > current_units);
            let key = (adds_unit, u, t);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        // The window check above guarantees at least one candidate step.
        let Some((_, _, t)) = best else {
            return Err(sg.infeasible(i, lo[i], hi[i], deadline));
        };
        place(i, t, &mut placed, &mut usage, &mut unit_count);
        sg.pin_and_propagate(&mut lo, &mut hi, i, t, deadline, |_, _, _, _, _| {})?;
    }

    // Chained-free ops at their earliest start (placed windows are pinned,
    // so `lo` doubles as the final step vector).
    for &i in sg.graph().topo() {
        let i = i as usize;
        if placed[i] {
            continue;
        }
        let free = sg.is_free(i);
        let mut s = 0;
        for &p in sg.graph().preds(i) {
            let p = p as usize;
            if sg.is_wired(p) {
                continue;
            }
            s = s.max(if free { lo[p] } else { lo[p] + 1 });
        }
        lo[i] = s;
        schedule.assign(sg.op(i), s);
    }
    schedule.set_num_steps(deadline);
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precedence::unconstrained_asap;
    use crate::resource::{FuClass, ResourceLimits};

    #[test]
    fn critical_path_scheduled_at_asap() {
        let (g, ops) = hls_workloads::figures::fig3_graph();
        let cls = OpClassifier::universal();
        let s = freedom_based_schedule(&g, &cls, 3).unwrap();
        s.validate(&g, &cls, &ResourceLimits::unlimited()).unwrap();
        // The chain op2 -> op4 -> op6 sits at steps 0, 1, 2.
        assert_eq!(s.step(ops[1]), Some(0));
        assert_eq!(s.step(ops[3]), Some(1));
        assert_eq!(s.step(ops[5]), Some(2));
        assert_eq!(s.num_steps(), 3);
    }

    #[test]
    fn freedom_spreads_fill_ops() {
        let (g, _) = hls_workloads::figures::fig3_graph();
        let cls = OpClassifier::universal();
        let s = freedom_based_schedule(&g, &cls, 3).unwrap();
        // 6 ops over 3 steps with a 3-op chain: 2 FUs suffice if the three
        // fillers spread across steps.
        assert_eq!(s.fu_usage(&g, &cls)[&FuClass::Universal], 2);
    }

    #[test]
    fn deadline_too_short_rejected() {
        let (g, _) = hls_workloads::figures::fig3_graph();
        let cls = OpClassifier::universal();
        assert!(matches!(
            freedom_based_schedule(&g, &cls, 2),
            Err(ScheduleError::DeadlineTooShort { .. })
        ));
    }

    #[test]
    fn valid_on_all_benchmarks() {
        let cls = OpClassifier::typed();
        for (name, g) in hls_workloads::all_benchmarks() {
            let (_, cp) = unconstrained_asap(&g, &cls).unwrap();
            let s = freedom_based_schedule(&g, &cls, cp + 2).unwrap();
            s.validate(&g, &cls, &ResourceLimits::unlimited())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
